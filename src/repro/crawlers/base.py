"""Crawler base classes: one crawler per data source.

A :class:`Crawler` knows one site's URL layout: where the archive
index lives, which links on it are articles, how pagination advances
and whether articles continue onto extra pages.  The crawl engine is
generic; everything source-specific lives in these classes (and their
42 per-source subclasses in :mod:`repro.crawlers.sources`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.htmlparse import Document
from repro.websim.render import site_prefix
from repro.websim.sites import host_for


@dataclass
class RawDocument:
    """One fetched article page, before porter grouping.

    ``group_url`` identifies the logical report; continuation pages of
    a multi-page report share the first page's ``group_url`` and carry
    ``page_no > 1``.
    """

    url: str
    source: str
    html: str
    fetched_at: float
    group_url: str
    page_no: int = 1


def resolve_url(base: str, href: str) -> str:
    """Resolve an href against the page URL (absolute/rooted/query forms)."""
    if href.startswith(("http://", "https://")):
        return href
    scheme, _, rest = base.partition("://")
    host = rest.split("/", 1)[0]
    if href.startswith("/"):
        return f"{scheme}://{host}{href}"
    if href.startswith("?"):
        return base.split("?", 1)[0] + href
    # relative path: resolve against the base directory
    directory = base.split("?", 1)[0].rsplit("/", 1)[0]
    return f"{directory}/{href}"


class Crawler:
    """Base crawler for one data source.

    Subclasses set ``site_name``, ``family`` and ``article_prefix``;
    the default selector logic derives the site's CSS class prefix the
    same way the renderer does, which is exactly the prior knowledge a
    hand-written per-source crawler encodes.
    """

    site_name: ClassVar[str] = ""
    family: ClassVar[str] = ""
    article_prefix: ClassVar[str] = ""
    #: whether articles may continue onto extra pages (rel=next inside body)
    multi_page: ClassVar[bool] = False

    def __init__(self):
        if not self.site_name or not self.family or not self.article_prefix:
            raise TypeError(
                f"{type(self).__name__} must define site_name, family and "
                "article_prefix"
            )
        self.prefix = site_prefix(self.site_name)
        self.host = host_for(self.site_name)
        self.base_url = f"https://{self.host}"

    # -- URL space -------------------------------------------------------

    def seed_urls(self) -> list[str]:
        """Where a crawl of this source starts."""
        return [f"{self.base_url}/index/1"]

    def classify(self, url: str) -> str:
        """``'index'``, ``'article'``, ``'continuation'`` or ``'other'``."""
        if not url.startswith(self.base_url):
            return "other"
        path = url[len(self.base_url) :]
        if path.startswith("/index/"):
            return "index"
        if path.split("?", 1)[0].startswith(self.article_prefix):
            if "?page=" in path and not path.endswith("?page=1"):
                return "continuation"
            return "article"
        return "other"

    def group_url(self, url: str) -> str:
        """The logical report URL a page belongs to (strips ?page=N)."""
        return url.split("?", 1)[0]

    def page_no(self, url: str) -> int:
        if "?page=" in url:
            try:
                return int(url.rsplit("?page=", 1)[1])
            except ValueError:
                return 1
        return 1

    # -- link extraction ---------------------------------------------------

    def extract_article_links(self, url: str, doc: Document) -> list[str]:
        """Article URLs linked from an index page."""
        anchors = doc.select(f"a.{self.prefix}-link")
        return [
            resolve_url(url, a.get("href"))
            for a in anchors
            if a.get("href")
        ]

    def extract_next_index(self, url: str, doc: Document) -> str | None:
        """The next archive page, when pagination continues."""
        anchor = doc.select_one("nav.pager a.next")
        if anchor is None or not anchor.get("href"):
            return None
        return resolve_url(url, anchor.get("href"))

    def extract_continuation(self, url: str, doc: Document) -> str | None:
        """An article's continuation page (multi-page sources only)."""
        if not self.multi_page:
            return None
        anchor = doc.select_one(f"a.{self.prefix}-next")
        if anchor is None or not anchor.get("href"):
            return None
        return resolve_url(url, anchor.get("href"))


class EncyclopediaCrawler(Crawler):
    """Threat-encyclopedia sources: /threats/<slug>, two-page reports."""

    family = "encyclopedia"
    article_prefix = "/threats/"
    multi_page = True


class BlogCrawler(Crawler):
    """Research-blog sources: /posts/<slug>."""

    family = "blog"
    article_prefix = "/posts/"


class NewsCrawler(Crawler):
    """Security-news sources: /news/<slug>.html."""

    family = "news"
    article_prefix = "/news/"


class AdvisoryCrawler(Crawler):
    """Advisory trackers: /advisories/<slug>."""

    family = "advisory"
    article_prefix = "/advisories/"


class FeedCrawler(Crawler):
    """Aggregator feeds: /items/<slug>."""

    family = "feed"
    article_prefix = "/items/"


__all__ = [
    "AdvisoryCrawler",
    "BlogCrawler",
    "Crawler",
    "EncyclopediaCrawler",
    "FeedCrawler",
    "NewsCrawler",
    "RawDocument",
    "resolve_url",
]
