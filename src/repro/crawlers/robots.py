"""robots.txt parsing and gating.

A small, correct subset of the robots exclusion protocol: user-agent
groups, ``Disallow``/``Allow`` prefix rules (longest match wins, Allow
beats Disallow on ties) and ``Crawl-delay``.  The crawler framework
fetches each host's policy once and consults it before every request.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RuleGroup:
    """Rules for one set of user-agents."""

    agents: list[str] = field(default_factory=list)
    rules: list[tuple[str, str]] = field(default_factory=list)  # (verb, path)
    crawl_delay: float | None = None

    def applies_to(self, agent: str) -> bool:
        agent = agent.lower()
        return any(a == "*" or a in agent for a in self.agents)


@dataclass
class RobotsPolicy:
    """Parsed robots.txt for one host."""

    groups: list[RuleGroup] = field(default_factory=list)

    @classmethod
    def parse(cls, text: str) -> "RobotsPolicy":
        """Parse robots.txt content; unknown directives are ignored."""
        groups: list[RuleGroup] = []
        current: RuleGroup | None = None
        expecting_agents = False
        for raw_line in text.splitlines():
            line = raw_line.split("#", 1)[0].strip()
            if not line or ":" not in line:
                continue
            verb, _, value = line.partition(":")
            verb = verb.strip().lower()
            value = value.strip()
            if verb == "user-agent":
                if current is None or not expecting_agents:
                    current = RuleGroup()
                    groups.append(current)
                    expecting_agents = True
                current.agents.append(value.lower())
            elif verb in ("disallow", "allow"):
                expecting_agents = False
                if current is None:
                    current = RuleGroup(agents=["*"])
                    groups.append(current)
                current.rules.append((verb, value))
            elif verb == "crawl-delay":
                expecting_agents = False
                if current is not None:
                    try:
                        current.crawl_delay = float(value)
                    except ValueError:
                        pass
        return cls(groups=groups)

    @classmethod
    def allow_all(cls) -> "RobotsPolicy":
        """The policy used when robots.txt is missing or unreadable."""
        return cls(groups=[])

    def _group_for(self, agent: str) -> RuleGroup | None:
        specific = [g for g in self.groups if g.applies_to(agent) and "*" not in g.agents]
        if specific:
            return specific[0]
        for group in self.groups:
            if group.applies_to(agent):
                return group
        return None

    def allowed(self, path: str, agent: str = "securitykg") -> bool:
        """Whether ``path`` may be fetched by ``agent``.

        Longest matching rule wins; on equal length ``Allow`` wins.
        An empty ``Disallow:`` value allows everything (per the spec).
        """
        group = self._group_for(agent)
        if group is None:
            return True
        best_len = -1
        best_verdict = True
        for verb, rule_path in group.rules:
            if not rule_path:
                if verb == "disallow" and best_len < 0:
                    best_verdict = True
                continue
            if path.startswith(rule_path) and len(rule_path) >= best_len:
                if len(rule_path) > best_len or verb == "allow":
                    best_verdict = verb == "allow"
                best_len = len(rule_path)
        return best_verdict

    def crawl_delay(self, agent: str = "securitykg") -> float | None:
        group = self._group_for(agent)
        return group.crawl_delay if group else None


def path_of(url: str) -> str:
    """The path component of a URL (``/`` when absent)."""
    rest = url.split("://", 1)[-1]
    slash = rest.find("/")
    return rest[slash:] if slash >= 0 else "/"


__all__ = ["RobotsPolicy", "RuleGroup", "path_of"]
