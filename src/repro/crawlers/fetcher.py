"""Robust fetching: retries, backoff, robots gating, politeness.

The :class:`Fetcher` is the single choke point between the crawl engine
and the transport.  It caches per-host robots policies, applies the
rate limiter, retries transient failures (connection errors and 5xx)
through a shared :class:`~repro.runtime.RetryPolicy`, and keeps
counters the robustness benchmark (E2) reports.  Backoff sleeps go
through the transport's clock, so retry storms replay instantly under
virtual time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.crawlers.ratelimit import HostRateLimiter
from repro.crawlers.robots import RobotsPolicy, path_of
from repro.obs import NO_OBS, Obs
from repro.runtime import (
    REAL_CLOCK,
    Backoff,
    Clock,
    RetryPolicy,
    Stopwatch,
    named_lock,
)
from repro.websim.network import Response, SimulatedTransport, TransportError


class FetchDenied(Exception):
    """The URL is disallowed by the host's robots policy."""


class FetchFailed(Exception):
    """All retry attempts were exhausted."""


@dataclass
class FetchStats:
    """Thread-safe fetch outcome counters."""

    attempts: int = 0
    successes: int = 0
    retries: int = 0
    denied: int = 0
    failures: int = 0
    _lock: threading.Lock = field(
        default_factory=lambda: named_lock("crawl.fetch_stats"), repr=False
    )

    def bump(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "attempts": self.attempts,
                "successes": self.successes,
                "retries": self.retries,
                "denied": self.denied,
                "failures": self.failures,
            }


class Fetcher:
    """Fetch URLs politely and robustly over a transport.

    Parameters
    ----------
    transport:
        Anything with ``fetch(url) -> Response`` raising
        :class:`TransportError` on connection problems (the simulated
        transport here; a real HTTP client in production).
    max_retries:
        Additional attempts after the first failure.
    backoff:
        Base backoff in seconds; attempt *k* sleeps ``backoff * 2**k``.
    retry:
        Full retry policy; overrides ``max_retries``/``backoff`` when
        given.
    respect_robots:
        When true, robots.txt is fetched once per host and consulted
        for every URL.
    clock:
        Clock for backoff sleeps and politeness waits.  Defaults to the
        transport's clock, so injecting a virtual clock into the
        transport is enough to virtualise the whole fetch path.
    """

    def __init__(
        self,
        transport: SimulatedTransport,
        rate_limiter: HostRateLimiter | None = None,
        max_retries: int = 3,
        backoff: float = 0.01,
        retry: RetryPolicy | None = None,
        respect_robots: bool = True,
        agent: str = "securitykg",
        clock: Clock | None = None,
        obs: Obs | None = None,
    ):
        self.transport = transport
        if clock is None:
            clock = getattr(transport, "clock", None) or REAL_CLOCK
        self.clock = clock
        self.obs = obs if obs is not None else NO_OBS
        self.rate_limiter = rate_limiter or HostRateLimiter(
            clock=self.clock, obs=self.obs
        )
        self.retry = retry or RetryPolicy(
            max_retries=max_retries, backoff=Backoff(base=backoff)
        )
        self.respect_robots = respect_robots
        self.agent = agent
        self.stats = FetchStats()
        self._robots: dict[str, RobotsPolicy] = {}
        self._robots_lock = named_lock("crawl.robots")

    @property
    def max_retries(self) -> int:
        return self.retry.max_retries

    @staticmethod
    def host_of(url: str) -> str:
        return url.split("://", 1)[-1].split("/", 1)[0]

    def _robots_for(self, host: str) -> RobotsPolicy:
        with self._robots_lock:
            cached = self._robots.get(host)
        if cached is not None:
            return cached
        try:
            response = self.transport.fetch(f"https://{host}/robots.txt")
            policy = (
                RobotsPolicy.parse(response.body)
                if response.ok
                else RobotsPolicy.allow_all()
            )
        except TransportError:
            policy = RobotsPolicy.allow_all()
        with self._robots_lock:
            self._robots.setdefault(host, policy)
            policy = self._robots[host]
        delay = policy.crawl_delay(self.agent)
        if delay:
            self.rate_limiter.set_host_delay(host, delay)
        return policy

    def fetch(
        self,
        url: str,
        source: str | None = None,
        max_attempts: int | None = None,
    ) -> Response:
        """Fetch one URL with robots gating, politeness and retries.

        Raises :class:`FetchDenied` for robots-disallowed URLs and
        :class:`FetchFailed` when every attempt failed.  4xx responses
        are returned as-is (they are permanent, retrying is pointless).
        ``source`` labels the latency histogram (falls back to host).
        ``max_attempts`` caps the retry budget below the policy's
        (quarantine probes ask a yes/no question; retrying is waste).
        """
        host = self.host_of(url)
        if self.respect_robots and not url.endswith("/robots.txt"):
            policy = self._robots_for(host)
            if not policy.allowed(path_of(url), self.agent):
                self.stats.bump(denied=1)
                self.obs.metrics.inc("crawl.fetch_denied")
                raise FetchDenied(url)

        watch = Stopwatch(self.clock)
        last_error: Exception | None = None
        for attempt in self.retry.attempts(self.clock):
            if attempt:
                self.stats.bump(retries=1)
                self.obs.metrics.inc("crawl.fetch_retries")
            self.rate_limiter.acquire(host)
            self.stats.bump(attempts=1)
            self.obs.metrics.inc("crawl.fetch_attempts")
            try:
                response = self.transport.fetch(url)
            except TransportError as error:
                last_error = error
            else:
                if response.status < 500:
                    self.stats.bump(successes=1)
                    self.obs.metrics.observe(
                        "crawl.fetch_seconds",
                        watch.elapsed,
                        source=source or host,
                    )
                    return response
                last_error = FetchFailed(f"{url} -> {response.status}")
            if max_attempts is not None and attempt + 1 >= max_attempts:
                break
        self.stats.bump(failures=1)
        self.obs.metrics.inc("crawl.fetch_failures")
        self.obs.metrics.observe(
            "crawl.fetch_seconds", watch.elapsed, source=source or host
        )
        raise FetchFailed(f"giving up on {url}: {last_error}")


__all__ = ["FetchDenied", "FetchFailed", "FetchStats", "Fetcher"]
