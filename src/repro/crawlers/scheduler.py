"""Periodic execution and reboot-after-failure.

The crawler framework "schedules the periodic execution and reboot
after failure for different crawlers in an efficient and robust manner"
(paper section 2.2).  :class:`PeriodicScheduler` owns a set of named
jobs; each cycle it runs every job, catches crashes, and reboots the
crashed job with exponential backoff up to a restart budget.  Jobs are
plain callables, so the same scheduler drives crawls in tests,
benchmarks and the end-to-end system.  Intervals and backoff are slept
on the injected :class:`~repro.runtime.Clock`, so long periodic runs
replay in milliseconds under virtual time with exact timestamps.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import NO_OBS, Obs
from repro.runtime import REAL_CLOCK, Backoff, Clock, Stopwatch, named_lock


@dataclass
class JobOutcome:
    """Result of one job execution (including reboots)."""

    job: str
    cycle: int
    status: str  # 'ok' | 'rebooted' | 'failed'
    attempts: int
    elapsed: float
    error: str = ""
    value: object = None


@dataclass
class JobSpec:
    """One scheduled job."""

    name: str
    run: Callable[[], object]
    max_restarts: int = 2
    backoff: float = 0.01


@dataclass
class SchedulerStats:
    """Aggregate counters across cycles."""

    cycles: int = 0
    runs: int = 0
    reboots: int = 0
    failures: int = 0
    outcomes: list[JobOutcome] = field(default_factory=list)


class PeriodicScheduler:
    """Run jobs periodically, rebooting crashed jobs with backoff."""

    def __init__(
        self,
        jobs: list[JobSpec],
        interval: float = 0.0,
        clock: Clock | None = None,
        obs: Obs | None = None,
    ):
        self.jobs = list(jobs)
        self.interval = interval
        self.stats = SchedulerStats()
        self.clock = clock if clock is not None else REAL_CLOCK
        self.obs = obs if obs is not None else NO_OBS
        self._stop = threading.Event()
        # Guards every ``self.stats`` mutation: job threads spawned by
        # run_in_threads update the shared counters concurrently.
        self._stats_lock = named_lock("scheduler.stats")

    def _execute(self, job: JobSpec, cycle: int) -> JobOutcome:
        with self.obs.tracer.span(
            "scheduler.job", job=job.name, cycle=cycle
        ) as span:
            outcome = self._execute_attempts(job, cycle)
            span.set("status", outcome.status)
        self.obs.metrics.inc("scheduler.runs", job=job.name, status=outcome.status)
        self.obs.metrics.observe(
            "scheduler.job_seconds", outcome.elapsed, job=job.name
        )
        return outcome

    def _execute_attempts(self, job: JobSpec, cycle: int) -> JobOutcome:
        watch = Stopwatch(self.clock)
        schedule = Backoff(base=job.backoff)
        attempts = 0
        last_error = ""
        while attempts <= job.max_restarts:
            attempts += 1
            try:
                value = job.run()
            except Exception as error:  # reboot-after-failure semantics
                last_error = f"{type(error).__name__}: {error}"
                if attempts <= job.max_restarts:
                    with self._stats_lock:
                        self.stats.reboots += 1
                    self.obs.metrics.inc("scheduler.reboots", job=job.name)
                    self.clock.sleep(schedule.delay(attempts - 1))
                continue
            status = "ok" if attempts == 1 else "rebooted"
            return JobOutcome(
                job=job.name,
                cycle=cycle,
                status=status,
                attempts=attempts,
                elapsed=watch.elapsed,
                value=value,
            )
        with self._stats_lock:
            self.stats.failures += 1
        self.obs.metrics.inc("scheduler.failures", job=job.name)
        return JobOutcome(
            job=job.name,
            cycle=cycle,
            status="failed",
            attempts=attempts,
            elapsed=watch.elapsed,
            error=last_error,
        )

    def run_cycles(self, cycles: int = 1) -> list[JobOutcome]:
        """Run every job for ``cycles`` rounds (deterministic order)."""
        outcomes: list[JobOutcome] = []
        for cycle in range(cycles):
            if self._stop.is_set():
                break
            for job in self.jobs:
                outcome = self._execute(job, cycle)
                outcomes.append(outcome)
                with self._stats_lock:
                    self.stats.runs += 1
            with self._stats_lock:
                self.stats.cycles += 1
            if self.interval and cycle + 1 < cycles:
                self.clock.sleep(self.interval)
        with self._stats_lock:
            self.stats.outcomes.extend(outcomes)
        return outcomes

    def run_in_threads(self, duration: float) -> list[JobOutcome]:
        """Run each job on its own thread every ``interval`` seconds.

        This is the deployment mode: jobs with different latencies do
        not block each other.  Returns outcomes observed within
        ``duration`` seconds.  All threads (including the supervising
        one) register with the clock, so under a virtual clock the
        whole window replays instantly and deterministically.
        """
        outcomes: list[JobOutcome] = []
        # Every job thread plus the supervisor must be registered with
        # the clock before anyone sleeps, or virtual time could burn
        # the whole duration while a thread is still starting up.
        ready = threading.Barrier(len(self.jobs) + 1)

        def loop(job: JobSpec) -> None:
            with self.clock.worker():
                ready.wait()
                cycle = 0
                while not self._stop.is_set():
                    outcome = self._execute(job, cycle)
                    with self._stats_lock:
                        outcomes.append(outcome)
                        self.stats.runs += 1
                    cycle += 1
                    if self.clock.wait_for(self._stop, self.interval):
                        return

        threads = [
            threading.Thread(
                target=loop,
                args=(job,),
                name=f"sched-{job.name}",
                daemon=True,
            )
            for job in self.jobs
        ]
        for thread in threads:
            thread.start()
        with self.clock.worker():
            ready.wait()
            self.clock.sleep(duration)
            self._stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        with self._stats_lock:
            self.stats.outcomes.extend(outcomes)
            return list(outcomes)

    def stop(self) -> None:
        self._stop.set()


__all__ = ["JobOutcome", "JobSpec", "PeriodicScheduler", "SchedulerStats"]
