"""Crawlers for the twelve research-blog sources."""

from __future__ import annotations

from repro.crawlers.base import BlogCrawler


class SecureListingCrawler(BlogCrawler):
    site_name = "SecureListing"


class RedCanopyBlogCrawler(BlogCrawler):
    site_name = "RedCanopy Blog"


class NightOwlNotesCrawler(BlogCrawler):
    site_name = "NightOwl Notes"


class CipherTraceJournalCrawler(BlogCrawler):
    site_name = "CipherTrace Journal"


class BlueLatticeResearchCrawler(BlogCrawler):
    site_name = "BlueLattice Research"


class ThreatForgeLabCrawler(BlogCrawler):
    site_name = "ThreatForge Lab"


class ObsidianSecPostsCrawler(BlogCrawler):
    site_name = "ObsidianSec Posts"


class HaloGuardInsightsCrawler(BlogCrawler):
    site_name = "HaloGuard Insights"


class VectorShieldBriefsCrawler(BlogCrawler):
    site_name = "VectorShield Briefs"


class PaleFireWriteupsCrawler(BlogCrawler):
    site_name = "PaleFire Writeups"


class IronVeilDispatchCrawler(BlogCrawler):
    site_name = "IronVeil Dispatch"


class CrimsonHexDiaryCrawler(BlogCrawler):
    site_name = "CrimsonHex Diary"


BLOG_CRAWLERS = (
    SecureListingCrawler,
    RedCanopyBlogCrawler,
    NightOwlNotesCrawler,
    CipherTraceJournalCrawler,
    BlueLatticeResearchCrawler,
    ThreatForgeLabCrawler,
    ObsidianSecPostsCrawler,
    HaloGuardInsightsCrawler,
    VectorShieldBriefsCrawler,
    PaleFireWriteupsCrawler,
    IronVeilDispatchCrawler,
    CrimsonHexDiaryCrawler,
)

__all__ = [cls.__name__ for cls in BLOG_CRAWLERS] + ["BLOG_CRAWLERS"]
