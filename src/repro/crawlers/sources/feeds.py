"""Crawlers for the five aggregator-feed sources."""

from __future__ import annotations

from repro.crawlers.base import FeedCrawler


class OTXMirrorCrawler(FeedCrawler):
    site_name = "OTX Mirror"


class ThreatMinerEchoCrawler(FeedCrawler):
    site_name = "ThreatMiner Echo"


class PhishTankRelayCrawler(FeedCrawler):
    site_name = "PhishTank Relay"


class IOCFirehoseCrawler(FeedCrawler):
    site_name = "IOC Firehose"


class IntelStreamCrawler(FeedCrawler):
    site_name = "IntelStream"


FEED_CRAWLERS = (
    OTXMirrorCrawler,
    ThreatMinerEchoCrawler,
    PhishTankRelayCrawler,
    IOCFirehoseCrawler,
    IntelStreamCrawler,
)

__all__ = [cls.__name__ for cls in FEED_CRAWLERS] + ["FEED_CRAWLERS"]
