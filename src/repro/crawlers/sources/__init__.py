"""The 42 per-source crawler classes and the source registry.

Each class handles exactly one data source (paper section 2.2).  The
registry maps site names to crawler classes so the engine, scheduler
and configuration layer can instantiate crawlers by name.
"""

from __future__ import annotations

from repro.crawlers.base import Crawler
from repro.crawlers.sources.advisories import ADVISORY_CRAWLERS
from repro.crawlers.sources.blogs import BLOG_CRAWLERS
from repro.crawlers.sources.encyclopedias import ENCYCLOPEDIA_CRAWLERS
from repro.crawlers.sources.feeds import FEED_CRAWLERS
from repro.crawlers.sources.news import NEWS_CRAWLERS

ALL_CRAWLER_CLASSES: tuple[type[Crawler], ...] = (
    ENCYCLOPEDIA_CRAWLERS
    + BLOG_CRAWLERS
    + NEWS_CRAWLERS
    + ADVISORY_CRAWLERS
    + FEED_CRAWLERS
)

#: site name -> crawler class
CRAWLER_REGISTRY: dict[str, type[Crawler]] = {
    cls.site_name: cls for cls in ALL_CRAWLER_CLASSES
}


def crawler_for(site_name: str) -> Crawler:
    """Instantiate the crawler responsible for one site."""
    try:
        return CRAWLER_REGISTRY[site_name]()
    except KeyError:
        raise KeyError(f"no crawler registered for site {site_name!r}") from None


def build_all_crawlers(site_names: list[str] | None = None) -> list[Crawler]:
    """Instantiate every registered crawler (or a named subset)."""
    names = site_names if site_names is not None else list(CRAWLER_REGISTRY)
    return [crawler_for(name) for name in names]


__all__ = [
    "ALL_CRAWLER_CLASSES",
    "CRAWLER_REGISTRY",
    "build_all_crawlers",
    "crawler_for",
]
