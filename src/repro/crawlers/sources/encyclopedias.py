"""Crawlers for the eight threat-encyclopedia sources."""

from __future__ import annotations

from repro.crawlers.base import EncyclopediaCrawler


class ThreatPediaCrawler(EncyclopediaCrawler):
    site_name = "ThreatPedia"


class MalwareVaultCrawler(EncyclopediaCrawler):
    site_name = "MalwareVault"


class VirusArchiveCrawler(EncyclopediaCrawler):
    site_name = "VirusArchive"


class ThreatLibraryCrawler(EncyclopediaCrawler):
    site_name = "ThreatLibrary"


class InfectDBCrawler(EncyclopediaCrawler):
    site_name = "InfectDB"


class MalwareAtlasCrawler(EncyclopediaCrawler):
    site_name = "MalwareAtlas"


class ThreatCompendiumCrawler(EncyclopediaCrawler):
    site_name = "ThreatCompendium"


class SpecimenIndexCrawler(EncyclopediaCrawler):
    site_name = "SpecimenIndex"


ENCYCLOPEDIA_CRAWLERS = (
    ThreatPediaCrawler,
    MalwareVaultCrawler,
    VirusArchiveCrawler,
    ThreatLibraryCrawler,
    InfectDBCrawler,
    MalwareAtlasCrawler,
    ThreatCompendiumCrawler,
    SpecimenIndexCrawler,
)

__all__ = [cls.__name__ for cls in ENCYCLOPEDIA_CRAWLERS] + [
    "ENCYCLOPEDIA_CRAWLERS"
]
