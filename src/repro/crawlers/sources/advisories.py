"""Crawlers for the seven vulnerability-advisory sources."""

from __future__ import annotations

from repro.crawlers.base import AdvisoryCrawler


class NVDShadowCrawler(AdvisoryCrawler):
    site_name = "NVD Shadow"


class CERTRelayCrawler(AdvisoryCrawler):
    site_name = "CERT Relay"


class PatchAlertCrawler(AdvisoryCrawler):
    site_name = "PatchAlert"


class VulnTrackerCrawler(AdvisoryCrawler):
    site_name = "VulnTracker"


class ExploitNoticeCrawler(AdvisoryCrawler):
    site_name = "ExploitNotice"


class AdvisoryHubCrawler(AdvisoryCrawler):
    site_name = "AdvisoryHub"


class SecFlawRegistryCrawler(AdvisoryCrawler):
    site_name = "SecFlaw Registry"


ADVISORY_CRAWLERS = (
    NVDShadowCrawler,
    CERTRelayCrawler,
    PatchAlertCrawler,
    VulnTrackerCrawler,
    ExploitNoticeCrawler,
    AdvisoryHubCrawler,
    SecFlawRegistryCrawler,
)

__all__ = [cls.__name__ for cls in ADVISORY_CRAWLERS] + ["ADVISORY_CRAWLERS"]
