"""Crawlers for the ten security-news sources."""

from __future__ import annotations

from repro.crawlers.base import NewsCrawler


class InfoSecLedgerCrawler(NewsCrawler):
    site_name = "InfoSec Ledger"


class BreachGazetteCrawler(NewsCrawler):
    site_name = "Breach Gazette"


class CyberWireDailyCrawler(NewsCrawler):
    site_name = "CyberWire Daily"


class ThreatPostMirrorCrawler(NewsCrawler):
    site_name = "ThreatPost Mirror"


class DarkReadingEchoCrawler(NewsCrawler):
    site_name = "DarkReading Echo"


class HackWatchNewsCrawler(NewsCrawler):
    site_name = "HackWatch News"


class ZeroDayTribuneCrawler(NewsCrawler):
    site_name = "ZeroDay Tribune"


class PacketStormTimesCrawler(NewsCrawler):
    site_name = "PacketStorm Times"


class FirewallHeraldCrawler(NewsCrawler):
    site_name = "FirewallHerald"


class MalwareBulletinCrawler(NewsCrawler):
    site_name = "MalwareBulletin"


NEWS_CRAWLERS = (
    InfoSecLedgerCrawler,
    BreachGazetteCrawler,
    CyberWireDailyCrawler,
    ThreatPostMirrorCrawler,
    DarkReadingEchoCrawler,
    HackWatchNewsCrawler,
    ZeroDayTribuneCrawler,
    PacketStormTimesCrawler,
    FirewallHeraldCrawler,
    MalwareBulletinCrawler,
)

__all__ = [cls.__name__ for cls in NEWS_CRAWLERS] + ["NEWS_CRAWLERS"]
