"""URL frontier: the crawl's thread-safe work queue.

Deduplicates URLs for the lifetime of the frontier, supports priority
levels (continuation pages jump the queue so multi-page reports finish
promptly) and provides a blocking ``take`` with in-flight accounting so
worker threads can detect global completion without busy-waiting or
polling timeouts: ``task_done`` and ``close`` wake every waiter the
moment the crawl is finished.
"""

from __future__ import annotations

import collections
import threading

from repro.obs import NO_OBS, Obs
from repro.runtime import REAL_CLOCK, Clock, named_lock


class Frontier:
    """Thread-safe deduplicating URL queue with two priority bands."""

    def __init__(self, clock: Clock | None = None, obs: Obs | None = None):
        self._clock = clock if clock is not None else REAL_CLOCK
        self._obs = obs if obs is not None else NO_OBS
        self._high: collections.deque[str] = collections.deque()
        self._normal: collections.deque[str] = collections.deque()
        self._seen: set[str] = set()
        self._in_flight = 0
        self._lock = named_lock("crawl.frontier")
        # clock-aware condition: waiting workers don't hold up virtual
        # time, and a notified worker counts as runnable immediately
        self._available = self._clock.condition(self._lock)
        self._closed = False

    def add(self, url: str, priority: bool = False) -> bool:
        """Enqueue a URL; returns False when it was already seen."""
        with self._lock:
            if url in self._seen or self._closed:
                return False
            self._seen.add(url)
            (self._high if priority else self._normal).append(url)
            self._obs.metrics.max_gauge(
                "crawl.frontier_depth_peak",
                len(self._high) + len(self._normal),
            )
            self._available.notify()
            return True

    def add_all(self, urls: list[str], priority: bool = False) -> int:
        """Enqueue many URLs; returns how many were new."""
        return sum(self.add(url, priority) for url in urls)

    def mark_seen(self, url: str) -> None:
        """Record a URL as seen without queueing it (incremental crawls)."""
        with self._lock:
            self._seen.add(url)

    def take(self, timeout: float | None = None) -> str | None:
        """Block until a URL is available or the crawl is finished.

        Returns ``None`` when the frontier is drained *and* no worker is
        mid-task (so no new URLs can appear), or on close/timeout.  The
        drain/close wakeups make a timeout unnecessary for the engine;
        it remains available for callers that want a bounded wait.
        """
        with self._lock:
            while True:
                if self._high:
                    self._in_flight += 1
                    return self._high.popleft()
                if self._normal:
                    self._in_flight += 1
                    return self._normal.popleft()
                if self._closed or self._in_flight == 0:
                    return None
                if not self._available.wait(timeout=timeout):
                    return None

    def task_done(self) -> None:
        """Signal that a taken URL finished processing."""
        with self._lock:
            self._in_flight -= 1
            if self._in_flight == 0 and not self._high and not self._normal:
                self._available.notify_all()

    def close(self) -> None:
        """Wake all waiters and refuse further URLs."""
        with self._lock:
            self._closed = True
            self._available.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._high) + len(self._normal)

    @property
    def seen_count(self) -> int:
        with self._lock:
            return len(self._seen)


__all__ = ["Frontier"]
