"""Multi-threaded crawl engine.

Workers pull URLs from a shared :class:`~repro.crawlers.frontier.Frontier`
and dispatch each to the crawler owning its host.  Index pages yield
article links and the next archive page; article pages are emitted as
:class:`~repro.crawlers.base.RawDocument` records; continuation pages
are fetched at high priority and grouped under the first page's URL.

Because fetch latency dominates (as on the real web), the thread pool
is what delivers the paper's reported throughput (~350 reports/min on
one host) -- benchmark E1 sweeps the thread count to reproduce that
series.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.crawlers.base import Crawler, RawDocument
from repro.crawlers.fetcher import FetchDenied, FetchFailed, Fetcher
from repro.crawlers.frontier import Frontier
from repro.crawlers.state import CrawlState
from repro.htmlparse import parse
from repro.obs import NO_OBS, Obs
from repro.runtime import REAL_CLOCK, Clock, Stopwatch, named_lock


@dataclass
class CrawlResult:
    """Outcome of one crawl run."""

    documents: list[RawDocument] = field(default_factory=list)
    errors: list[tuple[str, str]] = field(default_factory=list)
    denied: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    elapsed: float = 0.0
    pages_fetched: int = 0

    @property
    def article_count(self) -> int:
        """Logical reports collected (continuations don't double-count)."""
        return sum(1 for doc in self.documents if doc.page_no == 1)

    @property
    def reports_per_minute(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.article_count / self.elapsed * 60.0


class CrawlEngine:
    """Crawl one or more sources with a worker pool.

    Parameters
    ----------
    crawlers:
        The per-source crawlers to run together.
    fetcher:
        The robust fetcher (shared across workers; it is thread-safe).
    num_threads:
        Worker pool size.
    state:
        Optional incremental state; article URLs already seen are not
        re-emitted, and newly emitted ones are recorded.
    max_articles:
        Optional cap for bounded benchmark runs.
    clock:
        Clock for elapsed/timestamp measurement and worker
        coordination.  Defaults to the fetcher's clock, so one virtual
        clock injected at the transport virtualises the whole crawl.
    health:
        Optional :class:`~repro.obs.health.HealthEngine`.  Every URL is
        admitted through it: quarantined sources are skipped (recorded
        in ``CrawlResult.skipped``) except for the single canonical
        probe fetch the engine grants per backoff expiry, and degraded
        sources get their host rate-limit interval stretched.
    """

    def __init__(
        self,
        crawlers: list[Crawler],
        fetcher: Fetcher,
        num_threads: int = 8,
        state: CrawlState | None = None,
        max_articles: int | None = None,
        clock: Clock | None = None,
        obs: Obs | None = None,
        health=None,
    ):
        self.crawlers = list(crawlers)
        self.fetcher = fetcher
        self.num_threads = num_threads
        self.state = state
        self.max_articles = max_articles
        self.clock = (
            clock
            if clock is not None
            else getattr(fetcher, "clock", None) or REAL_CLOCK
        )
        self.obs = obs if obs is not None else NO_OBS
        self.health = health
        self._by_host = {crawler.host: crawler for crawler in self.crawlers}
        self._result_lock = named_lock("crawl.result")

    def _crawler_for(self, url: str) -> Crawler | None:
        return self._by_host.get(Fetcher.host_of(url))

    def crawl(self) -> CrawlResult:
        """Run until the frontier drains (or ``max_articles`` reached)."""
        with self.obs.tracer.span(
            "crawl", sources=len(self.crawlers), threads=self.num_threads
        ) as crawl_span:
            if self.health is None:
                return self._crawl(crawl_span)
            # Verdict spans emitted mid-crawl nest under the crawl span
            # regardless of which worker thread triggers them.
            previous_parent = self.health.bind_parent(crawl_span)
            self.health.crawl_started()
            try:
                return self._crawl(crawl_span)
            finally:
                self.health.crawl_finished()
                self.health.bind_parent(previous_parent)

    def _crawl(self, crawl_span) -> CrawlResult:
        frontier = Frontier(clock=self.clock, obs=self.obs)
        result = CrawlResult()
        stop = threading.Event()
        for crawler in self.crawlers:
            frontier.add_all(crawler.seed_urls())

        def emit(doc: RawDocument) -> tuple[bool, bool]:
            """Record a document; returns (accepted, keep_going)."""
            with self._result_lock:
                if (
                    self.max_articles is not None
                    and doc.page_no == 1
                    and result.article_count >= self.max_articles
                ):
                    # capacity reached while this worker was fetching:
                    # drop the document rather than exceed the cap
                    return False, False
                result.documents.append(doc)
                full = (
                    self.max_articles is not None
                    and doc.page_no == 1
                    and result.article_count >= self.max_articles
                )
            return True, not full

        # All workers must be registered with the clock before any of
        # them starts fetching, or an early worker could advance
        # virtual time while a late one is still starting up.
        ready = threading.Barrier(self.num_threads)

        def work() -> None:
            with self.clock.worker():
                ready.wait()
                while not stop.is_set():
                    url = frontier.take()
                    if url is None:
                        return
                    try:
                        self._process(url, frontier, result, emit, stop, crawl_span)
                    finally:
                        frontier.task_done()

        watch = Stopwatch(self.clock)
        threads = [
            threading.Thread(target=work, name=f"crawl-{i}", daemon=True)
            for i in range(self.num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        frontier.close()
        result.elapsed = watch.elapsed
        # Workers append in completion order, which races at identical
        # virtual instants; a canonical sort keeps virtual-clock crawls
        # byte-for-byte reproducible.
        result.documents.sort(key=lambda doc: (doc.fetched_at, doc.url))
        result.errors.sort()
        result.denied.sort()
        result.skipped.sort()
        if self.state is not None:
            now = self.clock.now()
            for crawler in self.crawlers:
                self.state.record_crawl(crawler.site_name, now)
            # Engine-attached states defer durability: each seen-URL
            # delta commits with the transaction that stores its report
            # (save() is then a no-op and this persists nothing yet).
            self.state.save()
        return result

    def _process(
        self,
        url: str,
        frontier: Frontier,
        result: CrawlResult,
        emit,
        stop: threading.Event,
        crawl_span=None,
    ) -> None:
        crawler = self._crawler_for(url)
        if crawler is None:
            return
        source = crawler.site_name
        metrics = self.obs.metrics
        probe = False
        if self.health is not None:
            admission = self.health.admit(source, self.clock.now())
            # Feedback: a degraded/probing source crawls at a stretched
            # politeness interval; a recovered one gets its pace back.
            self.fetcher.rate_limiter.set_host_multiplier(
                crawler.host,
                admission.rate_multiplier,
                admission.min_interval,
            )
            if not admission.allow:
                with self._result_lock:
                    result.skipped.append(url)
                if not admission.probe:
                    return
                # The probe always targets the source's canonical seed
                # URL, so the granted fetch is identical no matter which
                # queued URL's worker won the grant.
                probe = True
                url = crawler.seed_urls()[0]
        # The worker thread has no span context of its own, so the
        # crawl span is passed in as the explicit parent.
        with self.obs.tracer.span(
            "crawl.fetch", parent=crawl_span, url=url, source=source
        ) as span:
            if probe:
                span.set("probe", True)
            try:
                # A probe asks a yes/no question; one attempt answers it.
                response = self.fetcher.fetch(
                    url, source=source, max_attempts=1 if probe else None
                )
            except FetchDenied:
                span.set("outcome", "denied")
                metrics.inc("crawl.denied", source=source)
                with self._result_lock:
                    result.denied.append(url)
                return
            except FetchFailed as error:
                span.set("outcome", "failed")
                metrics.inc("crawl.errors", source=source)
                with self._result_lock:
                    result.errors.append((url, str(error)))
                return
            if not response.ok:
                span.set("outcome", f"http-{response.status}")
                metrics.inc("crawl.errors", source=source)
                with self._result_lock:
                    result.errors.append((url, f"http {response.status}"))
                return
            span.set("outcome", "ok")
            if probe:
                # A probe only answers "is the source well again?"; the
                # page is not parsed, emitted or counted as progress.
                return
            metrics.inc("crawl.pages", source=source)
            with self._result_lock:
                result.pages_fetched += 1

            kind = crawler.classify(url)
            span.set("kind", kind)
            doc = parse(response.body)
            if kind == "index":
                links = crawler.extract_article_links(url, doc)
                if self.state is not None:
                    links = [link for link in links if not self.state.is_seen(link)]
                frontier.add_all(links)
                next_index = crawler.extract_next_index(url, doc)
                if next_index:
                    frontier.add(next_index)
            elif kind in ("article", "continuation"):
                page_no = crawler.page_no(url)
                group = crawler.group_url(url)
                if page_no == 1 and self.state is not None:
                    if not self.state.mark_seen(group):
                        return
                accepted, keep_going = emit(
                    RawDocument(
                        url=url,
                        source=source,
                        html=response.body,
                        fetched_at=self.clock.now(),
                        group_url=group,
                        page_no=page_no,
                    )
                )
                if not accepted:
                    # the cap dropped this document; let a future crawl
                    # collect it
                    if page_no == 1 and self.state is not None:
                        self.state.unmark(group)
                    stop.set()
                    frontier.close()
                    return
                if page_no == 1:
                    metrics.inc("crawl.reports", source=source)
                if not keep_going:
                    stop.set()
                    frontier.close()
                    return
                if page_no == 1:
                    continuation = crawler.extract_continuation(url, doc)
                    if continuation:
                        frontier.add(continuation, priority=True)


__all__ = ["CrawlEngine", "CrawlResult"]
