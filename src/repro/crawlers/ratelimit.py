"""Per-host politeness rate limiting.

Enforces a minimum interval between requests to the same host (the
larger of the framework default and the host's robots ``Crawl-delay``).
``acquire`` blocks the calling worker just long enough; hosts are
independent, so a multi-threaded crawl of 40+ sites proceeds at full
aggregate speed while each individual site sees a polite pace.  All
waiting happens on the injected :class:`~repro.runtime.Clock`, so under
a virtual clock the spacing between requests is exact and costs no
wall time.
"""

from __future__ import annotations

import threading

from repro.obs import NO_OBS, Obs
from repro.runtime import REAL_CLOCK, Clock, named_lock


class HostRateLimiter:
    """Minimum-interval limiter keyed by host."""

    def __init__(
        self,
        min_interval: float = 0.0,
        clock: Clock | None = None,
        obs: Obs | None = None,
    ):
        self.min_interval = min_interval
        self.clock = clock if clock is not None else REAL_CLOCK
        self.obs = obs if obs is not None else NO_OBS
        self._next_allowed: dict[str, float] = {}
        self._host_delay: dict[str, float] = {}
        self._policy: dict[str, tuple[float, float]] = {}
        self._lock = named_lock("crawl.ratelimit")

    def set_host_delay(self, host: str, delay: float | None) -> None:
        """Apply a robots Crawl-delay for one host (None clears it)."""
        with self._lock:
            if delay is None:
                self._host_delay.pop(host, None)
            else:
                self._host_delay[host] = delay

    def set_host_multiplier(
        self, host: str, multiplier: float, floor: float = 0.0
    ) -> None:
        """Health-feedback throttle: stretch one host's interval.

        The effective interval becomes ``max(base, floor) * multiplier``
        -- the ``floor`` matters because the framework default interval
        is 0, where a bare multiplier would change nothing.  A
        multiplier <= 1 with no floor clears the policy.
        """
        with self._lock:
            if multiplier <= 1.0 and floor <= 0.0:
                self._policy.pop(host, None)
            else:
                self._policy[host] = (multiplier, floor)

    def host_multiplier(self, host: str) -> float:
        with self._lock:
            return self._policy.get(host, (1.0, 0.0))[0]

    def _interval_for(self, host: str) -> float:
        base = max(self.min_interval, self._host_delay.get(host, 0.0))
        multiplier, floor = self._policy.get(host, (1.0, 0.0))
        return max(base, floor) * multiplier

    def acquire(self, host: str) -> float:
        """Block until the host may be contacted; returns the wait time.

        The reservation is made under the lock (so concurrent workers
        queue up distinct slots) but the sleep happens outside it.
        """
        with self._lock:
            now = self.clock.now()
            allowed_at = self._next_allowed.get(host, now)
            start = max(now, allowed_at)
            self._next_allowed[host] = start + self._interval_for(host)
        wait = start - now
        if wait > 0:
            self.obs.metrics.observe("crawl.ratelimit_wait_seconds", wait)
            self.clock.sleep(wait)
        return max(0.0, wait)


__all__ = ["HostRateLimiter"]
