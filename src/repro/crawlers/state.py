"""Incremental crawl state.

The paper's crawler framework collects "periodically and
incrementally": a re-crawl must skip reports it already has.  The
state records every article URL ever emitted plus per-source crawl
timestamps.

Persistence has two modes.  Standalone (``CrawlState(path)``) keeps the
historical single-JSON-file format, now written through the fsync'd
atomic helper.  Attached (``CrawlState(engine=...)``) the state is a
participant in the unified :class:`~repro.storage.StorageEngine`:
seen-URL deltas are *staged* -- applied to memory immediately so the
crawler's dedup works, but made durable only by the transaction that
stores the matching report.  A crash between crawl and store therefore
re-crawls the report instead of silently losing it.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.runtime import named_lock
from repro.storage.atomic import atomic_write_json
from repro.storage.engine import StorageEngine


class CrawlParticipant:
    """The crawl state's storage-engine adapter.

    Ops: ``seen`` / ``unseen`` (url), ``crawl`` (source + timestamp).
    """

    name = "crawl"

    def __init__(self) -> None:
        self.seen: set[str] = set()
        self.last_crawl: dict[str, float] = {}

    def apply(self, ops: list[dict]) -> None:
        for op in ops:
            kind = op["op"]
            if kind == "seen":
                self.seen.add(op["url"])
            elif kind == "unseen":
                self.seen.discard(op["url"])
            elif kind == "crawl":
                self.last_crawl[op["source"]] = float(op["ts"])
            else:  # pragma: no cover - corrupted journal
                raise ValueError(f"unknown crawl operation {kind!r}")

    def snapshot_data(self) -> dict:
        return {
            "seen": sorted(self.seen),
            "last_crawl": dict(self.last_crawl),
        }

    def load_snapshot(self, data: dict) -> None:
        self.seen = set(data.get("seen", []))
        self.last_crawl = {
            str(k): float(v) for k, v in data.get("last_crawl", {}).items()
        }

    def reset(self) -> None:
        self.seen = set()
        self.last_crawl = {}


class CrawlState:
    """Thread-safe seen-URL set, standalone or engine-attached."""

    def __init__(
        self,
        path: str | Path | None = None,
        engine: StorageEngine | None = None,
    ):
        if engine is not None and path is not None:
            raise ValueError("pass either path or engine, not both")
        self.engine = engine
        if engine is not None:
            self.path = None
            self._participant = engine.participant(CrawlParticipant.name)
            self._lock = engine.lock
        else:
            self.path = Path(path) if path is not None else None
            self._participant = CrawlParticipant()
            self._lock = named_lock("crawl.state")
            if self.path is not None and self.path.exists():
                self._participant.load_snapshot(json.loads(self.path.read_text()))

    def save(self) -> None:
        """Persist durably (no-op when an engine owns persistence)."""
        if self.engine is not None or self.path is None:
            return
        with self._lock:
            payload = self._participant.snapshot_data()
        atomic_write_json(self.path, payload)

    def is_seen(self, url: str) -> bool:
        with self._lock:
            return url in self._participant.seen

    def mark_seen(self, url: str) -> bool:
        """Record a URL; returns False when it was already known.

        Engine-attached, the delta is staged under the URL as its key:
        visible to dedup at once, durable only with the report's commit.
        """
        with self._lock:
            if url in self._participant.seen:
                return False
            if self.engine is not None:
                self.engine.stage(
                    CrawlParticipant.name, {"op": "seen", "url": url}, key=url
                )
            else:
                self._participant.seen.add(url)
            return True

    def unmark(self, url: str) -> None:
        """Forget a URL (e.g. its document was dropped by a crawl cap)."""
        with self._lock:
            if self.engine is not None:
                if self.engine.unstage(CrawlParticipant.name, url):
                    # the seen delta never became durable; just revert memory
                    self._participant.apply([{"op": "unseen", "url": url}])
                elif url in self._participant.seen:
                    self.engine.stage(
                        CrawlParticipant.name, {"op": "unseen", "url": url}, key=url
                    )
            else:
                self._participant.seen.discard(url)

    def record_crawl(self, source: str, timestamp: float) -> None:
        with self._lock:
            if self.engine is not None:
                self.engine.stage(
                    CrawlParticipant.name,
                    {"op": "crawl", "source": source, "ts": timestamp},
                )
            else:
                self._participant.last_crawl[source] = timestamp

    def last_crawl(self, source: str) -> float | None:
        with self._lock:
            return self._participant.last_crawl.get(source)

    @property
    def seen_count(self) -> int:
        with self._lock:
            return len(self._participant.seen)


__all__ = ["CrawlParticipant", "CrawlState"]
