"""Incremental crawl state.

The paper's crawler framework collects "periodically and
incrementally": a re-crawl must skip reports it already has.  The
state records every article URL ever emitted plus per-source crawl
timestamps, and persists to a JSON file so state survives restarts.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path


class CrawlState:
    """Thread-safe seen-URL set with optional JSON persistence."""

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._seen: set[str] = set()
        self._last_crawl: dict[str, float] = {}
        self._lock = threading.Lock()
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        data = json.loads(self.path.read_text())
        self._seen = set(data.get("seen", []))
        self._last_crawl = {
            str(k): float(v) for k, v in data.get("last_crawl", {}).items()
        }

    def save(self) -> None:
        """Persist atomically (write-then-rename)."""
        if self.path is None:
            return
        with self._lock:
            payload = {
                "seen": sorted(self._seen),
                "last_crawl": dict(self._last_crawl),
            }
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(self.path)

    def is_seen(self, url: str) -> bool:
        with self._lock:
            return url in self._seen

    def mark_seen(self, url: str) -> bool:
        """Record a URL; returns False when it was already known."""
        with self._lock:
            if url in self._seen:
                return False
            self._seen.add(url)
            return True

    def unmark(self, url: str) -> None:
        """Forget a URL (e.g. its document was dropped by a crawl cap)."""
        with self._lock:
            self._seen.discard(url)

    def record_crawl(self, source: str, timestamp: float) -> None:
        with self._lock:
            self._last_crawl[source] = timestamp

    def last_crawl(self, source: str) -> float | None:
        with self._lock:
            return self._last_crawl.get(source)

    @property
    def seen_count(self) -> int:
        with self._lock:
            return len(self._seen)


__all__ = ["CrawlState"]
