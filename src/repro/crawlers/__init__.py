"""OSCTI collection: the crawler framework (paper section 2.2).

40+ per-source crawlers run over a shared multi-threaded engine with a
deduplicating frontier, per-host politeness, robots gating, retrying
fetcher, incremental state and a periodic scheduler that reboots
crashed crawlers.

>>> from repro.crawlers import CrawlEngine, Fetcher, build_all_crawlers
>>> from repro.websim import SimulatedTransport, build_default_web
>>> web = build_default_web(scenario_count=5, reports_per_site=3)
>>> engine = CrawlEngine(
...     build_all_crawlers([web.sites[0].name]),
...     Fetcher(SimulatedTransport(web, time_scale=0.0)),
...     num_threads=2,
... )
>>> engine.crawl().article_count
3
"""

from repro.crawlers.base import (
    AdvisoryCrawler,
    BlogCrawler,
    Crawler,
    EncyclopediaCrawler,
    FeedCrawler,
    NewsCrawler,
    RawDocument,
    resolve_url,
)
from repro.crawlers.engine import CrawlEngine, CrawlResult
from repro.crawlers.fetcher import FetchDenied, FetchFailed, FetchStats, Fetcher
from repro.crawlers.frontier import Frontier
from repro.crawlers.ratelimit import HostRateLimiter
from repro.crawlers.robots import RobotsPolicy, path_of
from repro.crawlers.scheduler import (
    JobOutcome,
    JobSpec,
    PeriodicScheduler,
    SchedulerStats,
)
from repro.crawlers.sources import (
    ALL_CRAWLER_CLASSES,
    CRAWLER_REGISTRY,
    build_all_crawlers,
    crawler_for,
)
from repro.crawlers.state import CrawlState

__all__ = [
    "ALL_CRAWLER_CLASSES",
    "AdvisoryCrawler",
    "BlogCrawler",
    "CRAWLER_REGISTRY",
    "CrawlEngine",
    "CrawlResult",
    "CrawlState",
    "Crawler",
    "EncyclopediaCrawler",
    "FeedCrawler",
    "FetchDenied",
    "FetchFailed",
    "FetchStats",
    "Fetcher",
    "Frontier",
    "HostRateLimiter",
    "JobOutcome",
    "JobSpec",
    "NewsCrawler",
    "PeriodicScheduler",
    "RawDocument",
    "RobotsPolicy",
    "SchedulerStats",
    "build_all_crawlers",
    "crawler_for",
    "path_of",
    "resolve_url",
]
