"""TLP-tiered STIX feed publishing with journal-cursor incremental pulls.

A :class:`FeedPublisher` maintains one materialised view per feed tier
(``public`` / ``partner`` / ``internal``): the graph exported as a STIX
bundle with TLP markings, filtered to the tier's ceiling, sanitized,
and canonically ordered so identical graph states always serialise to
identical bytes.

Incremental pulls ride the storage journal.  Every refresh stamps the
view with the engines' commit sequence numbers (plus graph shape and a
fusion epoch, because knowledge fusion rewrites the graph without
journaling) and records which object ids changed or vanished since the
previous view.  A pull presents an opaque cursor -- or a bare journal
seq -- and receives only the objects touched since, plus a new cursor;
an ``If-None-Match`` ETag that still matches costs a 304 and zero
objects.  Unknown or expired cursors degrade to a full resync, so
replaying any pull sequence is idempotent: full-at-S equals
full-at-S0 + deltas(S0 -> S), byte-identical per tier.

Snapshots are precomputed at checkpoint time (the publisher registers
as a post-checkpoint step on the storage engine, covered by the
``checkpoint.feeds-snapshot`` crash point) and persisted atomically
under ``<storage_path>/feeds/``, so cursors survive restarts.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.feeds.tlp import TIER_MAX_TLP, TIERS, check_tier
from repro.obs import NO_OBS, Obs
from repro.ontology.stix import export_graph, filter_bundle, stix_id
from repro.runtime import named_lock
from repro.storage.atomic import atomic_write_text


def _canonical(stix_object: dict) -> str:
    return json.dumps(stix_object, separators=(",", ":"), sort_keys=True)


def _state_hash(objects: dict[str, str]) -> str:
    digest = hashlib.sha256()
    for object_id in sorted(objects):
        digest.update(object_id.encode("utf-8"))
        digest.update(b"\t")
        digest.update(objects[object_id].encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()[:32]


@dataclass
class _TierState:
    """One tier's materialised view plus its bounded change history."""

    #: object id -> canonical JSON text of the object
    objects: dict[str, str] = field(default_factory=dict)
    #: content hash of the view (doubles as the HTTP ETag)
    etag: str = ""
    #: summed journal seq across partitions at the last refresh
    seq: int = 0
    #: change-log entries ``{"etag", "seq", "changed", "deleted"}``,
    #: oldest first; each entry's etag is the view hash *after* it
    history: list[dict] = field(default_factory=list)


@dataclass
class FeedResponse:
    """One answered pull: an HTTP-shaped (status, payload, headers) row."""

    status: int
    payload: dict | None
    etag: str
    cursor: str | None


class FeedPublisher:
    """Serves TLP-tiered STIX bundles with cursors, ETags and snapshots.

    Parameters
    ----------
    graph_source:
        Zero-argument callable returning the current knowledge graph
        (the merged union in sharded deployments).
    stamp_source:
        Zero-argument callable returning a cheap change stamp: a tuple
        of ``(last_seq, node_count, edge_count)`` per partition.  The
        publisher rebuilds its views only when the stamp moves.
    keys:
        Tier -> API key for the protected tiers (``partner`` /
        ``internal``).  A tier with no key configured (directly or via
        a higher tier) is not served; ``public`` is always open.
    path:
        Directory for persisted per-tier snapshots (``None`` keeps the
        views in memory only).
    history:
        Change-log entries retained per tier; cursors older than the
        window degrade to a full resync.
    """

    def __init__(
        self,
        graph_source: Callable,
        stamp_source: Callable,
        keys: dict[str, str] | None = None,
        path: str | Path | None = None,
        history: int = 64,
        obs: Obs | None = None,
    ):
        self._graph_source = graph_source
        self._stamp_source = stamp_source
        self._keys = {k: str(v) for k, v in (keys or {}).items()}
        self._path = Path(path) if path is not None else None
        self._history_limit = max(1, int(history))
        self._obs = obs if obs is not None else NO_OBS
        self._lock = named_lock("feeds.publisher")
        self._fusion_epoch = 0
        self._stamp: tuple | None = None
        self._states: dict[str, _TierState] = {}
        if self._path is not None:
            self._load_snapshots()

    # -- auth ------------------------------------------------------------

    def authorize(self, tier: str, key: str | None) -> tuple[int, str] | None:
        """``None`` when the pull may proceed, else ``(status, error)``.

        ``public`` is open.  A protected tier is served when the
        presented key matches its own configured key or a higher
        tier's (an ``internal`` key also grants ``partner``); key
        comparison is constant-time (``hmac.compare_digest``).
        """
        check_tier(tier)
        if tier == "public":
            return None
        rank = TIERS.index(tier)
        granting = [
            self._keys[name]
            for name in TIERS
            if name in self._keys and TIERS.index(name) >= rank
        ]
        if not granting:
            return 403, f"feed tier {tier!r} is not enabled on this deployment"
        if not key:
            return 401, f"feed tier {tier!r} requires an API key"
        for candidate in granting:
            if hmac.compare_digest(candidate, str(key)):
                return None
        return 403, f"API key does not grant feed tier {tier!r}"

    # -- change tracking -------------------------------------------------

    def invalidate(self) -> None:
        """Force the next pull to rebuild (fusion mutates the graph
        without journaling, so seq numbers alone cannot see it)."""
        with self._lock:
            self._fusion_epoch += 1

    def _refresh(self) -> None:
        """Bring the per-tier views up to date when the stamp moved.

        The graph export and tier filtering -- the expensive part, and
        the part that takes the graph store's own lock -- run *outside*
        the publisher lock; the lock only guards the short stamp check
        and the view swap.  Two racing refreshes of the same stamp are
        idempotent (the second sees the stamp already applied and
        returns)."""
        with self._lock:
            epoch = self._fusion_epoch
            current = self._stamp
            have_states = bool(self._states)
        stamp = (epoch, tuple(self._stamp_source()))
        if stamp == current and have_states:
            return
        seq_total = sum(int(entry[0]) for entry in stamp[1])
        bundle = export_graph(self._graph_source(), markings=True)
        views: dict[str, tuple[dict[str, str], str]] = {}
        for tier in TIERS:
            filtered = filter_bundle(
                bundle, TIER_MAX_TLP[tier], sanitize=(tier == "public")
            )
            objects = {o["id"]: _canonical(o) for o in filtered.objects}
            views[tier] = (objects, _state_hash(objects))
        with self._lock:
            if stamp == self._stamp and self._states:
                return  # a racing pull applied this stamp already
            self._apply_views_locked(views, seq_total)
            self._stamp = stamp

    def _apply_views_locked(
        self, views: dict[str, tuple[dict[str, str], str]], seq_total: int
    ) -> None:
        """Swap in freshly built views, recording per-tier change-log
        entries (caller holds the lock)."""
        for tier in TIERS:
            objects, etag = views[tier]
            state = self._states.get(tier)
            if state is None:
                state = _TierState()
                self._states[tier] = state
                state.history.append(
                    {
                        "etag": etag,
                        "seq": seq_total,
                        "changed": sorted(objects),
                        "deleted": [],
                    }
                )
            elif etag != state.etag:
                state.history.append(
                    {
                        "etag": etag,
                        "seq": seq_total,
                        "changed": sorted(
                            object_id
                            for object_id, text in objects.items()
                            if state.objects.get(object_id) != text
                        ),
                        "deleted": sorted(
                            object_id
                            for object_id in state.objects
                            if object_id not in objects
                        ),
                    }
                )
                del state.history[: -self._history_limit]
            state.objects = objects
            state.etag = etag
            state.seq = seq_total

    # -- cursors ---------------------------------------------------------

    @staticmethod
    def _encode_cursor(tier: str, etag: str, seq: int) -> str:
        payload = json.dumps(
            {"t": tier, "h": etag, "s": seq},
            separators=(",", ":"),
            sort_keys=True,
        )
        return base64.urlsafe_b64encode(payload.encode("utf-8")).decode("ascii")

    @staticmethod
    def _decode_cursor(tier: str, token: str) -> dict:
        """Opaque token -> ``{"h", "s"}``; bare integers are accepted as
        raw journal seq numbers (the documented journal-seq contract)."""
        if token.lstrip("-").isdigit():
            return {"h": None, "s": int(token)}
        try:
            payload = json.loads(base64.urlsafe_b64decode(token.encode("ascii")))
            if payload["t"] != tier:
                raise ValueError("cursor belongs to a different feed tier")
            return {"h": str(payload["h"]), "s": int(payload["s"])}
        except ValueError:
            raise
        except Exception:
            raise ValueError("malformed feed cursor") from None

    def _pending_entries(self, state: _TierState, cursor: dict) -> list[dict] | None:
        """History entries the cursor has not seen; ``None`` means the
        cursor is unknown/expired and the client needs a full resync."""
        if cursor["h"] is not None:
            if cursor["h"] == state.etag:
                return []
            for index, entry in enumerate(state.history):
                if entry["etag"] == cursor["h"]:
                    return state.history[index + 1:]
            return None
        # bare-seq cursor: replay everything after the last entry the
        # client's seq covers
        anchor = None
        for index, entry in enumerate(state.history):
            if entry["seq"] <= cursor["s"]:
                anchor = index
        if anchor is None:
            return None
        return state.history[anchor + 1:]

    # -- serving ---------------------------------------------------------

    def pull(
        self, tier: str, cursor: str | None = None, etag: str | None = None
    ) -> FeedResponse:
        """Answer one feed pull.

        * a matching ``etag`` (If-None-Match) short-circuits to 304;
        * a resolvable ``cursor`` yields a delta (changed objects +
          deleted ids) since that cursor;
        * no cursor, or an expired one, yields the full bundle.

        Every response carries the view's ETag and a fresh cursor.
        """
        check_tier(tier)
        with self._obs.tracer.span("feeds.pull", tier=tier):
            self._refresh()
            with self._lock:
                state = self._states[tier]
                token = self._encode_cursor(tier, state.etag, state.seq)
                if etag is not None and etag == state.etag:
                    self._obs.metrics.inc("feeds.cache_hits", tier=tier)
                    return FeedResponse(304, None, state.etag, token)
                pending: list[dict] | None = None
                if cursor is not None:
                    pending = self._pending_entries(
                        state, self._decode_cursor(tier, cursor)
                    )
                if pending is None:
                    payload = {
                        "tier": tier,
                        "mode": "full",
                        "bundle": self._bundle_dict_locked(state),
                        "cursor": token,
                    }
                else:
                    changed: set[str] = set()
                    deleted: set[str] = set()
                    for entry in pending:
                        changed.update(entry["changed"])
                        deleted.update(entry["deleted"])
                    payload = {
                        "tier": tier,
                        "mode": "delta",
                        "objects": [
                            json.loads(state.objects[object_id])
                            for object_id in sorted(changed)
                            if object_id in state.objects
                        ],
                        "deleted": sorted(
                            object_id
                            for object_id in deleted
                            if object_id not in state.objects
                        ),
                        "cursor": token,
                    }
                self._obs.metrics.inc("feeds.pulls", tier=tier)
                self._obs.metrics.inc(
                    "feeds.bytes_served",
                    len(json.dumps(payload, separators=(",", ":"))),
                    tier=tier,
                )
                return FeedResponse(200, payload, state.etag, token)

    def full_bundle(self, tier: str) -> tuple[dict, str]:
        """The tier's complete bundle dict plus its ETag (CLI export)."""
        check_tier(tier)
        self._refresh()
        with self._lock:
            state = self._states[tier]
            return self._bundle_dict_locked(state), state.etag

    @staticmethod
    def _bundle_dict_locked(state: _TierState) -> dict:
        objects = [
            json.loads(state.objects[object_id])
            for object_id in sorted(state.objects)
        ]
        return {
            "type": "bundle",
            "id": stix_id("bundle", str(len(objects))),
            "objects": objects,
        }

    def describe(self) -> dict:
        """Per-tier summary for the feed index endpoint."""
        self._refresh()
        with self._lock:
            tiers = {}
            for tier in TIERS:
                state = self._states[tier]
                tiers[tier] = {
                    "max_tlp": TIER_MAX_TLP[tier],
                    "objects": len(state.objects),
                    "etag": state.etag,
                    "auth": "open" if self.authorize(tier, None) is None
                    else "api-key",
                }
            return {"tiers": tiers}

    # -- persistence -----------------------------------------------------

    def snapshot(self) -> None:
        """Refresh and persist every tier's view (registered as a
        post-checkpoint step; see ``checkpoint.feeds-snapshot``).

        Writes go through the storage layer's atomic helpers and happen
        outside the publisher lock, so a slow disk never blocks pulls.
        """
        with self._obs.tracer.span("feeds.snapshot"):
            self._refresh()
            payloads: dict[str, str] | None = None
            with self._lock:
                if self._path is not None:
                    payloads = {
                        tier: json.dumps(
                            {
                                "etag": state.etag,
                                "seq": state.seq,
                                "objects": state.objects,
                                "history": state.history,
                            },
                            sort_keys=True,
                        )
                        for tier, state in sorted(self._states.items())
                    }
            if payloads is not None:
                self._path.mkdir(parents=True, exist_ok=True)
                for tier, payload in payloads.items():
                    atomic_write_text(self._path / f"feed-{tier}.json", payload)
            self._obs.metrics.inc("feeds.snapshots")

    def _load_snapshots(self) -> None:
        """Restore persisted views so cursors survive a restart.  A
        missing or damaged snapshot simply rebuilds from the graph."""
        for tier in TIERS:
            snapshot_path = self._path / f"feed-{tier}.json"
            try:
                data = json.loads(snapshot_path.read_text(encoding="utf-8"))
                self._states[tier] = _TierState(
                    objects=dict(data["objects"]),
                    etag=str(data["etag"]),
                    seq=int(data["seq"]),
                    history=list(data["history"]),
                )
            except (OSError, ValueError, KeyError, TypeError):
                self._states.pop(tier, None)
        if len(self._states) != len(TIERS):
            # partial restore would desynchronise tier histories
            self._states = {}


__all__ = ["FeedPublisher", "FeedResponse"]
