"""Feed tiers and their TLP ceilings.

TLP (FIRST's Traffic Light Protocol) orders intelligence by how widely
it may travel: ``white`` (unlimited) < ``green`` (community) <
``amber`` (need-to-know) < ``red`` (named recipients only).  The TLP
vocabulary itself -- levels, canonical STIX marking-definition ids,
per-object classification -- lives in :mod:`repro.ontology.stix`
because markings *are* STIX objects; this module adds the serving-side
mapping from feed tiers to the maximum TLP each may carry.
"""

from __future__ import annotations

from repro.ontology.stix import (
    TLP_BY_MARKING_ID,
    TLP_LEVELS,
    TLP_MARKING_IDS,
    max_tlp,
    tlp_of_object,
    tlp_order,
)

#: Feed tiers in increasing privilege order.
TIERS: tuple[str, ...] = ("public", "partner", "internal")

#: Most sensitive TLP level each tier may carry.
TIER_MAX_TLP: dict[str, str] = {
    "public": "white",
    "partner": "amber",
    "internal": "red",
}


def check_tier(tier: str) -> str:
    """Validate a tier name; returns it unchanged."""
    if tier not in TIER_MAX_TLP:
        raise ValueError(f"unknown feed tier {tier!r}; known: {list(TIERS)}")
    return tier


def tier_allows(tier: str, level: str) -> bool:
    """Whether a feed tier may carry an object at this TLP level."""
    return tlp_order(level) <= tlp_order(TIER_MAX_TLP[check_tier(tier)])


__all__ = [
    "TIER_MAX_TLP",
    "TIERS",
    "TLP_BY_MARKING_ID",
    "TLP_LEVELS",
    "TLP_MARKING_IDS",
    "check_tier",
    "max_tlp",
    "tier_allows",
    "tlp_of_object",
    "tlp_order",
]
