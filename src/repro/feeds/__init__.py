"""Dissemination: TLP-tiered STIX feeds over the storage journal.

The paper's end goal is intelligence that analysts and downstream
tools can *consume*.  This package turns the STIX interchange mapping
(`repro.ontology.stix`) into a serving story: :class:`FeedPublisher`
maintains one sanitized, TLP-filtered bundle per feed tier
(public / partner / internal), tracks changes against the storage
journal's commit sequence numbers, and answers pulls either in full,
as an incremental delta since an opaque cursor, or as a conditional-GET
cache hit (ETag).  See ``DISSEMINATION.md`` for the wire contract.
"""

from repro.feeds.publisher import FeedPublisher, FeedResponse
from repro.feeds.tlp import (
    TIER_MAX_TLP,
    TIERS,
    TLP_LEVELS,
    TLP_MARKING_IDS,
    tier_allows,
    tlp_of_object,
)

__all__ = [
    "FeedPublisher",
    "FeedResponse",
    "TIER_MAX_TLP",
    "TIERS",
    "TLP_LEVELS",
    "TLP_MARKING_IDS",
    "tier_allows",
    "tlp_of_object",
]
