"""Checker: filter irrelevant reports before parsing.

Checkers "work as filters on the list of intermediate report
representations; they screen out irrelevant reports like empty pages
or ads by running condition checks" (paper section 2.4).  Checks are
named predicates so configurations can enable subsets and the system
can report *why* something was dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.htmlparse import parse
from repro.ontology.intermediate import ReportRecord

#: A check returns None when the record passes, else a rejection reason.
Check = Callable[[ReportRecord], "str | None"]

#: Words whose presence marks a page as security-relevant.
SECURITY_SIGNALS = frozenset(
    "malware ransomware trojan vulnerability exploit attack threat actor "
    "phishing backdoor botnet breach campaign cve encrypts payload "
    "compromise adversary infection advisory indicator".split()
)

_AD_MARKERS = ("sponsored content", "advertisement", "buy now", "% off")


def rendered_text(record: ReportRecord) -> str:
    """The record's HTML rendered to text, parsed at most once.

    Several checks need the rendered text; memoizing it on the record
    instance means one parse per record instead of one per check.
    """
    cached = getattr(record, "_rendered_text", None)
    if cached is None:
        cached = parse(record.html).text()
        record._rendered_text = cached  # type: ignore[attr-defined]
    return cached


def check_non_empty(record: ReportRecord) -> str | None:
    """Reject records with no page content at all."""
    if not any(page.strip() for page in record.pages):
        return "empty pages"
    return None


def make_min_text_check(min_chars: int = 120) -> Check:
    """Reject records whose rendered text is shorter than ``min_chars``."""

    def check_min_text(record: ReportRecord) -> str | None:
        text = rendered_text(record)
        if len(text) < min_chars:
            return f"text too short ({len(text)} < {min_chars} chars)"
        return None

    return check_min_text


def check_security_signal(record: ReportRecord) -> str | None:
    """Reject pages with no security-related vocabulary (ads, fluff)."""
    text = rendered_text(record).lower()
    if not any(signal in text for signal in SECURITY_SIGNALS):
        return "no security signal"
    return None


def check_not_ad(record: ReportRecord) -> str | None:
    """Reject obvious advertising pages."""
    text = rendered_text(record).lower()
    if any(marker in text for marker in _AD_MARKERS):
        return "advertising content"
    return None


def default_checks() -> list[Check]:
    return [
        check_non_empty,
        make_min_text_check(),
        check_security_signal,
        check_not_ad,
    ]


@dataclass
class CheckReport:
    """Outcome of one checker pass."""

    passed: list[ReportRecord] = field(default_factory=list)
    rejected: list[tuple[ReportRecord, str]] = field(default_factory=list)

    @property
    def pass_rate(self) -> float:
        total = len(self.passed) + len(self.rejected)
        return len(self.passed) / total if total else 0.0


class Checker:
    """Run every configured check; first failure rejects the record."""

    def __init__(self, checks: list[Check] | None = None):
        self.checks = checks if checks is not None else default_checks()

    def filter(self, records: list[ReportRecord]) -> CheckReport:
        report = CheckReport()
        for record in records:
            reason = self.why_rejected(record)
            if reason is None:
                report.passed.append(record)
            else:
                report.rejected.append((record, reason))
        return report

    def why_rejected(self, record: ReportRecord) -> str | None:
        for check in self.checks:
            reason = check(record)
            if reason is not None:
                return reason
        return None


__all__ = [
    "Check",
    "CheckReport",
    "Checker",
    "SECURITY_SIGNALS",
    "check_non_empty",
    "check_not_ad",
    "check_security_signal",
    "default_checks",
    "make_min_text_check",
    "rendered_text",
]
