"""Staged, parallel processing pipeline (paper section 2.1).

"To make the system scalable, we parallelize the processing procedure
of OSCTI reports.  We further pipeline the processing steps ... we
specify the formats of intermediate representations and make them
serializable.  With such pipeline design, we can have multiple
computing instances for a single step and pass serialized intermediate
results across the network."

This engine realises that design in-process: each stage owns a worker
pool, stages are connected by bounded queues, and each boundary can be
given a codec (``encode``/``decode``) so items cross stages in their
serialized form -- exactly what shipping them across hosts would
require, and what benchmark E3 measures the cost/benefit of.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import NO_OBS, Obs
from repro.runtime import REAL_CLOCK, Clock, Stopwatch, named_lock

#: A stage function maps one item to one item, or None to filter it out.
StageFn = Callable[[object], "object | None"]


@dataclass
class Codec:
    """Serialisation boundary between two stages."""

    encode: Callable[[object], object]
    decode: Callable[[object], object]


@dataclass
class Stage:
    """One pipeline step.

    ``workers`` parallel threads run ``fn``; ``codec`` (if set) applies
    at this stage's *output* boundary.
    """

    name: str
    fn: StageFn
    workers: int = 1
    codec: Codec | None = None


@dataclass
class StageStats:
    """Per-stage counters."""

    name: str
    processed: int = 0
    filtered: int = 0
    errors: int = 0
    busy_seconds: float = 0.0
    _lock: threading.Lock = field(
        default_factory=lambda: named_lock("pipeline.stage_stats"), repr=False
    )

    def record(self, elapsed: float, filtered: bool, error: bool) -> None:
        with self._lock:
            self.busy_seconds += elapsed
            if error:
                self.errors += 1
            elif filtered:
                self.filtered += 1
            else:
                self.processed += 1


@dataclass
class PipelineResult:
    """Outputs plus per-stage statistics and wall-clock time."""

    outputs: list[object]
    stages: list[StageStats]
    elapsed: float
    errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Output items per second."""
        return len(self.outputs) / self.elapsed if self.elapsed > 0 else 0.0


_SENTINEL = object()


class Pipeline:
    """Run items through a chain of parallel stages.

    Stage workers never sleep, so they are not registered with the
    clock; under a virtual clock all timings read as ~0 (the stages are
    CPU-bound, and virtual time only models waiting).

    Every stage execution runs under a tracer span named after the
    stage (see :meth:`_run_stage`; the ``obs/untraced-stage`` lint rule
    enforces this), carrying the item's correlation key when
    ``item_key`` is given.  With the default :data:`~repro.obs.NO_OBS`
    the span is a shared no-op.
    """

    def __init__(
        self,
        stages: list[Stage],
        queue_size: int = 128,
        clock: Clock | None = None,
        obs: Obs | None = None,
        item_key: Callable[[object], "str | None"] | None = None,
    ):
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        self.stages = list(stages)
        self.queue_size = queue_size
        self.clock = clock if clock is not None else REAL_CLOCK
        self.obs = obs if obs is not None else NO_OBS
        self.item_key = item_key

    def _run_stage(self, stage: Stage, decoder: Codec | None, item, parent):
        """One item through one stage, under the stage's tracer span."""
        with self.obs.tracer.span(stage.name, parent=parent) as span:
            if decoder is not None:
                item = decoder.decode(item)
            if self.item_key is not None:
                key = self.item_key(item)
                if key:
                    span.set("report", key)
            result = stage.fn(item)
            # stamped before encoding so per-stage unit costs
            # (repro.obs.profile) can count only the surviving items
            span.set("outcome", "filtered" if result is None else "ok")
            if result is not None and stage.codec is not None:
                result = stage.codec.encode(result)
            return result

    def run(self, items: list[object]) -> PipelineResult:
        """Process ``items``; blocks until every stage drains."""
        run_span = self.obs.tracer.span("pipeline", items=len(items))
        with run_span:
            return self._run(items, run_span)

    def _run(self, items: list[object], run_span) -> PipelineResult:
        queues = [
            queue.Queue(maxsize=self.queue_size)
            for _ in range(len(self.stages) + 1)
        ]
        stats = [StageStats(stage.name) for stage in self.stages]
        errors: list[tuple[str, str]] = []
        errors_lock = named_lock("pipeline.errors")
        threads: list[threading.Thread] = []
        watch = Stopwatch(self.clock)

        for index, stage in enumerate(self.stages):
            exited = [0]
            exited_lock = named_lock("pipeline.exited")
            decoder = None if index == 0 else self.stages[index - 1].codec

            def worker(
                stage=stage,
                index=index,
                exited=exited,
                exited_lock=exited_lock,
                decoder=decoder,
                stage_stats=stats[index],
            ) -> None:
                in_queue, out_queue = queues[index], queues[index + 1]
                while True:
                    item = in_queue.get()
                    if item is _SENTINEL:
                        # Recycle the sentinel so sibling workers see it
                        # too; the last worker out signals downstream.
                        in_queue.put(_SENTINEL)
                        with exited_lock:
                            exited[0] += 1
                            last = exited[0] == stage.workers
                        if last:
                            out_queue.put(_SENTINEL)
                        return
                    begin = self.clock.now()
                    try:
                        result = self._run_stage(stage, decoder, item, run_span)
                    except Exception as error:  # noqa: BLE001 - stage isolation
                        elapsed = self.clock.now() - begin
                        stage_stats.record(elapsed, filtered=False, error=True)
                        self.obs.metrics.inc(
                            "pipeline.items", stage=stage.name, outcome="error"
                        )
                        self.obs.metrics.observe(
                            "pipeline.stage_seconds", elapsed, stage=stage.name
                        )
                        with errors_lock:
                            errors.append((stage.name, f"{type(error).__name__}: {error}"))
                        continue
                    elapsed = self.clock.now() - begin
                    self.obs.metrics.observe(
                        "pipeline.stage_seconds", elapsed, stage=stage.name
                    )
                    if result is None:
                        stage_stats.record(elapsed, filtered=True, error=False)
                        self.obs.metrics.inc(
                            "pipeline.items", stage=stage.name, outcome="filtered"
                        )
                    else:
                        stage_stats.record(elapsed, filtered=False, error=False)
                        self.obs.metrics.inc(
                            "pipeline.items", stage=stage.name, outcome="ok"
                        )
                        out_queue.put(result)

            for worker_index in range(stage.workers):
                thread = threading.Thread(
                    target=worker,
                    name=f"{stage.name}-{worker_index}",
                    daemon=True,
                )
                threads.append(thread)
                thread.start()

        def feed() -> None:
            # Feeding runs on its own thread: with bounded queues the
            # feeder can block on back-pressure while the main thread
            # must keep draining the final queue.
            for item in items:
                queues[0].put(item)
            queues[0].put(_SENTINEL)

        feeder = threading.Thread(target=feed, name="pipeline-feed", daemon=True)
        feeder.start()
        threads.append(feeder)

        outputs: list[object] = []
        final_queue = queues[-1]
        # each stage emits exactly one downstream sentinel once all its
        # workers drain (see worker logic above)
        while True:
            item = final_queue.get()
            if item is _SENTINEL:
                break
            outputs.append(item)
        for thread in threads:
            thread.join(timeout=30.0)

        last_codec = self.stages[-1].codec
        if last_codec is not None:
            outputs = [last_codec.decode(item) for item in outputs]
        return PipelineResult(
            outputs=outputs,
            stages=stats,
            elapsed=watch.elapsed,
            errors=errors,
        )


__all__ = ["Codec", "Pipeline", "PipelineResult", "Stage", "StageFn", "StageStats"]
