"""The SecurityKG facade: the whole system behind one object.

Wires the four lifecycle stages of paper Figure 1 -- collection
(crawler framework), processing (porter / checker / parsers /
extractors on the parallel pipeline), storage (connectors), and
applications (Cypher, keyword search, graph exploration) -- plus the
off-pipeline knowledge-fusion stage.

>>> from repro.core.system import SecurityKG
>>> from repro.core.config import SystemConfig
>>> kg = SecurityKG(SystemConfig(reports_per_site=2, scenario_count=5,
...                              sources=["ThreatPedia"]))
>>> report = kg.run_once()
>>> report.reports_stored
2
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.connectors.base import Connector, IngestStats
from repro.connectors.graph import GraphConnector
from repro.connectors.searchconn import SearchConnector
from repro.connectors.sql import SQLConnector, SQLParticipant
from repro.core.checker import Checker, make_min_text_check, default_checks
from repro.core.config import SystemConfig
from repro.core.extractor import Extractor
from repro.core.parsers import ParserDispatch
from repro.core.pipeline import Codec, Pipeline, Stage
from repro.core.porter import Porter
from repro.crawlers.engine import CrawlEngine, CrawlResult
from repro.crawlers.fetcher import Fetcher
from repro.crawlers.sources import build_all_crawlers
from repro.crawlers.state import CrawlParticipant, CrawlState
from repro.feeds import FeedPublisher
from repro.fusion.fuse import FusionReport, KnowledgeFusion
from repro.graphdb.cypher.executor import CypherEngine, ResultRow
from repro.graphdb.wal import GraphDatabase, GraphParticipant
from repro.nlp.baselines import GazetteerRecognizer, RegexRecognizer
from repro.obs import NO_OBS, Obs, make_obs
from repro.obs.health import HealthEngine
from repro.ontology.intermediate import CTIRecord, ReportRecord
from repro.runtime import Clock, clock_from_name
from repro.search.index import SearchHit, SearchIndexParticipant
from repro.sharding import ShardSet, ShardedCrawlState, ShardedCypherEngine
from repro.storage.engine import StorageEngine
from repro.websim.network import SimulatedTransport
from repro.websim.scenario import generate_report_content, make_scenarios
from repro.websim.sites import Web, build_default_web


@dataclass
class SystemReport:
    """What one collection/processing/storage cycle accomplished."""

    crawl: CrawlResult
    reports_ported: int = 0
    reports_rejected: int = 0
    reports_stored: int = 0
    reports_skipped: int = 0
    rejection_reasons: dict[str, int] = field(default_factory=dict)
    ingest: dict[str, IngestStats] = field(default_factory=dict)
    pipeline_elapsed: float = 0.0
    pipeline_errors: list[tuple[str, str]] = field(default_factory=list)
    #: metrics snapshot taken at the end of the cycle (empty shape when
    #: the system runs with the default no-op observability bundle)
    metrics: dict = field(default_factory=dict)
    #: health report from the online health engine (None when disabled)
    health: dict | None = None

    @property
    def reports_per_minute(self) -> float:
        return self.crawl.reports_per_minute

    def describe(self) -> str:
        """Human-readable one-cycle summary."""
        lines = [
            f"crawled {self.crawl.article_count} reports "
            f"({self.crawl.pages_fetched} pages) in {self.crawl.elapsed:.2f}s",
            f"ported {self.reports_ported}, rejected {self.reports_rejected} "
            f"{dict(self.rejection_reasons)}",
            f"processed + stored {self.reports_stored} reports in "
            f"{self.pipeline_elapsed:.2f}s",
        ]
        if self.reports_skipped:
            lines.append(
                f"skipped {self.reports_skipped} already-ingested reports"
            )
        for name, stats in self.ingest.items():
            lines.append(
                f"  {name}: +{stats.entities_created} entities "
                f"({stats.entities_merged} merged), "
                f"+{stats.relations_created} relations "
                f"({stats.relations_merged} merged)"
            )
        return "\n".join(lines)


class SecurityKG:
    """Automated OSCTI gathering and management.

    Parameters
    ----------
    config:
        Deployment configuration (see :class:`SystemConfig`).
    web:
        The web to crawl.  Defaults to the simulated OSCTI web shaped
        by the configuration; a different ``Web`` (or one with a real
        transport behind it) can be injected.
    recognizer:
        Pre-built entity recogniser; overrides ``config.recognizer``.
    clock:
        Pre-built runtime clock; overrides ``config.clock``.  One clock
        flows to the transport, crawl engine and pipeline so the whole
        deployment shares a single notion of time.
    faults:
        Optional :class:`~repro.storage.CrashInjector` forwarded to the
        storage engine (recovery tests and the E18 benchmark).
    obs:
        Observability bundle (tracer + metrics registry) threaded
        through every layer -- crawl engine, pipeline, extractor,
        storage engine, connectors.  Defaults to the no-op
        :data:`~repro.obs.NO_OBS`; build a live one with
        :func:`repro.obs.make_obs`, sharing this system's clock so
        spans land on the same timeline as the work they measure.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        web: Web | None = None,
        recognizer=None,
        clock: Clock | None = None,
        faults=None,
        obs: Obs | None = None,
    ):
        self.config = config or SystemConfig()
        self.clock = (
            clock if clock is not None else clock_from_name(self.config.clock)
        )
        self.obs = obs if obs is not None else NO_OBS
        self.health: HealthEngine | None = None
        if self.config.health:
            if not self.obs.enabled:
                # the health engine tails spans and metrics; silently
                # evaluating nothing would be worse than upgrading
                self.obs = make_obs(self.clock)
            self.health = HealthEngine.from_config(
                self.config.health_rules,
                clock=self.clock,
                obs=self.obs,
                interval=self.config.health_interval,
                start=self.clock.now(),
            )
            self.obs.tracer.on_finish = self.health.observe_span
        self.web = web or build_default_web(
            scenario_count=self.config.scenario_count,
            reports_per_site=self.config.reports_per_site,
            seed=self.config.seed,
        )
        self.transport = SimulatedTransport(
            self.web,
            failure_rate=self.config.failure_rate,
            time_scale=self.config.time_scale,
            clock=self.clock,
        )
        self.shards: ShardSet | None = None
        if self.config.partitions > 1:
            # Sharded mode: N independent engines (each a complete
            # unified-mode vertical slice), one store worker per
            # partition, scatter-gather for every read path.
            self.shards = ShardSet(
                self.config.partitions,
                root=self.config.storage_path,
                connectors=self.config.connectors,
                faults=faults,
                obs=self.obs,
                clock=self.clock,
            )
            self.engine = None
            self.state = ShardedCrawlState(self.shards)
        elif self.config.storage_path is not None:
            # Unified mode: one engine, one journal, one atomic commit
            # across the graph, search index, crawl state and SQL mirror.
            participants = [
                GraphParticipant(),
                SearchIndexParticipant(),
                CrawlParticipant(),
            ]
            if "sql" in (self.config.connectors or []):
                participants.append(SQLParticipant())
            self.engine = StorageEngine(
                self.config.storage_path, participants, faults=faults,
                obs=self.obs,
            )
            self.state = CrawlState(engine=self.engine)
        else:
            # Standalone mode: stores persist (or not) independently;
            # an in-memory engine still tracks ingest markers so
            # re-processed reports are never double-counted in-session.
            self.engine = StorageEngine(None, [], faults=faults, obs=self.obs)
            self.state = CrawlState(self.config.crawl_state_path)
        self.porter = Porter()
        checks = default_checks()
        checks[1] = make_min_text_check(self.config.checker_min_chars)
        self.checker = Checker(checks)
        self.parsers = ParserDispatch()
        self.extractor = Extractor(
            recognizer=recognizer or self._build_recognizer(),
            min_confidence=self.config.recognizer_min_confidence,
            obs=self.obs,
        )

        self.connectors: dict[str, Connector] = {}
        if self.shards is not None:
            # each partition owns its connectors; the facade scatters
            self.database = None
        else:
            if self.config.storage_path is not None:
                self.database = GraphDatabase(engine=self.engine)
            else:
                self.database = GraphDatabase(self.config.graph_path)
            for name in self.config.connectors:
                connector = self._build_connector(name)
                connector.obs = self.obs
                self.connectors[name] = connector
        self.fusion = KnowledgeFusion()
        if self.shards is not None:
            self._cypher = ShardedCypherEngine(
                [partition.cypher for partition in self.shards.partitions]
            )
        else:
            self._cypher = CypherEngine(
                self.database.graph, obs=self.obs, clock=self.clock
            )
        # Dissemination: one TLP-tiered feed publisher over the whole
        # graph.  Its change stamp rides the journal seq numbers; its
        # snapshots ride the checkpoint cycle (partition 0's engine in
        # sharded mode -- ShardSet.checkpoint visits it first, so a
        # crash there leaves the remaining partitions untouched,
        # matching the E21 isolation story).
        feed_path = (
            None
            if self.config.storage_path is None
            else Path(self.config.storage_path) / "feeds"
        )
        self.feeds = FeedPublisher(
            graph_source=lambda: self.graph,
            stamp_source=self._feed_stamp,
            keys=self.config.feed_keys,
            path=feed_path,
            history=self.config.feed_history,
            obs=self.obs,
        )
        snapshot_host = (
            self.engine if self.shards is None else self.shards.partitions[0].engine
        )
        snapshot_host.add_checkpoint_step(self.feeds.snapshot)
        self._last_skipped = 0

    # -- wiring ----------------------------------------------------------

    def _build_connector(self, name: str) -> Connector:
        unified = self.config.storage_path is not None
        if name == "graph":
            return GraphConnector(self.database)
        if name == "sql":
            return SQLConnector(engine=self.engine if unified else None)
        if name == "search":
            return SearchConnector(engine=self.engine if unified else None)
        from repro.connectors.base import registry

        return registry.create(name)

    def _build_recognizer(self):
        choice = self.config.recognizer
        if choice == "gazetteer":
            return GazetteerRecognizer()
        if choice == "regex":
            return RegexRecognizer()
        if choice == "crf":
            from repro.nlp.ner import EntityRecognizer

            scenarios = make_scenarios(
                self.config.crf_training_scenarios,
                seed=self.config.seed + 4,
                known_only=True,
            )
            texts = []
            for scenario in scenarios:
                for k in range(2):
                    content = generate_report_content(
                        scenario,
                        random.Random(f"train-{scenario.scenario_id}-{k}"),
                        sentence_count=8,
                    )
                    texts.append(
                        " ".join(gs.text for gs in content.truth.sentences)
                    )
            return EntityRecognizer.train(
                texts, max_iterations=self.config.crf_max_iterations
            )
        raise ValueError(f"unknown recognizer {self.config.recognizer!r}")

    def _feed_stamp(self) -> tuple[tuple[int, int, int], ...]:
        """Per-partition ``(last_seq, node_count, edge_count)`` -- the
        feed publisher's cheap staleness check (fusion, which mutates
        the graph without journaling, bumps a separate epoch via
        :meth:`FeedPublisher.invalidate`)."""
        if self.shards is not None:
            return self.shards.feed_stamp()
        graph = self.database.graph
        return (
            (self.engine.last_seq, graph.node_count, graph.edge_count),
        )

    @classmethod
    def from_default_config(cls) -> "SecurityKG":
        return cls(SystemConfig())

    @classmethod
    def from_config_file(cls, path: str) -> "SecurityKG":
        return cls(SystemConfig.from_file(path))

    # -- the lifecycle ---------------------------------------------------------

    @property
    def graph(self):
        """The knowledge graph -- in sharded mode a detached union copy
        of every partition (read-only snapshot; see
        :meth:`ShardSet.merged_graph`)."""
        if self.shards is not None:
            return self.shards.merged_graph()
        return self.database.graph

    def crawl(self, max_articles: int | None = None) -> CrawlResult:
        """Collection stage: run the crawler framework once."""
        crawlers = build_all_crawlers(self.config.sources)
        engine = CrawlEngine(
            crawlers,
            Fetcher(self.transport, obs=self.obs),
            num_threads=self.config.crawl_threads,
            state=self.state,
            max_articles=max_articles or self.config.max_articles,
            clock=self.clock,
            obs=self.obs,
            health=self.health,
        )
        return engine.crawl()

    def process(self, reports: list[ReportRecord]) -> tuple[list[CTIRecord], object]:
        """Processing stage: checker -> parsers -> extractors, pipelined."""
        report_codec = None
        cti_codec = None
        if self.config.serialize_boundaries:
            report_codec = Codec(
                encode=lambda r: r.to_json(), decode=ReportRecord.from_json
            )
            cti_codec = Codec(
                encode=lambda r: r.to_json(), decode=CTIRecord.from_json
            )

        def check(record: ReportRecord):
            return record if self.checker.why_rejected(record) is None else None

        pipeline = Pipeline(
            [
                Stage("check", check, workers=1, codec=report_codec),
                Stage(
                    "parse",
                    self.parsers.parse,
                    workers=self.config.parse_workers,
                    codec=cti_codec,
                ),
                Stage(
                    "extract",
                    self.extractor.extract,
                    workers=self.config.extract_workers,
                    codec=cti_codec,
                ),
            ],
            clock=self.clock,
            obs=self.obs,
            item_key=lambda item: getattr(item, "report_id", None),
        )
        result = pipeline.run(reports)
        return list(result.outputs), result

    def store(self, records: list[CTIRecord]) -> dict[str, IngestStats]:
        """Storage stage: one atomic cross-store commit per report.

        Each report's graph mutations, search-index docs, SQL rows,
        *and* its seen-URL delta land in one engine transaction with an
        ingest marker, so replaying the same input after a crash is
        exactly-once: already-marked reports are skipped (counted in
        ``SystemReport.reports_skipped``), unmarked ones re-ingest.
        Leftover staged crawl state (rejected reports' URLs, crawl
        timestamps) is flushed at the end of the batch.

        In sharded mode the batch fans out to one worker per partition,
        each committing to its own engine with the same per-report
        atomicity and ingest markers (see :meth:`ShardSet.store`).
        """
        if self.shards is not None:
            with self.obs.tracer.span("store", records=len(records)) as span:
                outcome = self.shards.store(records, parent_span=span)
            self.obs.metrics.inc("storage.reports_skipped", outcome.skipped)
            self._last_skipped = outcome.skipped
            return outcome.ingest
        totals = {
            name: IngestStats() for name in self.connectors
        }
        skipped = 0
        with self.obs.tracer.span("store", records=len(records)):
            for record in records:
                if self.engine.is_ingested(record.report_id):
                    skipped += 1
                    continue
                with self.engine.transaction() as tx:
                    for name, connector in self.connectors.items():
                        totals[name] += connector.ingest_one(record)
                    tx.adopt_staged(CrawlParticipant.name, [record.url])
                    tx.mark_ingested(record.report_id)
            self.engine.flush()
        self.obs.metrics.inc("storage.reports_skipped", skipped)
        self._last_skipped = skipped
        return totals

    def run_once(self, max_articles: int | None = None) -> SystemReport:
        """One full collect -> process -> store cycle."""
        with self.obs.tracer.span("run") as run_span:
            crawl_result = self.crawl(max_articles=max_articles)
            ported = self.porter.port(crawl_result.documents)
            check_report = self.checker.filter(ported)
            records, pipeline_result = self.process(check_report.passed)
            ingest = self.store(records)

            reasons: dict[str, int] = {}
            for _record, reason in check_report.rejected:
                reasons[reason] = reasons.get(reason, 0) + 1
            for reason in sorted(reasons):
                self.obs.metrics.inc(
                    "pipeline.reports_rejected", reasons[reason], reason=reason
                )
            skipped = self._last_skipped
            self._update_graph_gauges()
            run_span.set("reports_stored", len(records) - skipped)
            health_report = None
            if self.health is not None:
                # end-of-cycle verdict spans nest under this run span
                previous_parent = self.health.bind_parent(run_span)
                health_report = self.health.finalize(self.clock.now())
                self.health.bind_parent(previous_parent)
        return SystemReport(
            crawl=crawl_result,
            reports_ported=len(ported),
            reports_rejected=len(check_report.rejected),
            reports_stored=len(records) - skipped,
            reports_skipped=skipped,
            rejection_reasons=reasons,
            ingest=ingest,
            pipeline_elapsed=pipeline_result.elapsed,
            pipeline_errors=list(pipeline_result.errors),
            metrics=self.obs.metrics.snapshot(),
            health=health_report,
        )

    def run_fusion(self) -> FusionReport:
        """Off-pipeline knowledge fusion over the stored graph."""
        with self.obs.tracer.span("fuse") as span:
            if self.shards is not None:
                report = self.shards.fuse(self.fusion)
            else:
                report = self.fusion.run(self.database.graph)
            span.set("groups_merged", report.groups_merged)
        self.obs.metrics.inc("fusion.groups_merged", report.groups_merged)
        self.obs.metrics.inc("fusion.aliases_resolved", report.aliases_resolved)
        self.feeds.invalidate()  # fusion rewrites the graph unjournaled
        self._update_graph_gauges()
        return report

    def _update_graph_gauges(self) -> None:
        """Refresh the graph-size gauges (skipped when metrics are off)."""
        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        if self.shards is not None:
            stats = self.shards.stats()
            metrics.set_gauge("graph.nodes", stats["nodes"])
            metrics.set_gauge("graph.edges", stats["edges"])
            for label, count in stats["labels"].items():
                metrics.set_gauge("graph.nodes_by_label", count, label=label)
            for edge_type, count in stats["edge_types"].items():
                metrics.set_gauge("graph.edges_by_type", count, type=edge_type)
            for entry in stats["partitions"]:
                partition = str(entry["partition"])
                metrics.set_gauge(
                    "graph.nodes", entry["nodes"], partition=partition
                )
                metrics.set_gauge(
                    "graph.edges", entry["edges"], partition=partition
                )
            return
        graph = self.graph
        metrics.set_gauge("graph.nodes", graph.node_count)
        metrics.set_gauge("graph.edges", graph.edge_count)
        for label, count in graph.label_counts().items():
            metrics.set_gauge("graph.nodes_by_label", count, label=label)
        for edge_type, count in graph.edge_type_counts().items():
            metrics.set_gauge("graph.edges_by_type", count, type=edge_type)

    # -- applications -----------------------------------------------------------

    def cypher(self, query: str, strict: bool | None = None) -> list[ResultRow]:
        """Cypher search over the knowledge graph (the Neo4j path).

        Queries are semantically analyzed before execution by default;
        ``strict=False`` skips the analysis for exploratory queries.
        """
        return self._cypher.run(query, strict=strict)

    def cypher_paginated(
        self,
        query: str,
        page_size: int,
        continuation: dict | None = None,
        strict: bool | None = None,
    ):
        """One page of a Cypher result plus a resume continuation.

        Executes preemptably -- the underlying scans stop once the page
        is full and the returned
        :class:`~repro.graphdb.cypher.executor.CypherPage` carries a
        JSON-safe continuation resuming exactly after the last row.
        Works against both single-graph and sharded deployments.
        """
        return self._cypher.run_paginated(
            query, page_size, continuation=continuation, strict=strict
        )

    def cypher_profile(
        self,
        query: str,
        strict: bool | None = None,
        step_cost: float = 0.0,
    ):
        """Execute a Cypher query with per-operator instrumentation.

        Returns a :class:`~repro.graphdb.cypher.executor.QueryProfile`
        whose rows are identical to :meth:`cypher` output and whose
        operator counters (rows, ``next()`` calls, cumulative/self
        seconds on the injected clock) annotate the physical plan --
        including per-partition sub-profiles in sharded deployments.
        """
        return self._cypher.profile(query, strict=strict, step_cost=step_cost)

    def keyword_search(self, query: str, limit: int = 10) -> list[SearchHit]:
        """Keyword search over collected reports (the Elasticsearch path)."""
        if self.shards is not None:
            if "search" not in self.config.connectors:
                raise RuntimeError("the 'search' connector is not configured")
            return self.shards.search(query, limit=limit)
        search = self.connectors.get("search")
        if not isinstance(search, SearchConnector):
            raise RuntimeError("the 'search' connector is not configured")
        return search.index.search(query, limit=limit)

    def health_report(self) -> dict:
        """The health engine's current canonical report.

        No evaluation is forced here, so after ``run_once`` the
        endpoint serves byte-for-byte the same JSON that
        ``run --health-out`` persisted for the cycle.
        """
        if self.health is None:
            return {"enabled": False}
        return self.health.report()

    def stats(self) -> dict[str, object]:
        """Knowledge-graph size summary (sharded mode adds a
        ``"partitions"`` per-shard breakdown)."""
        if self.shards is not None:
            return self.shards.stats()
        return {
            "nodes": self.graph.node_count,
            "edges": self.graph.edge_count,
            "labels": self.graph.label_counts(),
            "edge_types": self.graph.edge_type_counts(),
        }

    # -- lifecycle --------------------------------------------------------

    def checkpoint(self) -> None:
        """Compact the storage journal(s) (every partition when sharded)."""
        if self.shards is not None:
            self.shards.checkpoint()
            return
        self.engine.checkpoint()

    def close(self) -> None:
        """Release storage resources (flushes healthy staged state)."""
        if self.shards is not None:
            self.shards.close()
            return
        self.engine.close()
        if self.database.engine is not self.engine:
            self.database.close()

    def __enter__(self) -> "SecurityKG":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


__all__ = ["SecurityKG", "SystemReport"]
