"""Porter: raw crawl output -> intermediate report representations.

Porters "take the input report files and convert them into
intermediate report representations; they group multi-page reports and
add metadata like ids, sources, titles, and original file locations
and timestamps" (paper section 2.4).
"""

from __future__ import annotations

import hashlib

from repro.crawlers.base import RawDocument
from repro.htmlparse import parse
from repro.ontology.intermediate import ReportRecord


def report_id_for(group_url: str) -> str:
    """Deterministic report id from the logical report URL."""
    return "rpt-" + hashlib.sha1(group_url.encode()).hexdigest()[:16]


class Porter:
    """Group raw pages into per-report records with metadata."""

    def port(self, documents: list[RawDocument]) -> list[ReportRecord]:
        """Group a batch of raw pages by report and build records.

        Pages are ordered by page number within each report; the title
        comes from the first page's ``<title>``; the earliest fetch
        timestamp wins.
        """
        by_group: dict[str, list[RawDocument]] = {}
        order: list[str] = []
        for document in documents:
            if document.group_url not in by_group:
                order.append(document.group_url)
            by_group.setdefault(document.group_url, []).append(document)

        records: list[ReportRecord] = []
        for group_url in order:
            pages = sorted(by_group[group_url], key=lambda d: d.page_no)
            first = pages[0]
            title = parse(first.html).title
            # strip the site-name suffix the renderer appends
            if "|" in title:
                title = title.rsplit("|", 1)[0].strip()
            records.append(
                ReportRecord(
                    report_id=report_id_for(group_url),
                    source=first.source,
                    url=group_url,
                    title=title,
                    pages=[page.html for page in pages],
                    fetched_at=min(page.fetched_at for page in pages),
                    metadata={
                        "page_count": len(pages),
                        "page_urls": [page.url for page in pages],
                    },
                )
            )
        return records


__all__ = ["Porter", "report_id_for"]
