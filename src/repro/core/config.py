"""System configuration (paper section 2.1).

"The system can be configured through a user-provided configuration
file, which specifies the set of components to use and the additional
parameters (e.g., threshold values for entity recognition) passed to
these components."

:class:`SystemConfig` is that file's schema; it round-trips through
JSON so deployments are reproducible.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.storage.atomic import atomic_write_text


@dataclass
class SystemConfig:
    """Everything a SecurityKG deployment needs to know.

    Attributes
    ----------
    sources:
        Site names to collect from (``None`` = every registered source).
    scenario_count / reports_per_site / seed:
        Shape of the simulated web backing the crawl.
    crawl_threads:
        Worker pool size of the crawl engine.
    failure_rate / time_scale:
        Transport misbehaviour knobs (see the simulated network).
    parse_workers / extract_workers:
        Parallelism of the processing pipeline stages.
    serialize_boundaries:
        Pass serialized intermediates between pipeline stages (the
        multi-host deployment mode).
    connectors:
        Storage connectors to drive (names from the connector registry).
    recognizer:
        ``"crf"`` (the paper's extractor; trains at startup),
        ``"gazetteer"`` or ``"regex"`` (baselines).
    recognizer_min_confidence:
        Entity-recognition threshold passed to the extractor -- the
        paper's example of a component parameter.
    crf_training_scenarios / crf_max_iterations:
        Training budget when ``recognizer == "crf"``.
    storage_path:
        Directory for the unified storage engine (``None`` = in-memory).
        When set, the graph, search index, crawl state and SQL mirror
        all persist under one crash-consistent journal and
        ``graph_path`` / ``crawl_state_path`` are ignored.
    partitions:
        Number of storage shards.  ``1`` (the default) is the classic
        single-engine deployment, byte-identical to every release
        before sharding existed.  With N > 1 the system hash-partitions
        entities across N independent engines (each with its own
        journal and checkpoint cycle under
        ``storage_path/partition-<i>``, or in memory when
        ``storage_path`` is ``None``), stores with one worker per
        partition, and serves fusion/Cypher/search as scatter-gather.
    graph_path:
        Directory for standalone graph persistence (``None`` = in-memory;
        superseded by ``storage_path``).
    crawl_state_path:
        JSON file for standalone incremental-crawl state (``None`` =
        in-memory; superseded by ``storage_path``).
    checker_min_chars:
        Minimum rendered-text length accepted by the checker.
    clock:
        ``"real"`` (wall time; the deployment default) or ``"virtual"``
        (discrete-event time: crawls replay simulated latency instantly
        and deterministically -- the benchmark/test mode).
    health:
        Enable the online health engine (``repro.obs.health``): SLO
        rules evaluated over the span/metric stream, with per-source
        quarantine feedback into the crawl.  Implies a live
        observability bundle.
    health_rules:
        Optional rule overrides, mapping rule name to field overrides
        (plus an ``"engine"`` entry for engine parameters) -- see
        ``repro.obs.health.rules_from_config``.
    health_interval:
        Seconds between health evaluations.
    feed_keys:
        API keys for the protected dissemination feed tiers, e.g.
        ``{"partner": "...", "internal": "..."}``.  A key grants its
        tier and every tier below it; ``public`` needs no key.  Tiers
        with no key configured are not served (see DISSEMINATION.md).
    feed_history:
        Feed change-log entries retained per tier; pulls presenting a
        cursor older than the window fall back to a full resync.
    """

    sources: list[str] | None = None
    scenario_count: int = 40
    reports_per_site: int = 10
    seed: int = 7
    crawl_threads: int = 8
    failure_rate: float = 0.0
    time_scale: float = 0.0
    parse_workers: int = 2
    extract_workers: int = 2
    serialize_boundaries: bool = False
    connectors: list[str] = field(default_factory=lambda: ["graph", "search"])
    recognizer: str = "gazetteer"
    recognizer_min_confidence: float = 0.3
    crf_training_scenarios: int = 30
    crf_max_iterations: int = 60
    storage_path: str | None = None
    partitions: int = 1
    graph_path: str | None = None
    crawl_state_path: str | None = None
    checker_min_chars: int = 120
    max_articles: int | None = None
    clock: str = "real"
    health: bool = False
    health_rules: dict | None = None
    health_interval: float = 5.0
    feed_keys: dict | None = None
    feed_history: int = 64

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown configuration keys: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, payload: str) -> "SystemConfig":
        return cls.from_dict(json.loads(payload))

    @classmethod
    def from_file(cls, path: str | Path) -> "SystemConfig":
        return cls.from_json(Path(path).read_text())

    def save(self, path: str | Path) -> None:
        atomic_write_text(Path(path), self.to_json())


__all__ = ["SystemConfig"]
