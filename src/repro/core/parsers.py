"""Source-dependent parsers (paper section 2.4).

Parsers take "advantage of prior knowledge of the source website
structure", converting intermediate report representations into
intermediate CTI representations by reading the structured HTML:
title, vendor, date, category, fact-sheet fields, body sections, and
IOC appendices.  One parser class per site family; the per-site CSS
prefix is derived exactly as the crawler does it.

Structured fields that name entities ("Threat name", "CVE",
"Associated actor") become parser-method mentions -- extraction from
*structured* fields needs no NLP, which is the point of having
source-dependent parsers at all.
"""

from __future__ import annotations

from typing import ClassVar

from repro.htmlparse import Document, Element, parse
from repro.nlp.ioc import classify_ioc
from repro.ontology.entities import EntityType
from repro.ontology.intermediate import CTIRecord, Mention, ReportRecord
from repro.websim.render import site_prefix
from repro.crawlers.sources import CRAWLER_REGISTRY


class ParserError(Exception):
    """The page does not have the structure this parser expects."""


def classify_category(title: str, text: str) -> str:
    """Keyword fallback for sources that do not label their reports."""
    blob = f"{title} {text[:400]}".lower()
    if "cve-" in blob or "vulnerability" in blob or "patch" in blob:
        return "vulnerability"
    if any(w in blob for w in ("ransomware", "trojan", "malware", "worm", "stealer")):
        return "malware"
    return "attack"


def _record_iocs(record: CTIRecord, kind_name: str, values: list[str]) -> None:
    try:
        kind = EntityType(kind_name)
    except ValueError:
        return
    for value in values:
        value = value.strip()
        if value:
            record.add_ioc(kind, value)


class SourceParser:
    """Base parser: shared field handling, family-specific extraction."""

    family: ClassVar[str] = ""

    def __init__(self, source: str):
        self.source = source
        self.prefix = site_prefix(source)

    # -- interface -------------------------------------------------------

    def parse(self, report: ReportRecord) -> CTIRecord:
        record = CTIRecord(
            report_id=report.report_id,
            source=report.source,
            url=report.url,
            title=report.title,
            metadata=dict(report.metadata),
        )
        documents = [parse(page) for page in report.pages]
        self._parse_pages(record, documents)
        self._mentions_from_fields(record)
        return record

    def _parse_pages(self, record: CTIRecord, documents: list[Document]) -> None:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------

    def _mentions_from_fields(self, record: CTIRecord) -> None:
        """Entity mentions evidenced by structured fields."""
        threat = record.structured_fields.get("Threat name")
        if threat:
            record.mentions.append(
                Mention(text=threat, type=EntityType.MALWARE, method="parser")
            )
        actor = record.structured_fields.get("Associated actor")
        if actor:
            record.mentions.append(
                Mention(text=actor, type=EntityType.THREAT_ACTOR, method="parser")
            )
        cve = record.structured_fields.get("CVE")
        if cve:
            record.mentions.append(
                Mention(text=cve, type=EntityType.VULNERABILITY, method="parser")
            )
        software = record.structured_fields.get("Affected software")
        if software:
            record.mentions.append(
                Mention(text=software, type=EntityType.SOFTWARE, method="parser")
            )

    def _sections_after_headings(
        self, container: Element, heading_tag: str, para_class: str
    ) -> list[tuple[str, str]]:
        """Group (heading, paragraph-text) pairs in document order."""
        sections: list[tuple[str, str]] = []
        current_heading = ""
        current_texts: list[str] = []

        def flush() -> None:
            nonlocal current_texts
            if current_texts:
                sections.append((current_heading, " ".join(current_texts)))
            current_texts = []

        for element in container.iter():
            if element.tag == heading_tag:
                flush()
                current_heading = element.inner_text()
            elif element.tag == "p" and para_class in element.classes:
                current_texts.append(element.inner_text())
        flush()
        return sections


class EncyclopediaParser(SourceParser):
    """Fact sheet + sections on page 1; IOC tables on page 2."""

    family = "encyclopedia"

    def _parse_pages(self, record: CTIRecord, documents: list[Document]) -> None:
        first = documents[0]
        entry = first.select_one(f"div.{self.prefix}-entry")
        if entry is None:
            raise ParserError(f"{self.source}: missing entry container")
        record.report_category = entry.get("data-category") or "malware"
        title = first.select_one(f"h1.{self.prefix}-title")
        if title is not None:
            record.title = title.inner_text()
        vendor = first.select_one(f"div.{self.prefix}-meta .vendor")
        if vendor is not None:
            record.vendor = vendor.inner_text()
        time_el = first.select_one(f"div.{self.prefix}-meta time")
        if time_el is not None:
            record.published = time_el.get("datetime") or time_el.inner_text()
        summary = first.select_one(f"p.{self.prefix}-summary")
        if summary is not None:
            record.summary = summary.inner_text()

        facts = first.select(f"dl.{self.prefix}-facts dt")
        values = first.select(f"dl.{self.prefix}-facts dd")
        for key_el, value_el in zip(facts, values):
            record.structured_fields[key_el.inner_text()] = value_el.inner_text()

        record.sections = self._sections_after_headings(
            entry, "h2", f"{self.prefix}-para"
        )

        for document in documents[1:]:
            for table in document.select(f"table.{self.prefix}-ioc"):
                kind = table.get("data-kind")
                cells = [td.inner_text() for td in table.find_all("td")]
                _record_iocs(record, kind, cells)


class BlogParser(SourceParser):
    """Article body with an indicator list."""

    family = "blog"

    def _parse_pages(self, record: CTIRecord, documents: list[Document]) -> None:
        document = documents[0]
        post = document.select_one(f"article.{self.prefix}-post")
        if post is None:
            raise ParserError(f"{self.source}: missing post container")
        record.report_category = post.get("data-topic") or classify_category(
            record.title, document.text()
        )
        title = post.find("h1")
        if title is not None:
            record.title = title.inner_text()
        byline = document.select_one("div.byline")
        if byline is not None:
            text = byline.inner_text()
            record.vendor = (
                text.removeprefix("By ").split(" research team", 1)[0].strip()
            )
        date = document.select_one("div.byline span.date")
        if date is not None:
            record.published = date.inner_text()
        lede = document.select_one("p.lede")
        if lede is not None:
            record.summary = lede.inner_text()
        record.sections = self._sections_after_headings(
            post, "h3", f"{self.prefix}-body"
        )
        for item in document.select(f"ul.{self.prefix}-indicators li"):
            code = item.find("code")
            if code is not None:
                _record_iocs(record, item.get("data-kind"), [code.inner_text()])


class NewsParser(SourceParser):
    """Short-form story: headline, dateline, paragraphs; no IOC block."""

    family = "news"

    def _parse_pages(self, record: CTIRecord, documents: list[Document]) -> None:
        document = documents[0]
        story = document.select_one(f"div.{self.prefix}-story")
        if story is None:
            raise ParserError(f"{self.source}: missing story container")
        headline = document.select_one("h1.headline")
        if headline is not None:
            record.title = headline.inner_text()
        dateline = document.select_one("p.dateline")
        if dateline is not None:
            text = dateline.inner_text()
            published, _, vendor = text.partition(" - ")
            record.published = published.strip()
            record.vendor = vendor.strip()
        standfirst = document.select_one("p.standfirst")
        if standfirst is not None:
            record.summary = standfirst.inner_text()
        grafs = [
            p.inner_text() for p in document.select(f"p.{self.prefix}-graf")
        ]
        if grafs:
            record.sections = [("Story", " ".join(grafs))]
        record.report_category = classify_category(record.title, record.text)


class AdvisoryParser(SourceParser):
    """Vulnerability advisory: metadata table + <pre> observables."""

    family = "advisory"

    def _parse_pages(self, record: CTIRecord, documents: list[Document]) -> None:
        document = documents[0]
        main = document.select_one(f"main.{self.prefix}-advisory")
        if main is None:
            raise ParserError(f"{self.source}: missing advisory container")
        record.report_category = main.get("data-category") or "vulnerability"
        title = main.find("h1")
        if title is not None:
            record.title = title.inner_text()
        for row in document.select(f"table.{self.prefix}-meta tr"):
            key = row.find("th")
            value = row.find("td")
            if key is not None and value is not None:
                record.structured_fields[key.inner_text()] = value.inner_text()
        abstract = document.select_one("p.abstract")
        if abstract is not None:
            record.summary = abstract.inner_text()
        record.sections = self._sections_after_headings(
            main, "h2", f"{self.prefix}-text"
        )
        for block in document.select(f"pre.{self.prefix}-iocs"):
            _record_iocs(
                record, block.get("data-kind"), block.text().splitlines()
            )
        record.vendor = record.structured_fields.pop("Reported by", record.vendor)
        record.published = record.structured_fields.pop(
            "Published", record.published
        )


class FeedParser(SourceParser):
    """Aggregator item: key/value list + excerpt."""

    family = "feed"

    def _parse_pages(self, record: CTIRecord, documents: list[Document]) -> None:
        document = documents[0]
        item = document.select_one(f"div.{self.prefix}-item")
        if item is None:
            raise ParserError(f"{self.source}: missing item container")
        record.report_category = item.get("data-category") or classify_category(
            record.title, document.text()
        )
        title = document.select_one(f"h2.{self.prefix}-item-title")
        if title is not None:
            record.title = title.inner_text()
        for field_item in document.select(f"ul.{self.prefix}-fields li"):
            key = field_item.select_one("span.k")
            value = field_item.select_one("span.v")
            if key is not None and value is not None:
                record.structured_fields[key.inner_text()] = value.inner_text()
        lines = [
            p.inner_text() for p in document.select(f"div.{self.prefix}-excerpt p")
        ]
        if lines:
            record.summary = lines[0]
            if len(lines) > 1:
                record.sections = [("Excerpt", " ".join(lines[1:]))]
        src = document.select_one("div.src")
        if src is not None:
            text = src.inner_text().removeprefix("via ")
            vendor, _, published = text.partition(" | ")
            record.vendor = vendor.strip()
            record.published = published.strip()


_PARSER_BY_FAMILY: dict[str, type[SourceParser]] = {
    cls.family: cls
    for cls in (
        EncyclopediaParser,
        BlogParser,
        NewsParser,
        AdvisoryParser,
        FeedParser,
    )
}


class ParserDispatch:
    """Route each report to its source's parser.

    Parsing a structured field value that happens to be an IOC is also
    handled here: bare values in ``structured_fields`` are classified
    and promoted to IOC entries.
    """

    def __init__(self):
        self._parsers: dict[str, SourceParser] = {}

    def parser_for(self, source: str) -> SourceParser:
        parser = self._parsers.get(source)
        if parser is None:
            crawler_class = CRAWLER_REGISTRY.get(source)
            if crawler_class is None:
                raise ParserError(f"no parser registered for source {source!r}")
            parser = _PARSER_BY_FAMILY[crawler_class.family](source)
            self._parsers[source] = parser
        return parser

    def parse(self, report: ReportRecord) -> CTIRecord:
        record = self.parser_for(report.source).parse(report)
        for value in record.structured_fields.values():
            kind = classify_ioc(value)
            if kind is not None and kind.is_ioc:
                record.add_ioc(kind, value)
        return record

    def parse_all(self, reports: list[ReportRecord]) -> list[CTIRecord]:
        return [self.parse(report) for report in reports]


__all__ = [
    "AdvisoryParser",
    "BlogParser",
    "EncyclopediaParser",
    "FeedParser",
    "NewsParser",
    "ParserDispatch",
    "ParserError",
    "SourceParser",
    "classify_category",
]
