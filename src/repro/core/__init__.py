"""Pipeline core and the SecurityKG facade (paper Figure 1).

Porter -> Checker -> source-dependent Parsers -> source-independent
Extractors run on a parallel, serialisable-boundary pipeline; the
:class:`~repro.core.system.SecurityKG` facade wires collection,
processing, storage and applications together under one configuration.
"""

from repro.core.checker import CheckReport, Checker, default_checks
from repro.core.config import SystemConfig
from repro.core.extractor import Extractor
from repro.core.parsers import ParserDispatch, ParserError, SourceParser
from repro.core.pipeline import Codec, Pipeline, PipelineResult, Stage
from repro.core.porter import Porter, report_id_for
from repro.core.system import SecurityKG, SystemReport

__all__ = [
    "CheckReport",
    "Checker",
    "Codec",
    "Extractor",
    "ParserDispatch",
    "ParserError",
    "Pipeline",
    "PipelineResult",
    "Porter",
    "SecurityKG",
    "SourceParser",
    "Stage",
    "SystemConfig",
    "SystemReport",
    "default_checks",
    "report_id_for",
]
