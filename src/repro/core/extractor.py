"""Extractor: source-independent knowledge extraction (paper section 2.4).

Extractors "further refine these intermediate CTI representations by
completing some of the fields using entity recognition and relation
extraction"; because the intermediate CTI representation is unified,
one extractor serves every source.

The recogniser is pluggable: the CRF pipeline (the paper's approach),
or the gazetteer/regex baselines for speed and benchmarking.
"""

from __future__ import annotations

from typing import Protocol

from repro.nlp.baselines import GazetteerRecognizer
from repro.nlp.relation import RelationExtractor
from repro.nlp.tokenize import Sentence
from repro.obs import NO_OBS, Obs
from repro.ontology.intermediate import CTIRecord, Mention


class Recognizer(Protocol):
    """Anything that extracts mentions from text (CRF or baselines)."""

    def extract(self, text: str) -> tuple[list[Sentence], list[Mention]]: ...


class Extractor:
    """Fill mentions/relations/IOCs on intermediate CTI representations."""

    def __init__(
        self,
        recognizer: Recognizer | None = None,
        relation_extractor: RelationExtractor | None = None,
        min_confidence: float = 0.3,
        obs: Obs | None = None,
    ):
        self.recognizer = recognizer or GazetteerRecognizer()
        self.relations = relation_extractor or RelationExtractor()
        self.min_confidence = min_confidence
        self.obs = obs if obs is not None else NO_OBS

    def extract(self, record: CTIRecord) -> CTIRecord:
        """Refine one record in place (and return it)."""
        text = record.text
        if text.strip():
            metrics = self.obs.metrics
            with self.obs.tracer.span(
                "extract.ner", report=record.report_id
            ) as ner_span:
                sentences, mentions = self.recognizer.extract(text)
                ner_span.set("mentions", len(mentions))
                # token volume drives the NER seconds/token unit cost
                # in the profile layer and the E24 baseline
                ner_span.set(
                    "tokens", sum(len(s.tokens) for s in sentences)
                )
            existing = {(m.text.lower(), m.type) for m in record.mentions}
            for mention in mentions:
                if mention.confidence < self.min_confidence:
                    continue
                if mention.type.is_ioc:
                    record.add_ioc(mention.type, mention.text)
                    metrics.inc("extract.iocs", type=mention.type.value)
                    continue
                if (mention.text.lower(), mention.type) not in existing:
                    record.mentions.append(mention)
                    existing.add((mention.text.lower(), mention.type))
                    metrics.inc("extract.entities", type=mention.type.value)
            with self.obs.tracer.span(
                "extract.relation", report=record.report_id
            ) as rel_span:
                before = len(record.relations)
                for index, sentence in enumerate(sentences):
                    sentence_mentions = [
                        m for m in mentions if m.sentence_index == index
                    ]
                    record.relations.extend(
                        self.relations.extract_with_mentions(
                            sentence.tokens, sentence_mentions, index
                        )
                    )
                rel_span.set("relations", len(record.relations) - before)
            for relation in record.relations[before:]:
                metrics.inc("extract.relations", verb=relation.verb)
        return record

    def extract_all(self, records: list[CTIRecord]) -> list[CTIRecord]:
        return [self.extract(record) for record in records]


__all__ = ["Extractor", "Recognizer"]
