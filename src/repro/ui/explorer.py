"""Headless graph explorer: the UI's interaction model.

Every behaviour the demo shows (paper sections 2.6 and 3) is
implemented here against the knowledge graph, independent of pixels:

* focus on search results, with a configurable node budget;
* node expansion -- double-click spawns missing neighbours (bounded by
  the max-neighbours setting);
* node collapse -- double-click again hides the neighbours *and their
  downstream expansions* (tracked through an expansion-provenance
  tree, so nodes the user found by other routes stay);
* node dragging with lock-in-place semantics (delegated to the layout);
* a history stack behind the back button;
* random-subgraph fetch for open-ended exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphdb.store import Edge, Node, PropertyGraph
from repro.graphdb.traversal import random_subgraph
from repro.ui.layout import ForceLayout, LayoutConfig


@dataclass
class ViewConfig:
    """User-tunable display limits (paper: 'the user can configure the
    number of nodes displayed and the maximum number of neighboring
    nodes displayed for a node')."""

    max_nodes: int = 60
    max_neighbors: int = 12
    layout_iterations: int = 40


@dataclass
class ViewState:
    """One snapshot of what is on the canvas."""

    node_ids: set[int] = field(default_factory=set)
    expanded_from: dict[int, int] = field(default_factory=dict)  # child -> parent
    expanded_nodes: set[int] = field(default_factory=set)
    positions: dict[int, tuple[float, float]] = field(default_factory=dict)
    pinned: set[int] = field(default_factory=set)

    def copy(self) -> "ViewState":
        return ViewState(
            node_ids=set(self.node_ids),
            expanded_from=dict(self.expanded_from),
            expanded_nodes=set(self.expanded_nodes),
            positions=dict(self.positions),
            pinned=set(self.pinned),
        )


class GraphExplorer:
    """Interactive view over a property graph."""

    def __init__(
        self,
        graph: PropertyGraph,
        config: ViewConfig | None = None,
        layout_config: LayoutConfig | None = None,
        seed: int = 42,
    ):
        self.graph = graph
        self.config = config or ViewConfig()
        self._layout_config = layout_config or LayoutConfig()
        self._seed = seed
        self.state = ViewState()
        self.layout = ForceLayout(config=self._layout_config, seed=seed)
        self._history: list[ViewState] = []

    # -- view content ---------------------------------------------------

    def visible_nodes(self) -> list[Node]:
        return [
            self.graph.node(i)
            for i in sorted(self.state.node_ids)
            if self.graph.has_node(i)
        ]

    def visible_edges(self) -> list[Edge]:
        ids = self.state.node_ids
        return [
            edge
            for edge in self.graph.edges()
            if edge.src in ids and edge.dst in ids
        ]

    def _sync_layout(self, anchor: int | None = None) -> None:
        for node_id in self.state.node_ids:
            if node_id not in self.layout.positions:
                self.layout.add_node(node_id, near=anchor)
        for node_id in list(self.layout.positions):
            if node_id not in self.state.node_ids:
                self.layout.remove_node(node_id)
        self.layout.set_edges(
            [(e.src, e.dst) for e in self.visible_edges()]
        )
        self.layout.run(self.config.layout_iterations)
        self.state.positions = dict(self.layout.positions)

    def _push_history(self) -> None:
        self._history.append(self.state.copy())

    # -- entry points -----------------------------------------------------

    def show(self, node_ids: list[int]) -> None:
        """Replace the view with the given nodes (search results)."""
        self._push_history()
        budget = node_ids[: self.config.max_nodes]
        self.state = ViewState(node_ids={i for i in budget if self.graph.has_node(i)})
        self.layout = ForceLayout(config=self._layout_config, seed=self._seed)
        self._sync_layout()

    def show_random(self, size: int | None = None, seed: int | None = None) -> None:
        """Fetch a random subgraph for exploration."""
        subgraph = random_subgraph(
            self.graph, size or self.config.max_nodes, seed=seed
        )
        self.show([node.node_id for node in subgraph.nodes])

    # -- interactions --------------------------------------------------------

    def toggle(self, node_id: int) -> str:
        """Double-click semantics: expand, or collapse if expanded.

        Returns ``"expanded"`` or ``"collapsed"``.
        """
        if node_id in self.state.expanded_nodes and self._has_visible_children(
            node_id
        ):
            self.collapse(node_id)
            return "collapsed"
        self.expand(node_id)
        return "expanded"

    def _has_visible_children(self, node_id: int) -> bool:
        return any(
            parent == node_id for parent in self.state.expanded_from.values()
        )

    def expand(self, node_id: int) -> list[int]:
        """Spawn neighbours that are not in the view yet."""
        if node_id not in self.state.node_ids:
            raise KeyError(f"node {node_id} is not visible")
        self._push_history()
        spawned: list[int] = []
        for neighbor in self.graph.neighbors(node_id):
            if len(spawned) >= self.config.max_neighbors:
                break
            if len(self.state.node_ids) + len(spawned) >= self.config.max_nodes:
                break
            if neighbor.node_id in self.state.node_ids:
                continue
            spawned.append(neighbor.node_id)
        for new_id in spawned:
            self.state.node_ids.add(new_id)
            self.state.expanded_from[new_id] = node_id
        self.state.expanded_nodes.add(node_id)
        self._sync_layout(anchor=node_id)
        return spawned

    def collapse(self, node_id: int) -> list[int]:
        """Hide this node's expansion subtree (neighbours + downstream)."""
        self._push_history()
        to_hide: list[int] = []
        frontier = [
            child
            for child, parent in self.state.expanded_from.items()
            if parent == node_id
        ]
        while frontier:
            current = frontier.pop()
            if current in to_hide:
                continue
            to_hide.append(current)
            frontier.extend(
                child
                for child, parent in self.state.expanded_from.items()
                if parent == current
            )
        for hidden in to_hide:
            self.state.node_ids.discard(hidden)
            self.state.expanded_from.pop(hidden, None)
            self.state.expanded_nodes.discard(hidden)
            self.state.pinned.discard(hidden)
        self.state.expanded_nodes.discard(node_id)
        self._sync_layout()
        return to_hide

    def drag(self, node_id: int, x: float, y: float) -> None:
        """Move a node; it locks in place but stays draggable."""
        if node_id not in self.state.node_ids:
            raise KeyError(f"node {node_id} is not visible")
        self._push_history()
        self.layout.pin(node_id, x, y)
        self.state.pinned.add(node_id)
        self._sync_layout()

    def release(self, node_id: int) -> None:
        """Unlock a previously dragged node."""
        self.layout.unpin(node_id)
        self.state.pinned.discard(node_id)

    def back(self) -> bool:
        """Return to the previous view; False when no history remains."""
        if not self._history:
            return False
        self.state = self._history.pop()
        self.layout = ForceLayout(config=self._layout_config, seed=self._seed)
        self.layout.positions = dict(self.state.positions)
        self.layout.pinned = set(self.state.pinned)
        self.layout.set_edges([(e.src, e.dst) for e in self.visible_edges()])
        return True

    # -- export -----------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready view description (what a canvas client renders).

        Node names and edge types are included because the UI displays
        them by default; node labels drive colouring.
        """
        nodes = []
        for node in self.visible_nodes():
            x, y = self.state.positions.get(node.node_id, (0.0, 0.0))
            nodes.append(
                {
                    "id": node.node_id,
                    "label": node.label,
                    "name": node.properties.get("name", ""),
                    "x": round(x, 2),
                    "y": round(y, 2),
                    "pinned": node.node_id in self.state.pinned,
                    "expanded": node.node_id in self.state.expanded_nodes,
                    "properties": dict(node.properties),
                }
            )
        edges = [
            {
                "id": edge.edge_id,
                "src": edge.src,
                "dst": edge.dst,
                "type": edge.type,
                "weight": edge.properties.get("weight", 1),
            }
            for edge in self.visible_edges()
        ]
        return {"nodes": nodes, "edges": edges}


__all__ = ["GraphExplorer", "ViewConfig", "ViewState"]
