"""Quadtree for Barnes-Hut force approximation.

The UI "calculates the nodes' approximated repulsive force based on
their distribution" (paper section 2.6) -- the Barnes-Hut scheme:
bodies are indexed in a quadtree, each internal cell stores its total
mass and centre of mass, and a far-away cell acts on a body as a
single pseudo-body, cutting the n-body repulsion from O(n^2) to
O(n log n).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Body:
    """One point mass (a graph node in layout space)."""

    x: float
    y: float
    mass: float = 1.0
    key: object = None


@dataclass
class _Cell:
    """One quadtree cell: square region + aggregate mass."""

    cx: float  # centre of the region
    cy: float
    half: float  # half side length
    body: Body | None = None
    children: "list[_Cell] | None" = None
    mass: float = 0.0
    mass_x: float = 0.0  # mass-weighted coordinate sums
    mass_y: float = 0.0

    @property
    def center_of_mass(self) -> tuple[float, float]:
        if self.mass == 0:
            return (self.cx, self.cy)
        return (self.mass_x / self.mass, self.mass_y / self.mass)

    def _quadrant(self, body: Body) -> int:
        index = 0
        if body.x >= self.cx:
            index += 1
        if body.y >= self.cy:
            index += 2
        return index

    def _subdivide(self) -> None:
        quarter = self.half / 2
        self.children = [
            _Cell(self.cx - quarter, self.cy - quarter, quarter),
            _Cell(self.cx + quarter, self.cy - quarter, quarter),
            _Cell(self.cx - quarter, self.cy + quarter, quarter),
            _Cell(self.cx + quarter, self.cy + quarter, quarter),
        ]

    def insert(self, body: Body, depth: int = 0) -> None:
        self.mass += body.mass
        self.mass_x += body.mass * body.x
        self.mass_y += body.mass * body.y
        if self.children is None and self.body is None:
            self.body = body
            return
        if self.children is None:
            # occupied leaf: split and reinsert the resident
            resident = self.body
            self.body = None
            self._subdivide()
            if depth < 32:
                self.children[self._quadrant(resident)].insert(resident, depth + 1)
                self.children[self._quadrant(body)].insert(body, depth + 1)
            else:
                # coincident points: keep both in this cell's first child
                self.children[0].body = resident
                self.children[0].mass += resident.mass + body.mass
            return
        self.children[self._quadrant(body)].insert(body, depth + 1)


@dataclass
class QuadTree:
    """Barnes-Hut quadtree over a set of bodies."""

    root: _Cell
    theta: float = 0.7
    body_count: int = 0

    @classmethod
    def build(cls, bodies: list[Body], theta: float = 0.7) -> "QuadTree":
        """Build a tree covering all bodies."""
        if not bodies:
            return cls(root=_Cell(0.0, 0.0, 1.0), theta=theta, body_count=0)
        min_x = min(b.x for b in bodies)
        max_x = max(b.x for b in bodies)
        min_y = min(b.y for b in bodies)
        max_y = max(b.y for b in bodies)
        half = max(max_x - min_x, max_y - min_y, 1e-6) / 2 * 1.01
        root = _Cell((min_x + max_x) / 2, (min_y + max_y) / 2, half)
        for body in bodies:
            root.insert(body)
        return cls(root=root, theta=theta, body_count=len(bodies))

    def force_on(
        self, body: Body, strength: float, min_distance: float = 0.01
    ) -> tuple[float, float]:
        """Approximate repulsive force on ``body`` from all others.

        Repulsion follows the Fruchterman-Reingold style
        ``strength * m1 * m2 / d`` profile, evaluated exactly for
        nearby bodies and via cell centres of mass when the cell is
        small relative to its distance (``half*2 / d < theta``).
        """
        force_x = force_y = 0.0
        stack = [self.root]
        while stack:
            cell = stack.pop()
            if cell.mass == 0:
                continue
            if cell.body is body and cell.children is None:
                continue
            com_x, com_y = cell.center_of_mass
            dx = body.x - com_x
            dy = body.y - com_y
            distance_sq = dx * dx + dy * dy
            distance = max(distance_sq**0.5, min_distance)
            size = cell.half * 2
            if cell.children is None or (size / distance) < self.theta:
                mass = cell.mass
                if cell.children is None and cell.body is body:
                    continue
                # subtract self-contribution when the aggregated cell
                # contains the probe body itself
                if cell.children is not None and _contains(cell, body):
                    mass -= body.mass
                    if mass <= 0:
                        if cell.children is not None:
                            stack.extend(cell.children)
                        continue
                    # recompute a centre of mass without the body
                    com_x = (cell.mass_x - body.mass * body.x) / mass
                    com_y = (cell.mass_y - body.mass * body.y) / mass
                    dx = body.x - com_x
                    dy = body.y - com_y
                    distance = max((dx * dx + dy * dy) ** 0.5, min_distance)
                magnitude = strength * body.mass * mass / distance
                force_x += magnitude * dx / distance
                force_y += magnitude * dy / distance
            else:
                stack.extend(cell.children)
        return force_x, force_y


def _contains(cell: _Cell, body: Body) -> bool:
    return (
        cell.cx - cell.half <= body.x <= cell.cx + cell.half
        and cell.cy - cell.half <= body.y <= cell.cy + cell.half
    )


def exact_repulsion(
    bodies: list[Body], body: Body, strength: float, min_distance: float = 0.01
) -> tuple[float, float]:
    """O(n) exact repulsion on one body (O(n^2) overall); the baseline
    Barnes-Hut is benchmarked against (E11)."""
    force_x = force_y = 0.0
    for other in bodies:
        if other is body:
            continue
        dx = body.x - other.x
        dy = body.y - other.y
        distance = max((dx * dx + dy * dy) ** 0.5, min_distance)
        magnitude = strength * body.mass * other.mass / distance
        force_x += magnitude * dx / distance
        force_y += magnitude * dy / distance
    return force_x, force_y


__all__ = ["Body", "QuadTree", "exact_repulsion"]
