"""Force-directed graph layout with Barnes-Hut repulsion.

"The UI actively responds to node movements to prevent overlap through
an automatic graph layout using the Barnes-Hut algorithm" (paper
section 2.6).  The layout combines:

* Barnes-Hut approximated repulsion between all node pairs,
* spring attraction along edges toward an ideal edge length,
* weak gravity toward the canvas centre (keeps components together),
* simulated-annealing style cooling of the maximum displacement,
* pinned nodes ("the dragged nodes will lock in place").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.ui.quadtree import Body, QuadTree, exact_repulsion


@dataclass
class LayoutConfig:
    """Force model parameters."""

    width: float = 1000.0
    height: float = 1000.0
    # With F_rep = repulsion/d and F_spring = spring*(d-ideal), edges
    # settle near d = (ideal + sqrt(ideal^2 + 4*repulsion/spring))/2,
    # ~100 for these defaults -- close to the ideal length.
    ideal_edge_length: float = 80.0
    repulsion: float = 1000.0
    spring: float = 0.5
    gravity: float = 0.01
    theta: float = 0.7
    initial_temperature: float = 60.0
    cooling: float = 0.95
    node_radius: float = 12.0


@dataclass
class ForceLayout:
    """Incremental force-directed layout over an explicit node/edge set.

    ``use_barnes_hut=False`` switches to exact O(n^2) repulsion --
    identical forces, different cost -- for benchmark E11.
    """

    config: LayoutConfig = field(default_factory=LayoutConfig)
    use_barnes_hut: bool = True
    seed: int = 42
    positions: dict[object, tuple[float, float]] = field(default_factory=dict)
    pinned: set = field(default_factory=set)
    _edges: list[tuple[object, object]] = field(default_factory=list)
    _temperature: float = field(default=0.0)

    def __post_init__(self) -> None:
        self._temperature = self.config.initial_temperature
        self._rng = random.Random(self.seed)

    # -- graph management ------------------------------------------------

    def add_node(self, key: object, near: object | None = None) -> None:
        """Place a new node (near an existing one when given)."""
        if key in self.positions:
            return
        if near is not None and near in self.positions:
            nx, ny = self.positions[near]
            angle = self._rng.uniform(0, 2 * math.pi)
            radius = self.config.ideal_edge_length
            self.positions[key] = (
                nx + radius * math.cos(angle),
                ny + radius * math.sin(angle),
            )
        else:
            self.positions[key] = (
                self._rng.uniform(0, self.config.width),
                self._rng.uniform(0, self.config.height),
            )
        self._temperature = max(self._temperature, self.config.initial_temperature / 2)

    def remove_node(self, key: object) -> None:
        self.positions.pop(key, None)
        self.pinned.discard(key)
        self._edges = [e for e in self._edges if key not in e]

    def set_edges(self, edges: list[tuple[object, object]]) -> None:
        self._edges = [
            (a, b) for a, b in edges if a in self.positions and b in self.positions
        ]

    def pin(self, key: object, x: float, y: float) -> None:
        """Drag a node: move it and lock it in place."""
        self.positions[key] = (x, y)
        self.pinned.add(key)

    def unpin(self, key: object) -> None:
        self.pinned.discard(key)

    # -- simulation --------------------------------------------------------

    def step(self) -> float:
        """One force iteration; returns the max displacement."""
        if not self.positions:
            return 0.0
        keys = list(self.positions)
        bodies = {
            key: Body(x=pos[0], y=pos[1], mass=1.0, key=key)
            for key, pos in self.positions.items()
        }
        body_list = list(bodies.values())
        tree = (
            QuadTree.build(body_list, theta=self.config.theta)
            if self.use_barnes_hut
            else None
        )
        forces: dict[object, list[float]] = {key: [0.0, 0.0] for key in keys}

        for key in keys:
            body = bodies[key]
            if tree is not None:
                fx, fy = tree.force_on(body, self.config.repulsion)
            else:
                fx, fy = exact_repulsion(body_list, body, self.config.repulsion)
            forces[key][0] += fx
            forces[key][1] += fy

        for a, b in self._edges:
            ax, ay = self.positions[a]
            bx, by = self.positions[b]
            dx, dy = bx - ax, by - ay
            distance = max(math.hypot(dx, dy), 1e-6)
            pull = self.config.spring * (distance - self.config.ideal_edge_length)
            fx, fy = pull * dx / distance, pull * dy / distance
            forces[a][0] += fx
            forces[a][1] += fy
            forces[b][0] -= fx
            forces[b][1] -= fy

        cx, cy = self.config.width / 2, self.config.height / 2
        max_move = 0.0
        for key in keys:
            if key in self.pinned:
                continue
            x, y = self.positions[key]
            fx, fy = forces[key]
            fx += (cx - x) * self.config.gravity
            fy += (cy - y) * self.config.gravity
            magnitude = math.hypot(fx, fy)
            if magnitude > 0:
                limit = min(magnitude, self._temperature)
                x += fx / magnitude * limit
                y += fy / magnitude * limit
                max_move = max(max_move, limit)
            self.positions[key] = (x, y)
        self._temperature = max(self._temperature * self.config.cooling, 0.5)
        return max_move

    def run(self, iterations: int = 50, tolerance: float = 1.0) -> int:
        """Iterate until quiescent or the budget runs out; returns steps."""
        for iteration in range(iterations):
            if self.step() < tolerance:
                return iteration + 1
        return iterations

    # -- quality metrics ----------------------------------------------------------

    def overlap_count(self) -> int:
        """Pairs of nodes closer than two radii (what layout prevents)."""
        keys = list(self.positions)
        threshold = 2 * self.config.node_radius
        count = 0
        for i, a in enumerate(keys):
            ax, ay = self.positions[a]
            for b in keys[i + 1 :]:
                bx, by = self.positions[b]
                if math.hypot(ax - bx, ay - by) < threshold:
                    count += 1
        return count

    def mean_edge_length_error(self) -> float:
        """Mean |edge length - ideal| over edges (layout quality)."""
        if not self._edges:
            return 0.0
        total = 0.0
        for a, b in self._edges:
            ax, ay = self.positions[a]
            bx, by = self.positions[b]
            total += abs(math.hypot(ax - bx, ay - by) - self.config.ideal_edge_length)
        return total / len(self._edges)


__all__ = ["ForceLayout", "LayoutConfig"]
