"""Headless UI view-model (paper section 2.6).

The React frontend's behaviours -- Barnes-Hut force layout, node
expansion/collapse, dragging with lock-in-place, view history, random
subgraphs -- implemented as a library plus a JSON HTTP API a browser
client can consume.
"""

from repro.ui.explorer import GraphExplorer, ViewConfig, ViewState
from repro.ui.layout import ForceLayout, LayoutConfig
from repro.ui.quadtree import Body, QuadTree, exact_repulsion
from repro.ui.server import ExplorerAPI, ExplorerServer
from repro.ui.svg import LABEL_COLORS, render_svg, save_svg

__all__ = [
    "Body",
    "ExplorerAPI",
    "ExplorerServer",
    "ForceLayout",
    "GraphExplorer",
    "LABEL_COLORS",
    "LayoutConfig",
    "QuadTree",
    "ViewConfig",
    "ViewState",
    "exact_repulsion",
    "render_svg",
    "save_svg",
]
