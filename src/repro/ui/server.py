"""JSON HTTP API for the explorer.

A React (or any) frontend drives the explorer through this API; the
endpoints correspond one-to-one to the interactions the demo shows:

=======================  =====================================================
``GET  /api/graph``       current view (nodes with positions, edges)
``GET  /api/stats``       knowledge-graph size summary
``GET  /metrics``         metrics snapshot (also ``/api/metrics``)
``GET  /trace``           ring-buffer span trace (also ``/api/trace``)
``GET  /profile``         self-time hotspot profile of the ring buffer
                          (also ``/api/profile``): per-name aggregates,
                          unit costs and a top-K table -- see
                          OBSERVABILITY.md "Profiling a run"
``GET  /health``          health-engine report (also ``/api/health``)
``POST /api/search``      body ``{"query": ...}``; keyword search + focus
``POST /api/cypher``      body ``{"query", "strict"?, "page_size"?,
                          "cursor"?}``; Cypher search (analysis
                          errors return 400 + diagnostics); with
                          ``page_size`` the query runs preemptably
                          and the response carries an opaque
                          ``cursor`` for the next page; a
                          ``PROFILE``-prefixed query (no page_size)
                          adds a ``profile`` object with per-operator
                          counters
``POST /api/expand``      body ``{"id": ...}``; double-click expansion
``POST /api/collapse``    body ``{"id": ...}``; double-click collapse
``POST /api/drag``        body ``{"id", "x", "y"}``; drag with lock
``POST /api/back``        back button
``POST /api/random``      body ``{"size"?}``; random subgraph
``GET  /feeds``           dissemination index: tiers, object counts, ETags
``GET  /feeds/<tier>``    TLP-tiered STIX bundle (tier ``public``,
                          ``partner`` or ``internal``); protected tiers
                          take an ``X-API-Key`` header or ``?key=``;
                          ``?cursor=`` returns an incremental delta
                          since that cursor; ``If-None-Match`` with the
                          last ``ETag`` returns 304 -- see
                          DISSEMINATION.md for the wire contract
=======================  =====================================================

The table above is the serving contract: ``tests/test_docs.py`` checks
it against the :data:`ROUTES` registry in both directions.
"""

from __future__ import annotations

import base64
import hashlib
import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.core.system import SecurityKG
from repro.graphdb.cypher import CypherAnalysisError
from repro.graphdb.store import Edge, Node
from repro.runtime import named_lock
from repro.ui.explorer import GraphExplorer

#: Every route the API serves, as ``(method, path)``.  ``<tier>`` is a
#: placeholder segment.  The module docstring's table and this registry
#: are kept in lockstep by ``tests/test_docs.py``.
ROUTES: tuple[tuple[str, str], ...] = (
    ("GET", "/api/graph"),
    ("GET", "/api/stats"),
    ("GET", "/metrics"),
    ("GET", "/api/metrics"),
    ("GET", "/trace"),
    ("GET", "/api/trace"),
    ("GET", "/profile"),
    ("GET", "/api/profile"),
    ("GET", "/health"),
    ("GET", "/api/health"),
    ("GET", "/feeds"),
    ("GET", "/feeds/<tier>"),
    ("POST", "/api/search"),
    ("POST", "/api/cypher"),
    ("POST", "/api/expand"),
    ("POST", "/api/collapse"),
    ("POST", "/api/drag"),
    ("POST", "/api/back"),
    ("POST", "/api/random"),
)


def _header(headers: dict, name: str) -> str | None:
    """Case-insensitive header lookup over a plain dict."""
    lowered = name.lower()
    for key, value in headers.items():
        if key.lower() == lowered:
            return value
    return None


def _query_fingerprint(query: str) -> str:
    return hashlib.sha1(query.encode("utf-8")).hexdigest()[:12]


def encode_cursor(query: str, continuation: dict | None) -> str | None:
    """Continuation dict -> opaque wire token.

    The token is base64url JSON binding the continuation to a
    fingerprint of the query text, so a cursor replayed with a
    different query is rejected instead of resuming the wrong scan.
    """
    if continuation is None:
        return None
    payload = json.dumps(
        {"q": _query_fingerprint(query), "c": continuation},
        separators=(",", ":"),
        sort_keys=True,
    )
    return base64.urlsafe_b64encode(payload.encode("utf-8")).decode("ascii")


def decode_cursor(query: str, token: str) -> dict:
    try:
        payload = json.loads(base64.urlsafe_b64decode(token.encode("ascii")))
        fingerprint = payload["q"]
        continuation = payload["c"]
    except Exception:
        raise ValueError("malformed pagination cursor") from None
    if fingerprint != _query_fingerprint(query):
        raise ValueError("pagination cursor does not match this query")
    if not isinstance(continuation, dict):
        raise ValueError("malformed pagination cursor")
    return continuation


def _jsonable(value):
    if isinstance(value, Node):
        return {
            "id": value.node_id,
            "label": value.label,
            "properties": dict(value.properties),
        }
    if isinstance(value, Edge):
        return {
            "id": value.edge_id,
            "src": value.src,
            "dst": value.dst,
            "type": value.type,
            "properties": dict(value.properties),
        }
    return value


class ExplorerAPI:
    """Transport-independent request handling (used by tests directly)."""

    def __init__(self, system: SecurityKG, explorer: GraphExplorer | None = None):
        self.system = system
        self.explorer = explorer or GraphExplorer(system.graph)
        # Serialises request handling: ThreadingHTTPServer dispatches
        # each request on its own thread, and GraphExplorer's view
        # state (history, layout) is not internally synchronised.
        self._lock = named_lock("ui.explorer")

    def handle(self, method: str, path: str, body: dict | None = None) -> tuple[int, dict]:
        """Dispatch one request; returns (status, payload)."""
        status, payload, _headers = self.handle_full(method, path, body)
        return status, payload

    def handle_full(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict | None, dict]:
        """Dispatch one request with headers; returns
        ``(status, payload, response_headers)``.  The payload is
        ``None`` for bodyless responses (304)."""
        parsed = urlsplit(path)
        params = {
            key: values[-1]
            for key, values in parse_qs(parsed.query).items()
        }
        with self._lock:
            if parsed.path == "/feeds" or parsed.path.startswith("/feeds/"):
                return self._handle_feeds_locked(
                    method, parsed.path, params, headers or {}
                )
            status, payload = self._handle_locked(method, parsed.path, body)
            return status, payload, {}

    def _handle_feeds_locked(
        self, method: str, path: str, params: dict, headers: dict
    ) -> tuple[int, dict | None, dict]:
        feeds = self.system.feeds
        if method != "GET":
            return 404, {"error": f"no route {method} {path}"}, {}
        if path == "/feeds":
            return 200, feeds.describe(), {}
        tier = path[len("/feeds/"):]
        try:
            denied = feeds.authorize(
                tier, _header(headers, "X-API-Key") or params.get("key")
            )
            if denied is not None:
                status, message = denied
                return status, {"error": message}, {}
            response = feeds.pull(
                tier,
                cursor=params.get("cursor"),
                etag=_header(headers, "If-None-Match"),
            )
        except ValueError as error:
            return 400, {"error": str(error)}, {}
        response_headers = {"ETag": response.etag}
        if response.cursor is not None:
            response_headers["X-Feed-Cursor"] = response.cursor
        return response.status, response.payload, response_headers

    def _handle_locked(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        body = body or {}
        try:
            if method == "GET" and path == "/api/graph":
                return 200, self.explorer.snapshot()
            if method == "GET" and path == "/api/stats":
                return 200, self.system.stats()
            if method == "GET" and path in ("/metrics", "/api/metrics"):
                return 200, self.system.obs.metrics.snapshot()
            if method == "GET" and path in ("/trace", "/api/trace"):
                return 200, {"spans": self.system.obs.tracer.export()}
            if method == "GET" and path in ("/profile", "/api/profile"):
                from repro.obs.profile import export_profile

                return 200, export_profile(
                    self.system.obs.tracer.export(), obs=self.system.obs
                )
            if method == "GET" and path in ("/health", "/api/health"):
                return 200, self.system.health_report()
            if method == "POST" and path == "/api/search":
                hits = self.system.keyword_search(str(body.get("query", "")))
                node_ids = self._nodes_for_query(str(body.get("query", "")))
                if node_ids:
                    self.explorer.show(node_ids)
                return 200, {
                    "reports": [
                        {"id": h.doc_id, "score": h.score, "title": h.fields.get("title", "")}
                        for h in hits
                    ],
                    "view": self.explorer.snapshot(),
                }
            if method == "POST" and path == "/api/cypher":
                query = str(body.get("query", ""))
                strict = bool(body.get("strict", True))
                if body.get("page_size") is not None:
                    page_size = int(body["page_size"])
                    if page_size <= 0:
                        return 400, {"error": "page_size must be positive"}
                    continuation = None
                    if body.get("cursor"):
                        continuation = decode_cursor(query, str(body["cursor"]))
                    page = self.system.cypher_paginated(
                        query, page_size, continuation=continuation, strict=strict
                    )
                    return 200, {
                        "rows": [
                            {k: _jsonable(v) for k, v in row.values.items()}
                            for row in page.rows
                        ],
                        "cursor": encode_cursor(query, page.continuation),
                    }
                if re.match(r"\s*PROFILE\b", query, re.IGNORECASE):
                    prof = self.system.cypher_profile(query, strict=strict)
                    return 200, {
                        "rows": [
                            {k: _jsonable(v) for k, v in row.values.items()}
                            for row in prof.rows
                        ],
                        "profile": prof.to_dict(),
                    }
                rows = self.system.cypher(query, strict=strict)
                return 200, {
                    "rows": [
                        {k: _jsonable(v) for k, v in row.values.items()}
                        for row in rows
                    ]
                }
            if method == "POST" and path == "/api/expand":
                spawned = self.explorer.expand(int(body["id"]))
                return 200, {"spawned": spawned, "view": self.explorer.snapshot()}
            if method == "POST" and path == "/api/collapse":
                hidden = self.explorer.collapse(int(body["id"]))
                return 200, {"hidden": hidden, "view": self.explorer.snapshot()}
            if method == "POST" and path == "/api/drag":
                self.explorer.drag(
                    int(body["id"]), float(body["x"]), float(body["y"])
                )
                return 200, {"view": self.explorer.snapshot()}
            if method == "POST" and path == "/api/back":
                moved = self.explorer.back()
                return 200, {"moved": moved, "view": self.explorer.snapshot()}
            if method == "POST" and path == "/api/random":
                self.explorer.show_random(
                    size=body.get("size"), seed=body.get("seed")
                )
                return 200, {"view": self.explorer.snapshot()}
            return 404, {"error": f"no route {method} {path}"}
        except CypherAnalysisError as error:
            # Rejected before execution: structured, positioned
            # diagnostics so the frontend can underline the query.
            return 400, {
                "error": str(error),
                "diagnostics": [d.to_dict() for d in error.diagnostics],
            }
        except (KeyError, ValueError) as error:
            return 400, {"error": str(error)}

    def _nodes_for_query(self, query: str) -> list[int]:
        """Graph nodes whose name matches the keyword query."""
        matches = []
        needle = query.strip().lower()
        if not needle:
            return []
        for node in self.system.graph.nodes():
            name = str(node.properties.get("name", "")).lower()
            if needle in name:
                matches.append((0 if name == needle else 1, node.node_id))
        return [node_id for _rank, node_id in sorted(matches)]


class ExplorerServer:
    """Threaded HTTP server wrapping :class:`ExplorerAPI`."""

    def __init__(self, api: ExplorerAPI, host: str = "127.0.0.1", port: int = 0):
        self.api = api
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # noqa: A003 - silence request log
                pass

            def _respond(
                self,
                status: int,
                payload: dict | None,
                extra_headers: dict | None = None,
            ) -> None:
                data = b"" if payload is None else json.dumps(payload).encode()
                self.send_response(status)
                for name, value in (extra_headers or {}).items():
                    self.send_header(name, value)
                if payload is not None:
                    self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                if data:
                    self.wfile.write(data)

            def do_GET(self):  # noqa: N802 - stdlib naming
                status, payload, extra = outer.api.handle_full(
                    "GET", self.path, headers=dict(self.headers.items())
                )
                self._respond(status, payload, extra)

            def do_POST(self):  # noqa: N802 - stdlib naming
                length = int(self.headers.get("Content-Length", "0"))
                body = {}
                if length:
                    try:
                        body = json.loads(self.rfile.read(length))
                    except json.JSONDecodeError:
                        self._respond(400, {"error": "invalid JSON body"})
                        return
                status, payload, extra = outer.api.handle_full(
                    "POST", self.path, body, headers=dict(self.headers.items())
                )
                self._respond(status, payload, extra)

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address[:2]

    def start(self) -> "ExplorerServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="ui-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)


__all__ = [
    "ExplorerAPI",
    "ExplorerServer",
    "ROUTES",
    "decode_cursor",
    "encode_cursor",
]
