"""Render an explorer view to SVG.

The paper's Figure 3 is a screenshot of the canvas: coloured nodes laid
out by the force engine, labelled edges, names on nodes.  This module
produces that picture as a standalone SVG from an explorer snapshot --
the headless equivalent of the React canvas, and the artifact a demo
can actually show offline.

Node colours follow the label (as the paper describes: "Nodes are
colored according to their types"); pinned nodes get a ring; edge
labels show the relation type.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.storage.atomic import atomic_write_text

#: Label -> fill colour.  Reports are muted, concepts saturated, IOCs cool.
LABEL_COLORS: dict[str, str] = {
    "Malware": "#d64550",
    "ThreatActor": "#b14ad6",
    "Campaign": "#9b59b6",
    "Technique": "#e8a33d",
    "Tool": "#d6bb4a",
    "Software": "#7fb069",
    "Vulnerability": "#e06377",
    "Vendor": "#8d99ae",
    "MalwareReport": "#c9cdd6",
    "VulnerabilityReport": "#c9cdd6",
    "AttackReport": "#c9cdd6",
    "IP": "#4a90d6",
    "Domain": "#4ad6c9",
    "URL": "#46b4e0",
    "Email": "#5b8ff0",
    "FileName": "#6aa8c9",
    "FilePath": "#6aa8c9",
    "Registry": "#7d9ec9",
    "Hash": "#95a9c9",
}

_FALLBACK_COLOR = "#aaaaaa"


def _esc(text: str) -> str:
    return html.escape(str(text), quote=True)


def _viewbox(nodes: list[dict], pad: float = 60.0) -> tuple[float, float, float, float]:
    if not nodes:
        return (0.0, 0.0, 400.0, 300.0)
    xs = [n["x"] for n in nodes]
    ys = [n["y"] for n in nodes]
    min_x, max_x = min(xs) - pad, max(xs) + pad
    min_y, max_y = min(ys) - pad, max(ys) + pad
    return (min_x, min_y, max(max_x - min_x, 1.0), max(max_y - min_y, 1.0))


def render_svg(
    snapshot: dict,
    node_radius: float = 14.0,
    show_edge_labels: bool = True,
    show_legend: bool = True,
) -> str:
    """Render an explorer snapshot (``GraphExplorer.snapshot()``) to SVG."""
    nodes = snapshot.get("nodes", [])
    edges = snapshot.get("edges", [])
    positions = {n["id"]: (n["x"], n["y"]) for n in nodes}
    min_x, min_y, width, height = _viewbox(nodes)

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'viewBox="{min_x:.1f} {min_y:.1f} {width:.1f} {height:.1f}" '
        f'font-family="sans-serif" font-size="11">',
        f'<rect x="{min_x:.1f}" y="{min_y:.1f}" width="{width:.1f}" '
        f'height="{height:.1f}" fill="#fbfbfd"/>',
    ]

    for edge in edges:
        if edge["src"] not in positions or edge["dst"] not in positions:
            continue
        x1, y1 = positions[edge["src"]]
        x2, y2 = positions[edge["dst"]]
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="#b9bdc9" stroke-width="1.2"/>'
        )
        if show_edge_labels:
            parts.append(
                f'<text x="{(x1 + x2) / 2:.1f}" y="{(y1 + y2) / 2 - 3:.1f}" '
                f'fill="#8a8f9c" font-size="8" text-anchor="middle">'
                f"{_esc(edge['type'])}</text>"
            )

    for node in nodes:
        x, y = node["x"], node["y"]
        color = LABEL_COLORS.get(node["label"], _FALLBACK_COLOR)
        if node.get("pinned"):
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{node_radius + 3:.1f}" '
                f'fill="none" stroke="#333" stroke-width="1.5" '
                f'stroke-dasharray="3 2"/>'
            )
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{node_radius:.1f}" '
            f'fill="{color}" stroke="#ffffff" stroke-width="1.5"/>'
        )
        name = str(node.get("name", ""))
        if len(name) > 24:
            name = name[:21] + "..."
        parts.append(
            f'<text x="{x:.1f}" y="{y + node_radius + 11:.1f}" '
            f'text-anchor="middle" fill="#333">{_esc(name)}</text>'
        )

    if show_legend and nodes:
        used_labels = sorted({n["label"] for n in nodes})
        legend_x = min_x + 12
        legend_y = min_y + 16
        for i, label in enumerate(used_labels):
            y = legend_y + i * 16
            color = LABEL_COLORS.get(label, _FALLBACK_COLOR)
            parts.append(
                f'<circle cx="{legend_x:.1f}" cy="{y:.1f}" r="5" fill="{color}"/>'
            )
            parts.append(
                f'<text x="{legend_x + 10:.1f}" y="{y + 4:.1f}" '
                f'fill="#555" font-size="10">{_esc(label)}</text>'
            )

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(snapshot: dict, path: str | Path, **kwargs) -> Path:
    """Render and write an SVG file; returns the path."""
    path = Path(path)
    atomic_write_text(path, render_svg(snapshot, **kwargs))
    return path


__all__ = ["LABEL_COLORS", "render_svg", "save_svg"]
