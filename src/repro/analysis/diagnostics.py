"""Shared diagnostics core for the static-analysis subsystem.

Both analyzers (the Cypher semantic checker and the repo invariant
lint) report findings as :class:`Diagnostic` values: a rule id, a
severity, a message, and -- when known -- a source location.  The
renderer produces the familiar compiler-style output::

    error[cypher/unknown-label] unknown node label 'Malwear' (did you mean 'Malware'?)
      MATCH (m:Malwear) RETURN m.name
               ^~~~~~~

Locations come in two flavours: character spans into an in-memory
source string (Cypher queries) and ``path:line:col`` positions in a
file on disk (lint findings).  A diagnostic may carry either or both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are rejected outright (strict query mode raises,
    the lint exits nonzero); ``WARNING`` findings are surfaced but do
    not block execution.
    """

    WARNING = "warning"
    ERROR = "error"

    @property
    def is_error(self) -> bool:
        return self is Severity.ERROR


@dataclass(frozen=True)
class Span:
    """A half-open character range ``[start, end)`` into a source string."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            object.__setattr__(self, "end", self.start)

    @property
    def length(self) -> int:
        return max(1, self.end - self.start)


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    Parameters
    ----------
    rule:
        Stable rule identifier, e.g. ``"cypher/unknown-label"`` or
        ``"det/wall-clock"``.  Rule ids are namespaced with ``/`` so
        suppression comments can match either the full id or the leaf.
    severity:
        :class:`Severity` of the finding.
    message:
        Human-readable description (one line).
    span:
        Character span into the analysed source, when known.
    path / line / col:
        File location for on-disk findings (lint).  ``line`` is 1-based,
        ``col`` 0-based (matching ``ast`` column offsets).
    """

    rule: str
    severity: Severity
    message: str
    span: Span | None = None
    path: str | None = None
    line: int | None = None
    col: int | None = None
    suggestion: str | None = field(default=None, compare=False)

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible form (used by the UI server API)."""
        payload: dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.span is not None:
            payload["start"] = self.span.start
            payload["end"] = self.span.end
        if self.path is not None:
            payload["path"] = self.path
        if self.line is not None:
            payload["line"] = self.line
        if self.col is not None:
            payload["col"] = self.col
        if self.suggestion:
            payload["suggestion"] = self.suggestion
        return payload

    def format(self, source: str | None = None) -> str:
        """Render the finding, with a caret line when a span is known."""
        location = ""
        if self.path is not None:
            location = f"{self.path}:{self.line or 0}:{self.col or 0}: "
        message = self.message
        if self.suggestion:
            message = f"{message} (did you mean {self.suggestion!r}?)"
        head = f"{location}{self.severity.value}[{self.rule}] {message}"
        if source is None or self.span is None:
            return head
        return head + "\n" + caret_block(source, self.span)


def caret_block(source: str, span: Span, indent: str = "  ") -> str:
    """The source line containing ``span`` with a ``^~~~`` underline."""
    start = min(span.start, max(0, len(source) - 1))
    line_start = source.rfind("\n", 0, start) + 1
    line_end = source.find("\n", start)
    if line_end == -1:
        line_end = len(source)
    line = source[line_start:line_end]
    col = start - line_start
    width = min(span.length, max(1, line_end - start))
    underline = " " * col + "^" + "~" * (width - 1)
    return f"{indent}{line}\n{indent}{underline}"


def render(source: str | None, diagnostics: list[Diagnostic]) -> str:
    """Render a batch of diagnostics as one message."""
    return "\n".join(d.format(source) for d in diagnostics)


def errors(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Only the ERROR-severity findings."""
    return [d for d in diagnostics if d.severity.is_error]


def warnings(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Only the WARNING-severity findings."""
    return [d for d in diagnostics if not d.severity.is_error]


__all__ = [
    "Diagnostic",
    "Severity",
    "Span",
    "caret_block",
    "errors",
    "render",
    "warnings",
]
