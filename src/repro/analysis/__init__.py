"""Static analysis for the reproduction: query checking and repo lint.

Two analyzers share one diagnostics core (:mod:`.diagnostics`):

* :mod:`.cypher_check` -- semantic analysis of parsed Cypher queries
  against the ontology/graph schema (unknown labels, unbound
  variables, type mismatches, ...).
* :mod:`.lint` -- an ``ast`` pass over ``src/repro`` enforcing the
  determinism/concurrency invariants from the ROADMAP.
* :mod:`.concurrency` -- the interprocedural concurrency analyzer
  behind the ``conc/*`` lint rules: project-wide call graph with
  thread-root discovery, lock-set analysis per ``named_lock`` site,
  the static lock-acquisition-order hierarchy (``concurrency.json``)
  that the runtime :class:`repro.runtime.LockOrderWitness` validates
  under pytest, and blocking-under-lock detection.

Only the diagnostics core is imported eagerly; the analyzers are
exposed lazily (PEP 562) so that :mod:`repro.graphdb` can import this
package without creating an import cycle.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    Span,
    caret_block,
    errors,
    render,
    warnings,
)

_LAZY = {
    "CypherAnalyzer": "repro.analysis.cypher_check",
    "QuerySchema": "repro.analysis.cypher_check",
    "analyze_query": "repro.analysis.cypher_check",
    "ontology_schema": "repro.analysis.cypher_check",
    "graph_schema": "repro.analysis.cypher_check",
    "schema_for": "repro.analysis.cypher_check",
    "lint_paths": "repro.analysis.lint",
    "concurrency_findings": "repro.analysis.lint",
    "ConcurrencyModel": "repro.analysis.concurrency",
    "analyze_package": "repro.analysis.concurrency",
    "analyze_paths": "repro.analysis.concurrency",
    "cypher_check": "repro.analysis.cypher_check",
    "lint": "repro.analysis.lint",
    "concurrency": "repro.analysis.concurrency",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    if name in ("cypher_check", "lint", "concurrency"):
        return module
    return getattr(module, name)


__all__ = [
    "ConcurrencyModel",
    "CypherAnalyzer",
    "Diagnostic",
    "QuerySchema",
    "Severity",
    "Span",
    "analyze_package",
    "analyze_paths",
    "analyze_query",
    "caret_block",
    "concurrency_findings",
    "errors",
    "graph_schema",
    "lint_paths",
    "ontology_schema",
    "render",
    "schema_for",
    "warnings",
]
