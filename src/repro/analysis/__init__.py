"""Static analysis for the reproduction: query checking and repo lint.

Two analyzers share one diagnostics core (:mod:`.diagnostics`):

* :mod:`.cypher_check` -- semantic analysis of parsed Cypher queries
  against the ontology/graph schema (unknown labels, unbound
  variables, type mismatches, ...).
* :mod:`.lint` -- an ``ast`` pass over ``src/repro`` enforcing the
  determinism/concurrency invariants from the ROADMAP.

Only the diagnostics core is imported eagerly; the analyzers are
exposed lazily (PEP 562) so that :mod:`repro.graphdb` can import this
package without creating an import cycle.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    Span,
    caret_block,
    errors,
    render,
    warnings,
)

_LAZY = {
    "CypherAnalyzer": "repro.analysis.cypher_check",
    "QuerySchema": "repro.analysis.cypher_check",
    "analyze_query": "repro.analysis.cypher_check",
    "ontology_schema": "repro.analysis.cypher_check",
    "graph_schema": "repro.analysis.cypher_check",
    "schema_for": "repro.analysis.cypher_check",
    "lint_paths": "repro.analysis.lint",
    "cypher_check": "repro.analysis.cypher_check",
    "lint": "repro.analysis.lint",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    if name in ("cypher_check", "lint"):
        return module
    return getattr(module, name)


__all__ = [
    "CypherAnalyzer",
    "Diagnostic",
    "QuerySchema",
    "Severity",
    "Span",
    "analyze_query",
    "caret_block",
    "errors",
    "graph_schema",
    "lint_paths",
    "ontology_schema",
    "render",
    "schema_for",
    "warnings",
]
