"""Interprocedural concurrency analysis over the repro package.

The sharding arc (ROADMAP item 1) multiplies today's ~20 lock sites
into N-way cross-shard acquisition patterns, so the repo needs a
static gate strong enough that a lock-order cycle or an unguarded
shared write *anywhere* in ``src/repro`` fails CI.  This module is
that gate.  It builds, from the ASTs of every analysed file:

1. A project index -- classes, methods, functions, closures and
   lambdas, with lightweight type inference (parameter annotations,
   ``self.x = Cls(...)`` in ``__init__``, dataclass field annotations,
   branch unions, module constants) good enough to resolve the
   receiver chains the lock-owning code actually uses.
2. A call graph with *thread-root discovery*: every
   ``threading.Thread(target=...)``, every ``do_*`` handler of a
   ``BaseHTTPRequestHandler`` subclass, and -- generalising both --
   every bare function/method reference passed as a call argument
   (``Stage(fn=...)``, ``JobSpec(run=...)``, ``on_finish`` hooks).
3. Lock identity from :func:`repro.runtime.named_lock` string
   literals, with alias sets for locks shared across components
   (``CrawlState._lock = engine.lock`` holds both ``crawl.state`` and
   ``storage.engine``).
4. Must/may entry lock sets per function (intersection/union over
   call sites, fixpoint), a transitive ``acquires`` set, and from
   these the four rules:

``conc/inconsistent-guard``
    A field written both under and outside its guarding lock on a
    thread-reachable path (supersedes ``conc/unlocked-shared-write``
    repo-wide).
``conc/lock-order-cycle``
    A cycle in the static lock-acquisition-order graph built from
    nested ``with <lock>:`` blocks across call-graph edges.
``conc/blocking-under-lock``
    A blocking operation (clock sleep/wait, fetcher/transport I/O,
    fsync or atomic file write) performed while holding a lock.
    Journal/checkpoint I/O under ``repro/storage/`` is sanctioned --
    write-ahead durability under the engine lock *is* the design.
``conc/unnamed-thread``
    (checked in :mod:`repro.analysis.lint`) every spawned thread must
    pass ``name=`` so witness reports and traces can attribute lock
    events.

The resulting :class:`ConcurrencyModel` serialises to a canonical,
byte-stable ``concurrency.json`` (lock hierarchy + per-field guard
map) and feeds the runtime :class:`repro.runtime.LockOrderWitness`,
which asserts on every test run that observed acquisition orders are
a subgraph of the static hierarchy.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic, Severity

#: The lock/clock implementations themselves: exempt from the pass.
SANCTIONED_SUFFIXES = ("runtime/clock.py", "runtime/locks.py")
#: Path fragment under which io-class blocking under a lock is the
#: durability design (journal fsync, checkpoint atomic writes).
IO_SANCTIONED_PART = "repro/storage/"

_MUTATORS = frozenset(
    {"append", "extend", "insert", "remove", "clear", "update",
     "setdefault", "popitem", "pop", "discard", "add_all"}
)
_SLEEP_METHODS = frozenset({"sleep", "wait_for"})
_WAIT_METHODS = frozenset({"wait", "join"})
_FETCH_RECEIVERS = ("transport", "fetcher")
_FSYNC_NAMES = frozenset({"fsync", "fsync_directory"})
_INIT_METHODS = frozenset({"__init__", "__post_init__"})


# ---------------------------------------------------------------------------
# model records


@dataclass
class LockRef:
    """One lock value: the dotted names it may answer to."""

    identities: frozenset[str]
    reentrant: bool = False

    def merged(self, other: "LockRef") -> "LockRef":
        return LockRef(
            self.identities | other.identities,
            self.reentrant or other.reentrant,
        )


@dataclass
class ClassInfo:
    name: str
    module: str  # display path
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)  # name -> func key
    attr_types: dict[str, frozenset[str]] = field(default_factory=dict)
    #: element type of container-typed attrs (dict values, list items)
    attr_elem_types: dict[str, frozenset[str]] = field(default_factory=dict)
    lock_attrs: dict[str, LockRef] = field(default_factory=dict)
    #: condition attrs -> identities of the lock they were built on
    cond_attrs: dict[str, frozenset[str]] = field(default_factory=dict)
    is_protocol: bool = False


@dataclass
class FuncInfo:
    key: str
    qualname: str
    module: str  # display path
    node: ast.AST  # FunctionDef | AsyncFunctionDef | Lambda
    cls: str | None = None
    parent: str | None = None
    scope_types: dict[str, frozenset[str]] = field(default_factory=dict)
    scope_locks: dict[str, LockRef] = field(default_factory=dict)
    scope_elem_types: dict[str, frozenset[str]] = field(default_factory=dict)
    scope_callables: dict[str, frozenset[str]] = field(default_factory=dict)
    local_names: set[str] = field(default_factory=set)


@dataclass
class _Acquire:
    func: str
    lock: LockRef
    held: frozenset[str]
    line: int


@dataclass
class _CallRec:
    caller: str
    callee: str
    held: frozenset[str]
    line: int


@dataclass
class _WriteRec:
    func: str
    kind: str  # 'self' | 'root'
    owner: str  # class name, or module display path
    name: str  # field / root name
    held: frozenset[str]
    line: int
    col: int
    in_init: bool


@dataclass
class _BlockRec:
    func: str
    what: str
    held: frozenset[str]
    exempt: frozenset[str]
    line: int
    col: int


# ---------------------------------------------------------------------------
# annotation helpers


def _ann_names(node: ast.expr | None) -> frozenset[str]:
    """Class names mentioned by a type annotation (None/Optional dropped)."""
    if node is None:
        return frozenset()
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            try:
                return _ann_names(ast.parse(node.value, mode="eval").body)
            except SyntaxError:
                return frozenset()
        return frozenset()
    if isinstance(node, ast.Name):
        return frozenset() if node.id in ("None", "NoneType") else frozenset({node.id})
    if isinstance(node, ast.Attribute):
        return frozenset({node.attr})
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _ann_names(node.left) | _ann_names(node.right)
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = (
            base.id if isinstance(base, ast.Name)
            else base.attr if isinstance(base, ast.Attribute) else None
        )
        if base_name == "Optional":
            return _ann_names(node.slice)
        return frozenset()
    return frozenset()


_CONTAINER_DICTS = frozenset({"dict", "Dict", "Mapping", "MutableMapping"})
_CONTAINER_SEQS = frozenset(
    {"list", "List", "set", "Set", "frozenset", "tuple", "Tuple",
     "Sequence", "Iterable", "Iterator", "Collection"}
)


def _ann_elem_names(node: ast.expr | None) -> frozenset[str]:
    """Element/value class names of a container annotation."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _ann_elem_names(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return frozenset()
    if not isinstance(node, ast.Subscript):
        return frozenset()
    base = node.value
    base_name = (
        base.id if isinstance(base, ast.Name)
        else base.attr if isinstance(base, ast.Attribute) else None
    )
    if base_name in _CONTAINER_DICTS:
        if isinstance(node.slice, ast.Tuple) and len(node.slice.elts) == 2:
            return _ann_names(node.slice.elts[1])
        return frozenset()
    if base_name in _CONTAINER_SEQS:
        inner = node.slice
        if isinstance(inner, ast.Tuple) and inner.elts:
            return _ann_names(inner.elts[0])
        return _ann_names(inner)
    return frozenset()


def _lock_name_literal(node: ast.expr) -> str | None:
    """The lock name at a ``named_lock`` call site.

    Plain string literals are taken verbatim.  F-strings yield the
    family's canonical wildcard name -- every interpolated piece
    becomes ``*`` -- so ``named_lock(f"shard.{index}.stats")`` enters
    the model as ``shard.*.stats``, the same name the runtime witness
    canonicalizes instance names to.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                parts.append("*")
            else:
                return None
        return "".join(parts)
    return None


def _named_lock_call(node: ast.expr) -> LockRef | None:
    """``named_lock("x"[, reentrant=True])`` -> LockRef, else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = (
        func.id if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute) else None
    )
    if name != "named_lock" or not node.args:
        return None
    lock_name = _lock_name_literal(node.args[0])
    if lock_name is None:
        return None
    reentrant = any(
        kw.arg == "reentrant"
        and isinstance(kw.value, ast.Constant)
        and bool(kw.value.value)
        for kw in node.keywords
    )
    return LockRef(frozenset({lock_name}), reentrant)


def _lock_in_field_default(node: ast.expr) -> LockRef | None:
    """``field(default_factory=lambda: named_lock("x"))`` -> LockRef."""
    if not isinstance(node, ast.Call):
        return None
    for kw in node.keywords:
        if kw.arg != "default_factory":
            continue
        value = kw.value
        if isinstance(value, ast.Lambda):
            return _named_lock_call(value.body)
    return None


def _is_contextmanager(node: ast.AST) -> bool:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for dec in node.decorator_list:
        name = (
            dec.id if isinstance(dec, ast.Name)
            else dec.attr if isinstance(dec, ast.Attribute) else None
        )
        if name in ("contextmanager", "asynccontextmanager"):
            return True
    return False


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (
            target.id if isinstance(target, ast.Name)
            else target.attr if isinstance(target, ast.Attribute) else None
        )
        if name == "dataclass":
            return True
    return False


def _shallow_walk(body: list[ast.stmt]) -> Iterable[ast.AST]:
    """Walk statements without descending into nested defs/classes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _target_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names |= _target_names(element)
        return names
    return set()


def _local_names(fn: ast.AST) -> set[str]:
    """Names bound by assignment inside ``fn`` (params excluded)."""
    names: set[str] = set()
    body = fn.body if isinstance(fn.body, list) else []
    for node in _shallow_walk(body):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names |= _target_names(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            names |= _target_names(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names |= _target_names(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names |= _target_names(item.optional_vars)
        elif isinstance(node, ast.comprehension):
            names |= _target_names(node.target)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return names


# ---------------------------------------------------------------------------
# the analyzer


class _Analyzer:
    def __init__(self, files: list[Path], root: Path):
        self.files = files
        self.root = root
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FuncInfo] = {}
        self.module_funcs: dict[tuple[str, str], str] = {}
        self.module_consts: dict[str, frozenset[str]] = {}
        self.attr_callables: dict[tuple[str, str], set[str]] = {}
        self.roots: set[str] = set()
        self.acquires: list[_Acquire] = []
        self.calls: list[_CallRec] = []
        self.writes: list[_WriteRec] = []
        self.blockers: list[_BlockRec] = []
        self.lock_sites: dict[str, list[tuple[str, int]]] = {}
        self.lock_reentrant: dict[str, bool] = {}
        #: ``@contextmanager`` func key -> identity sets held at every
        #: ``yield`` (must-holds); the previous scan pass's view is in
        #: ``cm_holds`` so ``with cm():`` bodies extend their held set.
        self.cm_holds: dict[str, frozenset[frozenset[str]]] = {}
        self._yield_holds: dict[str, frozenset[frozenset[str]]] = {}
        self._protocol_impls: dict[str, frozenset[str]] = {}
        self._trees: dict[str, ast.Module] = {}
        self._lambda_counter = 0

    # -- utilities -------------------------------------------------------

    def _display(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.name

    def _sanctioned(self, display: str) -> bool:
        return any(display.endswith(suffix) for suffix in SANCTIONED_SUFFIXES)

    # -- phase 1: index --------------------------------------------------

    def index(self) -> None:
        for path in self.files:
            display = self._display(path)
            if self._sanctioned(display):
                continue
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except (OSError, SyntaxError):
                continue
            self._trees[display] = tree
            self._index_module(tree, display)

    def _index_module(self, tree: ast.Module, display: str) -> None:
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                value = stmt.value
                if (
                    isinstance(target, ast.Name)
                    and isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                ):
                    self.module_consts.setdefault(
                        target.id, frozenset({value.func.id})
                    )
        self._index_body(tree.body, display, cls=None, parent=None, prefix="")

    def _index_body(
        self,
        body: list[ast.stmt],
        display: str,
        cls: str | None,
        parent: str | None,
        prefix: str,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(stmt, display, cls, parent, prefix)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(stmt, display, prefix)

    def _index_class(
        self, node: ast.ClassDef, display: str, prefix: str
    ) -> None:
        info = self.classes.get(node.name)
        if info is None:
            info = ClassInfo(name=node.name, module=display)
            self.classes[node.name] = info
        for base in node.bases:
            name = (
                base.id if isinstance(base, ast.Name)
                else base.attr if isinstance(base, ast.Attribute) else None
            )
            if name is not None and name not in info.bases:
                info.bases.append(name)
        if "Protocol" in info.bases:
            info.is_protocol = True
        is_dc = _is_dataclass(node)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = self._index_function(
                    stmt, display, node.name, None, f"{prefix}{node.name}."
                )
                info.methods[stmt.name] = key
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(stmt, display, f"{prefix}{node.name}.")
            elif is_dc and isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                attr = stmt.target.id
                lock = (
                    _lock_in_field_default(stmt.value)
                    if stmt.value is not None
                    else None
                )
                if lock is not None:
                    self._register_lock(lock, display, stmt.lineno)
                    info.lock_attrs[attr] = lock
                else:
                    types = _ann_names(stmt.annotation)
                    if types:
                        info.attr_types[attr] = (
                            info.attr_types.get(attr, frozenset()) | types
                        )
                    elems = _ann_elem_names(stmt.annotation)
                    if elems:
                        info.attr_elem_types[attr] = (
                            info.attr_elem_types.get(attr, frozenset()) | elems
                        )

    def _index_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        display: str,
        cls: str | None,
        parent: str | None,
        prefix: str,
    ) -> str:
        qualname = f"{prefix}{node.name}"
        key = f"{display}::{qualname}"
        self.functions[key] = FuncInfo(
            key=key, qualname=qualname, module=display, node=node,
            cls=cls, parent=parent,
        )
        if cls is None and parent is None:
            self.module_funcs[(display, node.name)] = key
        # nested defs keep the class context: ``self`` is a closure
        # capture of the enclosing method's receiver
        self._index_body(
            node.body, display, cls=cls, parent=key, prefix=f"{qualname}."
        )
        return key

    def _index_lambda(self, node: ast.Lambda, owner: FuncInfo) -> str:
        self._lambda_counter += 1
        qualname = f"{owner.qualname}.<lambda:{node.lineno}>"
        key = f"{owner.module}::{qualname}#{self._lambda_counter}"
        info = FuncInfo(
            key=key, qualname=qualname, module=owner.module, node=node,
            cls=owner.cls, parent=owner.key,
        )
        self.functions[key] = info
        return key

    def _register_lock(self, lock: LockRef, display: str, line: int) -> None:
        for identity in lock.identities:
            sites = self.lock_sites.setdefault(identity, [])
            if (display, line) not in sites:
                sites.append((display, line))
            self.lock_reentrant[identity] = (
                self.lock_reentrant.get(identity, False) or lock.reentrant
            )

    # -- phase 2: class attribute / lock typing --------------------------

    def infer_class_attrs(self) -> None:
        for _ in range(4):
            for info in self.functions.values():
                if info.cls is None or isinstance(info.node, ast.Lambda):
                    continue
                self._scan_self_assigns(info)

    def _scan_self_assigns(self, fn: FuncInfo) -> None:
        cls = self.classes.get(fn.cls or "")
        if cls is None:
            return
        param_types = self._param_types(fn)
        for node in _shallow_walk(fn.node.body):
            if isinstance(node, ast.AnnAssign):
                target = node.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    types = _ann_names(node.annotation)
                    if types:
                        cls.attr_types[target.attr] = (
                            cls.attr_types.get(target.attr, frozenset()) | types
                        )
                    elems = _ann_elem_names(node.annotation)
                    if elems:
                        cls.attr_elem_types[target.attr] = (
                            cls.attr_elem_types.get(target.attr, frozenset())
                            | elems
                        )
                continue
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr, value = target.attr, node.value
            lock = _named_lock_call(value)
            if lock is not None:
                self._register_lock(lock, fn.module, node.lineno)
                existing = cls.lock_attrs.get(attr)
                cls.lock_attrs[attr] = (
                    lock if existing is None else existing.merged(lock)
                )
                continue
            # alias: self._lock = engine.lock
            alias = self._resolve_lock_expr(value, fn, param_types)
            if alias is not None:
                existing = cls.lock_attrs.get(attr)
                cls.lock_attrs[attr] = (
                    alias if existing is None else existing.merged(alias)
                )
                continue
            # condition built on a lock: self._cv = clock.condition(lock)
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "condition"
                and value.args
            ):
                built_on = self._resolve_lock_expr(
                    value.args[0], fn, param_types
                )
                if built_on is not None:
                    cls.cond_attrs[attr] = built_on.identities
                    continue
            types = self._infer_expr_types(value, fn, param_types)
            if types:
                cls.attr_types[attr] = cls.attr_types.get(attr, frozenset()) | types

    def _param_types(self, fn: FuncInfo) -> dict[str, frozenset[str]]:
        if isinstance(fn.node, ast.Lambda):
            return {}
        types: dict[str, frozenset[str]] = {}
        args = fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            names = _ann_names(arg.annotation)
            if names:
                types[arg.arg] = names
        return types

    # -- expression typing -----------------------------------------------

    def _infer_expr_types(
        self,
        node: ast.expr,
        fn: FuncInfo,
        param_types: dict[str, frozenset[str]] | None = None,
    ) -> frozenset[str]:
        params = param_types if param_types is not None else self._param_types(fn)
        return self._infer(node, fn, params)

    def _infer(
        self, node: ast.expr, fn: FuncInfo, params: dict[str, frozenset[str]]
    ) -> frozenset[str]:
        if isinstance(node, ast.Name):
            if node.id == "self" and fn.cls is not None:
                return frozenset({fn.cls})
            for source in (fn.scope_types, params):
                if node.id in source:
                    return source[node.id]
            if node.id in self.module_consts:
                return self.module_consts[node.id]
            return frozenset()
        if isinstance(node, ast.Attribute):
            out: set[str] = set()
            for cls_name in self._expand_types(self._infer(node.value, fn, params)):
                for owner in self._mro(cls_name):
                    info = self.classes.get(owner)
                    if info is not None and node.attr in info.attr_types:
                        out |= info.attr_types[node.attr]
                        break
            return frozenset(out)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in self.classes:
                return frozenset({func.id})
            if isinstance(func, ast.Attribute) and func.attr == "get":
                elems = self._elem_types(func.value, fn, params)
                if elems:
                    return elems
            # return-annotation resolution
            out = set()
            for callee in self._resolve_call_targets(node, fn, params):
                callee_info = self.functions.get(callee)
                if callee_info is None or isinstance(callee_info.node, ast.Lambda):
                    continue
                out |= _ann_names(callee_info.node.returns)
            return frozenset(out)
        if isinstance(node, ast.IfExp):
            return self._infer(node.body, fn, params) | self._infer(
                node.orelse, fn, params
            )
        if isinstance(node, ast.BoolOp):
            out = set()
            for value in node.values:
                out |= self._infer(value, fn, params)
            return frozenset(out)
        if isinstance(node, ast.Subscript):
            return self._elem_types(node.value, fn, params)
        return frozenset()

    def _elem_types(
        self, node: ast.expr, fn: FuncInfo, params: dict[str, frozenset[str]]
    ) -> frozenset[str]:
        """Element/value types of a container expression."""
        if isinstance(node, ast.Name):
            return fn.scope_elem_types.get(node.id, frozenset())
        if isinstance(node, ast.Attribute):
            out: set[str] = set()
            for cls_name in self._infer(node.value, fn, params):
                for owner in self._mro(cls_name):
                    info = self.classes.get(owner)
                    if info is not None and node.attr in info.attr_elem_types:
                        out |= info.attr_elem_types[node.attr]
                        break
            return frozenset(out)
        return frozenset()

    def _expand_types(self, types: frozenset[str]) -> frozenset[str]:
        """Virtual dispatch: add subclasses, and for Protocols every
        structural implementation."""
        out = set(types)
        for name in types:
            out |= self._impls(name)
        return frozenset(out)

    def _impls(self, name: str) -> frozenset[str]:
        cached = self._protocol_impls.get(name)
        if cached is not None:
            return cached
        info = self.classes.get(name)
        impls: set[str] = set()
        if info is not None:
            if info.is_protocol:
                required = set(info.methods) - {"__init__"}
                if required:
                    impls = {
                        other.name
                        for other in self.classes.values()
                        if not other.is_protocol
                        and other.name != name
                        and required <= set(other.methods)
                    }
            else:
                impls = {
                    other.name
                    for other in self.classes.values()
                    if other.name != name and name in self._mro(other.name)
                }
        self._protocol_impls[name] = frozenset(impls)
        return self._protocol_impls[name]

    def _mro(self, cls_name: str) -> list[str]:
        seen: list[str] = []
        frontier = [cls_name]
        while frontier:
            name = frontier.pop(0)
            if name in seen:
                continue
            seen.append(name)
            info = self.classes.get(name)
            if info is not None:
                frontier.extend(info.bases)
        return seen

    # -- lock / callable resolution --------------------------------------

    def _resolve_lock_expr(
        self,
        node: ast.expr,
        fn: FuncInfo,
        params: dict[str, frozenset[str]] | None = None,
    ) -> LockRef | None:
        if isinstance(node, ast.Name):
            return fn.scope_locks.get(node.id)
        if isinstance(node, ast.Attribute):
            if params is None:
                params = self._param_types(fn)
            for cls_name in self._infer(node.value, fn, params):
                for owner in self._mro(cls_name):
                    info = self.classes.get(owner)
                    if info is not None and node.attr in info.lock_attrs:
                        return info.lock_attrs[node.attr]
        return None

    def _resolve_cond_expr(
        self, node: ast.expr, fn: FuncInfo, params: dict[str, frozenset[str]]
    ) -> frozenset[str] | None:
        """Identities of the lock a condition attr was built on."""
        if not isinstance(node, ast.Attribute):
            return None
        for cls_name in self._infer(node.value, fn, params):
            for owner in self._mro(cls_name):
                info = self.classes.get(owner)
                if info is not None and node.attr in info.cond_attrs:
                    return info.cond_attrs[node.attr]
        return None

    def _resolve_func_ref(
        self, node: ast.expr, fn: FuncInfo, params: dict[str, frozenset[str]]
    ) -> set[str]:
        """Function keys a bare (uncalled) reference points at."""
        if isinstance(node, ast.Name):
            if node.id in fn.scope_callables:
                return set(fn.scope_callables[node.id])
            scope: FuncInfo | None = fn
            while scope is not None:
                key = f"{scope.module}::{scope.qualname}.{node.id}"
                if key in self.functions:
                    return {key}
                scope = (
                    self.functions.get(scope.parent)
                    if scope.parent is not None
                    else None
                )
            key = self.module_funcs.get((fn.module, node.id))
            return {key} if key is not None else set()
        if isinstance(node, ast.Attribute):
            out: set[str] = set()
            recv_types = self._expand_types(
                self._infer(node.value, fn, params)
            )
            for cls_name in recv_types:
                for owner in self._mro(cls_name):
                    info = self.classes.get(owner)
                    if info is not None and node.attr in info.methods:
                        out.add(info.methods[node.attr])
                        break
                else:
                    continue
            # callable attributes bound elsewhere (on_finish hooks)
            for cls_name in recv_types:
                out |= self.attr_callables.get((cls_name, node.attr), set())
            return out
        return set()

    def _resolve_call_targets(
        self, call: ast.Call, fn: FuncInfo, params: dict[str, frozenset[str]]
    ) -> set[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id in self.classes:
            info = self.classes[func.id]
            for owner in self._mro(func.id):
                owner_info = self.classes.get(owner)
                if owner_info is not None and "__init__" in owner_info.methods:
                    return {owner_info.methods["__init__"]}
            return set()
        return self._resolve_func_ref(func, fn, params)

    # -- phase 3: lexical scan -------------------------------------------

    def scan(self) -> None:
        """Two passes so callable-attr bindings resolve everywhere."""
        for _ in range(2):
            self.roots.clear()
            self.acquires.clear()
            self.calls.clear()
            self.writes.clear()
            self.blockers.clear()
            self.cm_holds = self._yield_holds
            self._yield_holds = {}
            ordered = list(self.functions.values())
            for info in ordered:
                self._prepare_scopes(info)
            for info in ordered:
                self._scan_function(info)
            self._discover_handler_roots()

    def _discover_handler_roots(self) -> None:
        for info in self.classes.values():
            if "BaseHTTPRequestHandler" not in self._mro(info.name) and (
                "BaseHTTPRequestHandler" not in info.bases
            ):
                continue
            for name, key in info.methods.items():
                if name.startswith("do_"):
                    self.roots.add(key)

    def _prepare_scopes(self, fn: FuncInfo) -> None:
        parent = self.functions.get(fn.parent) if fn.parent else None
        fn.scope_types = dict(parent.scope_types) if parent else {}
        fn.scope_locks = dict(parent.scope_locks) if parent else {}
        fn.scope_elem_types = dict(parent.scope_elem_types) if parent else {}
        fn.scope_callables = dict(parent.scope_callables) if parent else {}
        fn.local_names = (
            _local_names(fn.node)
            if not isinstance(fn.node, ast.Lambda)
            else set()
        )
        params = self._param_types(fn)
        for name, types in params.items():
            fn.scope_types[name] = types
        # parameter defaults (closure idiom: worker(lock=lock, ...))
        if not isinstance(fn.node, ast.Lambda):
            args = fn.node.args
            positional = args.posonlyargs + args.args
            defaults = args.defaults
            for arg, default in zip(positional[len(positional) - len(defaults):], defaults):
                self._bind_local(fn, arg.arg, default)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is not None:
                    self._bind_local(fn, arg.arg, default)
            for node in _shallow_walk(fn.node.body):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        self._bind_local(fn, target.id, node.value)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    self._bind_loop_target(fn, node.target, node.iter)

    def _bind_loop_target(
        self, fn: FuncInfo, target: ast.expr, it: ast.expr
    ) -> None:
        """Type loop variables from the container being iterated.

        ``for x in xs:`` and ``for x in d.values():`` bind ``x`` to the
        container's element type; ``for k, v in d.items():`` binds the
        value side of the unpacking.
        """
        params = self._param_types(fn)
        source = it
        value_target = target
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute):
            if it.func.attr in ("values", "items"):
                source = it.func.value
                if it.func.attr == "items":
                    if not (
                        isinstance(target, (ast.Tuple, ast.List))
                        and len(target.elts) == 2
                    ):
                        return
                    value_target = target.elts[1]
            else:
                return
        elems = self._elem_types(source, fn, params)
        if elems and isinstance(value_target, ast.Name):
            existing = fn.scope_types.get(value_target.id, frozenset())
            fn.scope_types[value_target.id] = existing | elems

    def _bind_local(self, fn: FuncInfo, name: str, value: ast.expr) -> None:
        lock = _named_lock_call(value)
        if lock is None:
            lock = self._resolve_lock_expr(value, fn)
        if lock is not None:
            if isinstance(value, ast.Call) and _named_lock_call(value):
                self._register_lock(lock, fn.module, value.lineno)
            fn.scope_locks[name] = lock
            return
        refs = self._resolve_func_ref(value, fn, self._param_types(fn))
        if refs and not isinstance(value, ast.Call):
            fn.scope_callables[name] = frozenset(refs)
            return
        types = self._infer_expr_types(value, fn)
        if types:
            fn.scope_types[name] = types
        if isinstance(value, ast.ListComp) and isinstance(value.elt, ast.Call):
            elt_func = value.elt.func
            if isinstance(elt_func, ast.Name) and elt_func.id in self.classes:
                fn.scope_elem_types[name] = frozenset({elt_func.id})
        if isinstance(value, ast.List):
            elems: set[str] = set()
            for item in value.elts:
                if (
                    isinstance(item, ast.Call)
                    and isinstance(item.func, ast.Name)
                    and item.func.id in self.classes
                ):
                    elems.add(item.func.id)
            if elems:
                fn.scope_elem_types[name] = frozenset(elems)

    # -- the walk ---------------------------------------------------------

    def _scan_function(self, fn: FuncInfo) -> None:
        params = self._param_types(fn)
        if isinstance(fn.node, ast.Lambda):
            self._scan_expr(fn.node.body, fn, params, ())
            return
        for stmt in fn.node.body:
            self._scan_stmt(stmt, fn, params, ())

    @staticmethod
    def _flatten(held: tuple[frozenset[str], ...]) -> frozenset[str]:
        out: set[str] = set()
        for ids in held:
            out |= ids
        return frozenset(out)

    def _scan_stmt(
        self,
        node: ast.stmt,
        fn: FuncInfo,
        params: dict[str, frozenset[str]],
        held: tuple[frozenset[str], ...],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are scanned as their own functions
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                inner = self._enter_context(item.context_expr, fn, params, inner)
            for stmt in node.body:
                self._scan_stmt(stmt, fn, params, inner)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                self._record_write(target, fn, held)
            # callable-attr binding: obj.attr = <method ref>
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                self._record_attr_binding(node, fn, params)
            if node.value is not None:
                self._scan_expr(node.value, fn, params, held)
            return
        self._scan_children(node, fn, params, held)

    def _scan_children(
        self,
        node: ast.AST,
        fn: FuncInfo,
        params: dict[str, frozenset[str]],
        held: tuple[frozenset[str], ...],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._scan_stmt(child, fn, params, held)
            elif isinstance(child, ast.expr):
                self._scan_expr(child, fn, params, held)
            else:  # ExceptHandler, match_case, ...
                self._scan_children(child, fn, params, held)

    def _enter_context(
        self,
        ctx: ast.expr,
        fn: FuncInfo,
        params: dict[str, frozenset[str]],
        held: tuple[frozenset[str], ...],
    ) -> tuple[frozenset[str], ...]:
        lock = _named_lock_call(ctx) or self._resolve_lock_expr(ctx, fn, params)
        if lock is not None:
            if lock.identities in held:  # re-entrant hold: no new info
                return held
            self.acquires.append(
                _Acquire(fn.key, lock, self._flatten(held), ctx.lineno)
            )
            return held + (lock.identities,)
        # context manager that is not a lock: record call edges, and --
        # when the value's type is known -- edges to __enter__/__exit__.
        self._scan_expr(ctx, fn, params, held)
        inner = held
        if isinstance(ctx, ast.Call):
            # a @contextmanager holding locks at its yield keeps them
            # held for the entire with-body at every call site
            for target in sorted(self._resolve_call_targets(ctx, fn, params)):
                for ids in sorted(
                    self.cm_holds.get(target, frozenset()), key=sorted
                ):
                    if ids in inner:  # re-entrant hold: no new info
                        continue
                    reentrant = any(
                        self.lock_reentrant.get(i, False) for i in ids
                    )
                    self.acquires.append(
                        _Acquire(
                            fn.key,
                            LockRef(ids, reentrant),
                            self._flatten(inner),
                            ctx.lineno,
                        )
                    )
                    inner = inner + (ids,)
        types = self._infer_expr_types(ctx, fn, params)
        flat = self._flatten(held)
        for cls_name in types:
            for owner in self._mro(cls_name):
                info = self.classes.get(owner)
                if info is None:
                    continue
                for dunder in ("__enter__", "__exit__"):
                    if dunder in info.methods:
                        self.calls.append(
                            _CallRec(
                                fn.key, info.methods[dunder], flat, ctx.lineno
                            )
                        )
        return inner

    def _record_attr_binding(
        self, node: ast.Assign, fn: FuncInfo, params: dict[str, frozenset[str]]
    ) -> None:
        target = node.targets[0]
        if not isinstance(target, ast.Attribute):
            return
        refs = self._resolve_func_ref(node.value, fn, params)
        if not refs or isinstance(node.value, ast.Call):
            return
        for cls_name in self._infer(target.value, fn, params):
            self.attr_callables.setdefault((cls_name, target.attr), set()).update(
                refs
            )

    def _record_write(
        self,
        target: ast.expr,
        fn: FuncInfo,
        held: tuple[frozenset[str], ...],
        mutator: bool = False,
    ) -> None:
        node = target
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Name):
            if node is target and not mutator:  # plain local rebind: x = ...
                return
            self._add_root_write(node.id, fn, held, target)
            return
        if not isinstance(node, ast.Attribute):
            return
        # walk to the chain root: self.a.b -> root self, first attr a
        chain: list[str] = []
        cursor: ast.expr = node
        while isinstance(cursor, (ast.Attribute, ast.Subscript)):
            if isinstance(cursor, ast.Attribute):
                chain.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return
        first_attr = chain[-1]
        if cursor.id == "self" and fn.cls is not None:
            self._add_self_write(first_attr, fn, held, target)
        elif cursor.id not in ("self", "cls"):
            self._add_root_write(cursor.id, fn, held, target)

    def _add_self_write(
        self,
        attr: str,
        fn: FuncInfo,
        held: tuple[frozenset[str], ...],
        node: ast.AST,
    ) -> None:
        cls = self.classes.get(fn.cls or "")
        if cls is None or attr in cls.lock_attrs or attr in cls.cond_attrs:
            return
        method_name = (
            fn.node.name
            if isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
            else ""
        )
        self.writes.append(
            _WriteRec(
                func=fn.key, kind="self", owner=fn.cls or "", name=attr,
                held=self._flatten(held),
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                in_init=method_name in _INIT_METHODS and fn.parent is None,
            )
        )

    def _add_root_write(
        self,
        root: str,
        fn: FuncInfo,
        held: tuple[frozenset[str], ...],
        node: ast.AST,
    ) -> None:
        if root in fn.local_names or root in fn.scope_locks:
            return
        self.writes.append(
            _WriteRec(
                func=fn.key, kind="root", owner=fn.module, name=root,
                held=self._flatten(held),
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                in_init=False,
            )
        )

    # -- expressions ------------------------------------------------------

    def _scan_expr(
        self,
        node: ast.expr,
        fn: FuncInfo,
        params: dict[str, frozenset[str]],
        held: tuple[frozenset[str], ...],
    ) -> None:
        stack: list[ast.AST] = [node]
        while stack:
            sub = stack.pop()
            if isinstance(sub, ast.Lambda):
                # scanned as its own function; roots marked at call args
                self._find_or_index_lambda(sub, fn)
                continue
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                self._record_yield(fn, held)
            if isinstance(sub, ast.Call):
                self._scan_call(sub, fn, params, held)
            stack.extend(ast.iter_child_nodes(sub))

    def _record_yield(
        self, fn: FuncInfo, held: tuple[frozenset[str], ...]
    ) -> None:
        """Locks held at a ``@contextmanager``'s yield guard its body."""
        if not _is_contextmanager(fn.node):
            return
        current = frozenset(held)
        previous = self._yield_holds.get(fn.key)
        self._yield_holds[fn.key] = (
            current if previous is None else previous & current
        )

    def _find_or_index_lambda(self, node: ast.Lambda, fn: FuncInfo) -> str:
        for key, info in self.functions.items():
            if info.node is node:
                return key
        key = self._index_lambda(node, fn)
        info = self.functions[key]
        self._prepare_scopes(info)
        self._scan_function(info)
        return key

    def _scan_call(
        self,
        call: ast.Call,
        fn: FuncInfo,
        params: dict[str, frozenset[str]],
        held: tuple[frozenset[str], ...],
    ) -> None:
        flat = self._flatten(held)
        targets = self._resolve_call_targets(call, fn, params)
        for target in targets:
            self.calls.append(_CallRec(fn.key, target, flat, call.lineno))
        self._classify_blocking(call, fn, params, flat)
        # mutator methods count as writes to their receiver
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _MUTATORS
            and not (
                isinstance(call.func.value, ast.Name)
                and call.func.value.id in ("self", "cls")
            )
        ):
            self._record_write(call.func.value, fn, held, mutator=True)
        # thread-root discovery: bare function/method refs as arguments
        arg_values = list(call.args) + [kw.value for kw in call.keywords]
        for value in arg_values:
            if isinstance(value, ast.Lambda):
                self.roots.add(self._find_or_index_lambda(value, fn))
                continue
            if isinstance(value, ast.Call):
                continue
            refs = self._resolve_func_ref(value, fn, params)
            self.roots.update(refs)

    def _classify_blocking(
        self,
        call: ast.Call,
        fn: FuncInfo,
        params: dict[str, frozenset[str]],
        held: frozenset[str],
    ) -> None:
        func = call.func
        sanctioned_io = IO_SANCTIONED_PART in fn.module or fn.module.startswith(
            "storage/"
        )
        if isinstance(func, ast.Name):
            if func.id in _FSYNC_NAMES or func.id.startswith("atomic_write"):
                if not sanctioned_io:
                    self.blockers.append(
                        _BlockRec(
                            fn.key, f"{func.id}()", held, frozenset(),
                            call.lineno, call.col_offset,
                        )
                    )
            return
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        recv = func.value
        recv_text = recv.attr if isinstance(recv, ast.Attribute) else (
            recv.id if isinstance(recv, ast.Name) else ""
        )
        if attr == "fsync" and recv_text == "os":
            if not sanctioned_io:
                self.blockers.append(
                    _BlockRec(
                        fn.key, "os.fsync()", held, frozenset(),
                        call.lineno, call.col_offset,
                    )
                )
            return
        recv_types = self._infer(recv, fn, params)
        recv_lower = recv_text.lower()
        if attr in _SLEEP_METHODS and (
            "clock" in recv_lower or recv_types & {"Clock", "RealClock", "VirtualClock"}
        ):
            self.blockers.append(
                _BlockRec(
                    fn.key, f"{recv_text or '<clock>'}.{attr}()", held,
                    frozenset(), call.lineno, call.col_offset,
                )
            )
            return
        if attr == "join":
            # only thread joins block; str.join is everywhere
            if "Thread" in recv_types or any(
                part in recv_lower for part in ("thread", "worker")
            ):
                self.blockers.append(
                    _BlockRec(
                        fn.key, f"{recv_text or '<thread>'}.join()", held,
                        frozenset(), call.lineno, call.col_offset,
                    )
                )
            return
        if attr == "wait":
            if isinstance(recv, ast.Constant):
                return
            exempt = self._resolve_cond_expr(recv, fn, params) or frozenset()
            self.blockers.append(
                _BlockRec(
                    fn.key, f"{recv_text or '<obj>'}.wait()", held, exempt,
                    call.lineno, call.col_offset,
                )
            )
            return
        if attr == "fetch" and (
            any(part in recv_lower for part in _FETCH_RECEIVERS)
            or recv_types & {"SimulatedTransport", "Fetcher"}
        ):
            self.blockers.append(
                _BlockRec(
                    fn.key, f"{recv_text or '<transport>'}.fetch()", held,
                    frozenset(), call.lineno, call.col_offset,
                )
            )


    # -- phase 4: fixpoints ----------------------------------------------

    def fixpoints(self) -> None:
        callees: dict[str, set[str]] = {}
        for rec in self.calls:
            callees.setdefault(rec.caller, set()).add(rec.callee)
        # thread-reachable = BFS from roots
        self.reachable: set[str] = set()
        frontier = list(self.roots)
        while frontier:
            func = frontier.pop()
            if func in self.reachable:
                continue
            self.reachable.add(func)
            frontier.extend(callees.get(func, ()))
        # must-entry (intersection over call sites; roots enter lock-free)
        top = None  # "never called": everything is possible
        must: dict[str, frozenset[str] | None] = {
            key: (frozenset() if key in self.roots else top)
            for key in self.functions
        }
        may: dict[str, frozenset[str]] = {
            key: frozenset() for key in self.functions
        }
        changed = True
        while changed:
            changed = False
            for rec in self.calls:
                if rec.callee not in must:
                    continue
                caller_must = must.get(rec.caller, top)
                if caller_must is not None:
                    inflow = caller_must | rec.held
                    current = must[rec.callee]
                    merged = inflow if current is None else current & inflow
                    if merged != current:
                        must[rec.callee] = merged
                        changed = True
                inflow_may = may.get(rec.caller, frozenset()) | rec.held
                if not inflow_may <= may[rec.callee]:
                    may[rec.callee] |= inflow_may
                    changed = True
        self.must_entry: dict[str, frozenset[str]] = {
            key: (value if value is not None else frozenset())
            for key, value in must.items()
        }
        self.may_entry = may
        # acquires*: locks a call to F may take, transitively
        acq: dict[str, frozenset[str]] = {
            key: frozenset() for key in self.functions
        }
        for acquire in self.acquires:
            acq[acquire.func] |= acquire.lock.identities
        changed = True
        while changed:
            changed = False
            for rec in self.calls:
                if rec.caller not in acq:
                    continue
                merged = acq[rec.caller] | acq.get(rec.callee, frozenset())
                if merged != acq[rec.caller]:
                    acq[rec.caller] = merged
                    changed = True
        self.acquires_star = acq
        # construction-confined methods: every call site is the owning
        # class's __init__ chain, so the object has not escaped to
        # other threads yet and its writes need no guard
        callers: dict[str, set[str]] = {}
        for rec in self.calls:
            callers.setdefault(rec.callee, set()).add(rec.caller)
        confined = {
            key
            for key, info in self.functions.items()
            if info.cls is not None
            and isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and info.node.name not in _INIT_METHODS
        }
        changed = True
        while changed:
            changed = False
            for key in sorted(confined):
                info = self.functions[key]
                sources = callers.get(key, set())
                ok = bool(sources)
                for caller in sources:
                    caller_info = self.functions.get(caller)
                    if caller_info is None or caller_info.cls != info.cls:
                        ok = False
                        break
                    node = caller_info.node
                    is_init = (
                        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and node.name in _INIT_METHODS
                        and caller_info.parent is None
                    )
                    if not is_init and caller not in confined:
                        ok = False
                        break
                if not ok:
                    confined.discard(key)
                    changed = True
        self.confined = confined

    # -- phase 5: findings -----------------------------------------------

    def order_edges(self) -> dict[tuple[str, str], set[str]]:
        edges: dict[tuple[str, str], set[str]] = {}

        def add(src: str, dst: str, module: str, line: int) -> None:
            edges.setdefault((src, dst), set()).add(f"{module}:{line}")

        for acquire in self.acquires:
            module = self.functions[acquire.func].module
            for held_id in acquire.held:
                for taken in acquire.lock.identities:
                    if taken != held_id and taken not in acquire.held:
                        add(held_id, taken, module, acquire.line)
        for rec in self.calls:
            if not rec.held:
                continue
            downstream = self.acquires_star.get(rec.callee, frozenset())
            downstream = downstream - rec.held
            if not downstream:
                continue
            module = self.functions[rec.caller].module
            for held_id in rec.held:
                for taken in downstream:
                    if taken != held_id:
                        add(held_id, taken, module, rec.line)
        return edges

    def guard_findings(
        self, edges: dict[tuple[str, str], set[str]]
    ) -> tuple[dict[str, dict[str, list[str]]], list[Diagnostic]]:
        guards: dict[str, dict[str, list[str]]] = {}
        diagnostics: list[Diagnostic] = []
        # component A: self-field writes vs. the owning class's locks
        by_class: dict[str, list[_WriteRec]] = {}
        for write in self.writes:
            if (
                write.kind == "self"
                and not write.in_init
                and write.func not in self.confined
            ):
                by_class.setdefault(write.owner, []).append(write)
        for cls_name, writes in sorted(by_class.items()):
            info = self.classes.get(cls_name)
            if info is None or not info.lock_attrs:
                continue
            class_locks: set[str] = set()
            for lock in info.lock_attrs.values():
                class_locks |= lock.identities
            by_field: dict[str, list[_WriteRec]] = {}
            for write in writes:
                by_field.setdefault(write.name, []).append(write)
            for field_name, field_writes in sorted(by_field.items()):
                guard: frozenset[str] | None = None
                for write in field_writes:
                    must_held = write.held | self.must_entry.get(
                        write.func, frozenset()
                    )
                    evidence = frozenset(must_held & class_locks)
                    if evidence:
                        guard = evidence if guard is None else guard & evidence
                if not guard:
                    continue
                guards.setdefault(cls_name, {})[field_name] = sorted(guard)
                for write in field_writes:
                    if write.func not in self.reachable:
                        continue
                    may_held = write.held | self.may_entry.get(
                        write.func, frozenset()
                    )
                    if may_held & guard:
                        continue
                    diagnostics.append(
                        Diagnostic(
                            rule="conc/inconsistent-guard",
                            severity=Severity.ERROR,
                            message=(
                                f"field '{field_name}' of {cls_name} is "
                                f"written without {'/'.join(sorted(guard))} "
                                "held, but guarded by it elsewhere; "
                                "thread-reachable via "
                                + self.functions[write.func].qualname
                            ),
                            path=self.functions[write.func].module,
                            line=write.line,
                            col=write.col,
                        )
                    )
        # component B: shared (non-local) roots written with and without
        # locks in the same module -- the "inconsistent" requirement
        # keeps confined objects quiet.
        by_root: dict[tuple[str, str], list[_WriteRec]] = {}
        for write in self.writes:
            if write.kind == "root" and write.func not in self.confined:
                by_root.setdefault((write.owner, write.name), []).append(write)
        for (module, root), writes in sorted(by_root.items()):
            guarded = any(
                write.held | self.must_entry.get(write.func, frozenset())
                for write in writes
            )
            if not guarded:
                continue
            for write in writes:
                if write.func not in self.reachable:
                    continue
                may_held = write.held | self.may_entry.get(
                    write.func, frozenset()
                )
                if may_held:
                    continue
                diagnostics.append(
                    Diagnostic(
                        rule="conc/inconsistent-guard",
                        severity=Severity.ERROR,
                        message=(
                            f"shared object '{root}' is written lock-free "
                            "here but under a lock elsewhere in this "
                            "module; thread-reachable via "
                            + self.functions[write.func].qualname
                        ),
                        path=module,
                        line=write.line,
                        col=write.col,
                    )
                )
        return guards, diagnostics

    def blocking_findings(self) -> list[Diagnostic]:
        diagnostics = []
        for blocker in self.blockers:
            effective = blocker.held | self.may_entry.get(
                blocker.func, frozenset()
            )
            offending = effective - blocker.exempt
            if not offending:
                continue
            diagnostics.append(
                Diagnostic(
                    rule="conc/blocking-under-lock",
                    severity=Severity.ERROR,
                    message=(
                        f"blocking call {blocker.what} while holding "
                        + "/".join(sorted(offending))
                        + f" (in {self.functions[blocker.func].qualname})"
                    ),
                    path=self.functions[blocker.func].module,
                    line=blocker.line,
                    col=blocker.col,
                )
            )
        return diagnostics


def _cycle_findings(
    edges: dict[tuple[str, str], set[str]]
) -> list[Diagnostic]:
    nodes = sorted({n for edge in edges for n in edge})
    succ: dict[str, set[str]] = {n: set() for n in nodes}
    for src, dst in edges:
        succ[src].add(dst)
    reach: dict[str, set[str]] = {}
    for node in nodes:
        seen: set[str] = set()
        frontier = list(succ[node])
        while frontier:
            nxt = frontier.pop()
            if nxt in seen:
                continue
            seen.add(nxt)
            frontier.extend(succ.get(nxt, ()))
        reach[node] = seen
    in_cycle = sorted(n for n in nodes if n in reach[n])
    # group into strongly connected components
    components: list[list[str]] = []
    assigned: set[str] = set()
    for node in in_cycle:
        if node in assigned:
            continue
        component = sorted(
            other
            for other in in_cycle
            if other == node
            or (other in reach[node] and node in reach[other])
        )
        assigned.update(component)
        components.append(component)
    diagnostics = []
    for component in components:
        sites: set[str] = set()
        for edge, edge_sites in edges.items():
            if edge[0] in component and edge[1] in component:
                sites |= edge_sites
        where = sorted(sites)[0] if sites else ":0"
        path, _, line = where.rpartition(":")
        diagnostics.append(
            Diagnostic(
                rule="conc/lock-order-cycle",
                severity=Severity.ERROR,
                message=(
                    "lock-order cycle: "
                    + " -> ".join(component + component[:1])
                    + "; acquisition sites: "
                    + ", ".join(sorted(sites)[:6])
                ),
                path=path or None,
                line=int(line) if line.isdigit() else None,
                col=0,
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# the public model


@dataclass
class ConcurrencyModel:
    """Canonical lock hierarchy + guard map for the analysed tree."""

    locks: dict[str, dict]
    order: list[dict]
    guards: dict[str, dict[str, list[str]]]
    roots: list[str]

    def lock_names(self) -> list[str]:
        return sorted(self.locks)

    def edge_pairs(self) -> frozenset[tuple[str, str]]:
        return frozenset((edge["from"], edge["to"]) for edge in self.order)

    def closure(self) -> frozenset[tuple[str, str]]:
        """Transitive closure of the acquisition-order relation."""
        pairs = set(self.edge_pairs())
        changed = True
        while changed:
            changed = False
            for a, b in list(pairs):
                for c, d in list(pairs):
                    if b == c and (a, d) not in pairs and a != d:
                        pairs.add((a, d))
                        changed = True
        return frozenset(pairs)

    def report(self) -> dict:
        return {
            "version": 1,
            "locks": self.locks,
            "order": self.order,
            "guards": self.guards,
            "thread_roots": self.roots,
        }

    def canonical_json(self) -> str:
        """Byte-stable serialisation (sorted keys, sorted site lists)."""
        return json.dumps(self.report(), sort_keys=True, indent=2) + "\n"

    def hierarchy_lines(self) -> list[str]:
        """``a -> b  (site, ...)`` rows for the generated docs table."""
        rows = []
        for edge in self.order:
            sites = ", ".join(edge["sites"])
            rows.append(f"| `{edge['from']}` | `{edge['to']}` | {sites} |")
        return rows


DEFAULT_ROOT = Path(__file__).resolve().parents[1]


def collect_files(paths: Iterable[Path | str]) -> list[Path]:
    files: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def analyze_paths(
    paths: Iterable[Path | str], root: Path | str | None = None
) -> tuple[ConcurrencyModel, list[Diagnostic]]:
    """Run the full concurrency analysis over ``paths``.

    Returns the canonical :class:`ConcurrencyModel` plus the
    diagnostics for the three interprocedural rules
    (``conc/inconsistent-guard``, ``conc/lock-order-cycle``,
    ``conc/blocking-under-lock``).  ``conc/unnamed-thread`` is lexical
    and lives in :mod:`repro.analysis.lint`.
    """
    base = Path(root).resolve() if root is not None else DEFAULT_ROOT
    analyzer = _Analyzer(collect_files(paths), base)
    analyzer.index()
    analyzer.infer_class_attrs()
    analyzer.scan()
    analyzer.fixpoints()

    edges = analyzer.order_edges()
    guards, guard_diags = analyzer.guard_findings(edges)
    diagnostics = list(guard_diags)
    diagnostics.extend(_cycle_findings(edges))
    diagnostics.extend(analyzer.blocking_findings())
    diagnostics.sort(
        key=lambda d: (d.path or "", d.line or 0, d.col or 0, d.rule)
    )

    locks = {
        name: {
            "reentrant": analyzer.lock_reentrant.get(name, False),
            "sites": sorted(f"{module}:{line}" for module, line in sites),
        }
        for name, sites in analyzer.lock_sites.items()
    }
    order = [
        {"from": src, "to": dst, "sites": sorted(sites)[:3]}
        for (src, dst), sites in sorted(edges.items())
    ]
    roots = sorted(
        {key.partition("#")[0] for key in analyzer.roots & set(analyzer.functions)}
    )
    model = ConcurrencyModel(
        locks=locks, order=order, guards=guards, roots=roots
    )
    return model, diagnostics


_PACKAGE_CACHE: dict[str, tuple[ConcurrencyModel, list[Diagnostic]]] = {}


def analyze_package(
    root: Path | str | None = None,
) -> tuple[ConcurrencyModel, list[Diagnostic]]:
    """Analyse (and memoise) the whole ``src/repro`` tree."""
    base = Path(root).resolve() if root is not None else DEFAULT_ROOT
    key = str(base)
    if key not in _PACKAGE_CACHE:
        _PACKAGE_CACHE[key] = analyze_paths([base], root=base)
    return _PACKAGE_CACHE[key]


__all__ = [
    "ConcurrencyModel",
    "LockRef",
    "analyze_package",
    "analyze_paths",
    "collect_files",
]
