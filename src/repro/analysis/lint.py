"""Repo invariant lint.

An :mod:`ast` pass over ``src/repro`` enforcing the determinism and
concurrency invariants the deterministic-replay pipeline depends on
(ROADMAP north star).  Rules:

``det/global-random``
    Direct calls into the global :mod:`random` module (``random.random()``,
    ``from random import randint``).  All randomness must flow through
    seeded ``random.Random`` instances derived via :mod:`repro.websim.rnd`
    (constructing ``random.Random(seed)`` is fine).
``det/wall-clock``
    ``time.time()`` / ``time.time_ns()`` / ``datetime.now()`` /
    ``datetime.utcnow()`` / ``date.today()`` reads.  Wall-clock reads make
    replays diverge; timestamps must come from the injected
    :class:`repro.runtime.Clock`.
``det/raw-sleep``
    Direct ``time.sleep()`` / ``time.monotonic()`` calls outside
    ``repro/runtime/clock.py`` (the clock implementations themselves).
    Sleeping or measuring elapsed time must go through the injected
    clock, or virtual-time runs silently burn real seconds.
``conc/inconsistent-guard``
    (interprocedural, :mod:`repro.analysis.concurrency`) a field written
    both under and outside its guarding lock on a thread-reachable
    path.  Supersedes the old per-file ``conc/unlocked-shared-write``
    rule repo-wide: the guard map is inferred from every
    ``named_lock`` site, not two hand-listed files.
``conc/lock-order-cycle``
    (interprocedural) a cycle in the static lock-acquisition-order
    graph built from nested ``with <lock>:`` blocks across call-graph
    edges.  The same hierarchy feeds the runtime
    :class:`repro.runtime.LockOrderWitness` under pytest.
``conc/blocking-under-lock``
    (interprocedural) a blocking operation -- clock sleep/wait,
    fetcher/transport I/O, fsync -- while holding a lock.  Journal and
    checkpoint I/O under ``repro/storage/`` is sanctioned: write-ahead
    durability under the engine lock is the design.
``conc/unnamed-thread``
    a ``threading.Thread(...)`` spawned without ``name=``.  Witness
    reports, traces and the SLO alerter attribute events by thread
    name; anonymous ``Thread-12`` labels make them unreadable.
``err/bare-except``
    ``except:`` with no exception type.
``err/silent-swallow``
    ``except Exception: pass`` (or ``BaseException``) -- a handler that
    catches everything and does nothing.
``ser/unserializable-field``
    Dataclass fields in ``ontology/intermediate.py`` (the pipelined
    hand-off records) whose annotated type is not JSON-safe.
``obs/untraced-stage``
    In ``core/pipeline.py``: a pipeline stage invocation (a call through
    a ``.fn`` attribute) not lexically inside a ``with ...span...:``
    block.  Every stage must run under a tracer span -- the no-op
    tracer makes the span free, so there is no fast-path excuse -- or
    operators lose the per-stage timing the observability layer
    promises (OBSERVABILITY.md).
``store/raw-atomic-write``
    File renames outside ``repro/storage/`` -- ``Path.replace(target)``,
    ``os.replace`` / ``os.rename``, ``shutil.move``.  A bare
    write-then-rename is atomic but not durable (no fsync of the file
    or its directory) and ``with_suffix(".tmp")`` collides for dotted
    filenames; persistence must go through
    :func:`repro.storage.atomic_write_bytes` and friends.

Findings can be suppressed with a ``# repro: allow[rule]`` comment on
the offending line or the line above; ``rule`` is the full id
(``det/wall-clock``) or its leaf (``wall-clock``).  The committed
baseline (``analysis/baseline.json``) grandfathers existing findings so
CI fails only on new violations.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
from pathlib import Path
from typing import Iterable, TextIO

from dataclasses import replace

from repro.analysis.concurrency import ConcurrencyModel, analyze_paths
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.storage.atomic import atomic_write_text

#: Root the default scan covers: the installed ``repro`` package source.
DEFAULT_ROOT = Path(__file__).resolve().parents[1]
#: Committed baseline of grandfathered findings.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"

#: Modules allowed to touch global randomness / wall clocks.
SANCTIONED_SUFFIXES = ("websim/rnd.py",)
#: The clock implementations: the one sanctioned home of raw sleeps.
RAW_SLEEP_SANCTIONED = ("runtime/clock.py",)
#: Files whose dataclasses must stay JSON-serialisable (pipeline hand-offs).
SERIALIZABLE_SUFFIXES = ("ontology/intermediate.py",)
#: Files whose stage invocations must run under a tracer span.
OBS_STAGE_SUFFIXES = ("core/pipeline.py",)
#: The sanctioned home of raw file renames: the atomic-write helpers.
ATOMIC_WRITE_SANCTIONED = "repro/storage/"

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")

_WALL_CLOCK_TIME = frozenset({"time", "time_ns"})
_WALL_CLOCK_DATETIME = frozenset({"now", "utcnow", "today"})
_RAW_SLEEP_TIME = frozenset({"sleep", "monotonic"})


def _has_suffix(path: Path, suffixes: tuple[str, ...]) -> bool:
    posix = path.as_posix()
    return any(posix.endswith(suffix) for suffix in suffixes)


def _suppressed(lines: list[str], lineno: int, rule: str) -> bool:
    """Whether ``# repro: allow[rule]`` covers 1-based line ``lineno``."""
    leaf = rule.rsplit("/", 1)[-1]
    for index in (lineno - 1, lineno - 2):
        if 0 <= index < len(lines):
            for match in _ALLOW_RE.finditer(lines[index]):
                allowed = {part.strip() for part in match.group(1).split(",")}
                if rule in allowed or leaf in allowed:
                    return True
    return False


class _FileLint:
    """Collects diagnostics for one python source file."""

    def __init__(self, path: Path, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        try:
            self.display = os.path.relpath(path)
        except ValueError:  # different drive on windows
            self.display = str(path)
        self.findings: list[Diagnostic] = []
        self._flag_det = True
        self._flag_raw_sleep = True

    def add(self, rule: str, message: str, node: ast.AST) -> None:
        lineno = getattr(node, "lineno", 0)
        if _suppressed(self.lines, lineno, rule):
            return
        self.findings.append(
            Diagnostic(
                rule=rule,
                severity=Severity.ERROR,
                message=message,
                path=self.display,
                line=lineno,
                col=getattr(node, "col_offset", 0),
            )
        )

    def run(self) -> list[Diagnostic]:
        try:
            tree = ast.parse(self.source)
        except SyntaxError as error:
            self.findings.append(
                Diagnostic(
                    rule="lint/syntax-error",
                    severity=Severity.ERROR,
                    message=f"cannot parse: {error.msg}",
                    path=self.display,
                    line=error.lineno or 0,
                    col=error.offset or 0,
                )
            )
            return self.findings
        self._flag_det = not _has_suffix(self.path, SANCTIONED_SUFFIXES)
        self._flag_raw_sleep = not _has_suffix(
            self.path, RAW_SLEEP_SANCTIONED
        )
        if self._flag_det or self._flag_raw_sleep:
            self._check_determinism(tree)
        if ATOMIC_WRITE_SANCTIONED not in self.path.resolve().as_posix():
            self._check_atomic_writes(tree)
        self._check_exception_handling(tree)
        self._check_threads(tree)
        if _has_suffix(self.path, SERIALIZABLE_SUFFIXES):
            self._check_serializability(tree)
        if _has_suffix(self.path, OBS_STAGE_SUFFIXES):
            self._check_traced_stages(tree)
        return self.findings

    # -- determinism -------------------------------------------------------

    def _check_determinism(self, tree: ast.Module) -> None:
        module_aliases: dict[str, str] = {}  # local name -> module
        from_imports: dict[str, tuple[str, str]] = {}  # local -> (mod, name)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in ("random", "time", "datetime"):
                        module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module in (
                "random",
                "time",
                "datetime",
            ):
                for alias in node.names:
                    from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

        if not module_aliases and not from_imports:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                self._check_nondeterministic_call(
                    node, module_aliases, from_imports
                )

    def _check_nondeterministic_call(
        self,
        node: ast.Call,
        module_aliases: dict[str, str],
        from_imports: dict[str, tuple[str, str]],
    ) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            origin = from_imports.get(func.id)
            if origin is None:
                return
            module, name = origin
            if module == "random" and name not in ("Random",):
                self._flag_global_random(node, f"random.{name}")
            elif module == "time" and name in _WALL_CLOCK_TIME:
                self._flag_wall_clock(node, f"time.{name}")
            elif module == "time" and name in _RAW_SLEEP_TIME:
                self._flag_raw_sleep_call(node, f"time.{name}")
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if isinstance(base, ast.Name):
            module = module_aliases.get(base.id)
            if module == "random" and func.attr not in ("Random",):
                self._flag_global_random(node, f"random.{func.attr}")
                return
            if module == "time" and func.attr in _WALL_CLOCK_TIME:
                self._flag_wall_clock(node, f"time.{func.attr}")
                return
            if module == "time" and func.attr in _RAW_SLEEP_TIME:
                self._flag_raw_sleep_call(node, f"time.{func.attr}")
                return
            # from datetime import datetime/date; datetime.now()
            origin = from_imports.get(base.id)
            if (
                origin is not None
                and origin[0] == "datetime"
                and origin[1] in ("datetime", "date")
                and func.attr in _WALL_CLOCK_DATETIME
            ):
                self._flag_wall_clock(node, f"{origin[1]}.{func.attr}")
            return
        # import datetime; datetime.datetime.now()
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and module_aliases.get(base.value.id) == "datetime"
            and base.attr in ("datetime", "date")
            and func.attr in _WALL_CLOCK_DATETIME
        ):
            self._flag_wall_clock(node, f"datetime.{base.attr}.{func.attr}")

    def _flag_global_random(self, node: ast.Call, what: str) -> None:
        if not self._flag_det:
            return
        self.add(
            "det/global-random",
            f"{what}() uses the shared global RNG; derive a seeded "
            "random.Random via repro.websim.rnd instead",
            node,
        )

    def _flag_wall_clock(self, node: ast.Call, what: str) -> None:
        if not self._flag_det:
            return
        self.add(
            "det/wall-clock",
            f"{what}() reads the wall clock, which breaks deterministic "
            "replay; thread a timestamp in from the caller or use the "
            "injected repro.runtime clock",
            node,
        )

    def _flag_raw_sleep_call(self, node: ast.Call, what: str) -> None:
        if not self._flag_raw_sleep:
            return
        self.add(
            "det/raw-sleep",
            f"{what}() bypasses the injected repro.runtime clock; sleep "
            "and measure elapsed time through a Clock so virtual-time "
            "runs stay instant",
            node,
        )

    # -- atomic writes -----------------------------------------------------

    def _check_atomic_writes(self, tree: ast.Module) -> None:
        module_aliases: dict[str, str] = {}  # local name -> module
        from_imports: dict[str, str] = {}  # local name -> "mod.attr"
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in ("os", "shutil"):
                        module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module in (
                "os",
                "shutil",
            ):
                for alias in node.names:
                    if alias.name in ("replace", "rename", "move"):
                        from_imports[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                what = from_imports.get(func.id)
                if what is not None:
                    self._flag_raw_rename(node, what)
                continue
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            if isinstance(base, ast.Name) and base.id in module_aliases:
                module = module_aliases[base.id]
                if (module == "os" and func.attr in ("replace", "rename")) or (
                    module == "shutil" and func.attr == "move"
                ):
                    self._flag_raw_rename(node, f"{module}.{func.attr}")
                continue
            # Path.replace(target): one positional argument, no keywords
            # (str.replace always takes two -- this cannot be it)
            if (
                func.attr == "replace"
                and len(node.args) == 1
                and not node.keywords
            ):
                self._flag_raw_rename(node, ".replace")

    def _flag_raw_rename(self, node: ast.Call, what: str) -> None:
        self.add(
            "store/raw-atomic-write",
            f"{what}(...) renames a file without fsync, so the data can "
            "vanish on a host crash; persist through the "
            "repro.storage.atomic_write_* helpers",
            node,
        )

    # -- exception hygiene -------------------------------------------------

    def _check_exception_handling(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                self.add(
                    "err/bare-except",
                    "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                    "name the exception type",
                    node,
                )
                continue
            if self._catches_everything(node.type) and all(
                self._is_noop(stmt) for stmt in node.body
            ):
                self.add(
                    "err/silent-swallow",
                    "handler catches Exception and does nothing, hiding "
                    "failures; log or re-raise",
                    node,
                )

    @staticmethod
    def _catches_everything(expr: ast.expr) -> bool:
        names: list[ast.expr] = (
            list(expr.elts) if isinstance(expr, ast.Tuple) else [expr]
        )
        for item in names:
            if isinstance(item, ast.Name) and item.id in (
                "Exception",
                "BaseException",
            ):
                return True
        return False

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Pass):
            return True
        return isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        )

    # -- concurrency -------------------------------------------------------

    def _check_threads(self, tree: ast.Module) -> None:
        """Every spawned thread must carry a ``name=``."""
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_thread = (isinstance(func, ast.Name) and func.id == "Thread") or (
                isinstance(func, ast.Attribute) and func.attr == "Thread"
            )
            if not is_thread:
                continue
            if any(keyword.arg == "name" for keyword in node.keywords):
                continue
            self.add(
                "conc/unnamed-thread",
                "thread spawned without name=; witness reports, traces "
                "and health alerts attribute events by thread name",
                node,
            )

    # -- observability -----------------------------------------------------

    def _check_traced_stages(self, tree: ast.Module) -> None:
        """Every ``stage.fn(...)`` call must sit under a span context."""
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for stmt in node.body:
                    self._scan_trace_stmt(stmt, traced=False)

    def _scan_trace_stmt(self, node: ast.stmt, traced: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are scanned as their own roots
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = traced or any(
                _mentions_span(item.context_expr) for item in node.items
            )
            for stmt in node.body:
                self._scan_trace_stmt(stmt, inner)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._scan_trace_stmt(child, traced)
            elif isinstance(child, ast.expr) and not traced:
                self._flag_untraced_fn_calls(child)

    def _flag_untraced_fn_calls(self, expr: ast.expr) -> None:
        for call in ast.walk(expr):
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "fn"
            ):
                self.add(
                    "obs/untraced-stage",
                    "pipeline stage runs outside a tracer span; wrap the "
                    "stage.fn(...) call in 'with "
                    "obs.tracer.span(stage.name):' so per-stage timing "
                    "reaches the trace",
                    call,
                )

    # -- serializability ---------------------------------------------------

    def _check_serializability(self, tree: ast.Module) -> None:
        dataclasses = [
            node
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef) and _is_dataclass(node)
        ]
        same_module = {cls.name for cls in dataclasses}
        safe_names = (
            {
                "str",
                "int",
                "float",
                "bool",
                "None",
                "NoneType",
                "object",
                "EntityType",
                "RelationType",
            }
            | same_module
        )
        for cls in dataclasses:
            for stmt in cls.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                if not isinstance(stmt.target, ast.Name):
                    continue
                if not self._json_safe(stmt.annotation, safe_names):
                    self.add(
                        "ser/unserializable-field",
                        f"field {stmt.target.id!r} of dataclass "
                        f"{cls.name!r} has a non-JSON-serialisable type "
                        f"annotation; pipeline hand-off records must "
                        "round-trip through JSON",
                        stmt,
                    )

    def _json_safe(self, annotation: ast.expr, safe_names: set[str]) -> bool:
        if isinstance(annotation, ast.Constant):
            if annotation.value is None:
                return True
            if isinstance(annotation.value, str):
                try:
                    parsed = ast.parse(annotation.value, mode="eval").body
                except SyntaxError:
                    return False
                return self._json_safe(parsed, safe_names)
            return False
        if isinstance(annotation, ast.Name):
            return annotation.id in safe_names
        if isinstance(annotation, ast.Attribute):
            return annotation.attr in safe_names
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            return self._json_safe(annotation.left, safe_names) and self._json_safe(
                annotation.right, safe_names
            )
        if isinstance(annotation, ast.Subscript):
            container = annotation.value
            container_name = (
                container.id
                if isinstance(container, ast.Name)
                else container.attr
                if isinstance(container, ast.Attribute)
                else None
            )
            if container_name not in (
                "list",
                "List",
                "dict",
                "Dict",
                "tuple",
                "Tuple",
                "Optional",
                "Union",
                "Sequence",
                "Mapping",
            ):
                return False
            inner = annotation.slice
            items = list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
            if container_name in ("dict", "Dict", "Mapping") and items:
                key = items[0]
                if not (isinstance(key, ast.Name) and key.id == "str"):
                    return False
            return all(self._json_safe(item, safe_names) for item in items)
        return False


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr
            if isinstance(target, ast.Attribute)
            else None
        )
        if name == "dataclass":
            return True
    return False


def _mentions_span(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None and "span" in name.lower():
            return True
    return False


# -- driver -----------------------------------------------------------------


def lint_file(path: Path) -> list[Diagnostic]:
    """All findings for one file (suppressions applied, baseline not)."""
    source = path.read_text(encoding="utf-8")
    return _FileLint(path, source).run()


def lint_paths(paths: Iterable[Path]) -> list[Diagnostic]:
    """Findings across files and directories (``.py`` files, recursively)."""
    findings: list[Diagnostic] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                findings.extend(lint_file(file))
        else:
            findings.extend(lint_file(path))
    return findings


def concurrency_findings(
    paths: Iterable[Path], root: Path | None = None
) -> tuple[ConcurrencyModel, list[Diagnostic]]:
    """The cross-file concurrency pass, with suppressions applied.

    Returns the canonical lock-hierarchy model plus the interprocedural
    ``conc/*`` findings, with ``# repro: allow[...]`` comments honoured
    and paths rewritten relative to the working directory so they print
    (and baseline) like per-file findings.
    """
    base = Path(root).resolve() if root is not None else DEFAULT_ROOT
    model, diagnostics = analyze_paths(list(paths), root=base)
    kept: list[Diagnostic] = []
    for diagnostic in diagnostics:
        file_path = base / (diagnostic.path or "")
        try:
            lines = file_path.read_text(encoding="utf-8").splitlines()
        except OSError:
            lines = []
        if diagnostic.line and _suppressed(
            lines, diagnostic.line, diagnostic.rule
        ):
            continue
        try:
            display = os.path.relpath(file_path)
        except ValueError:  # different drive on windows
            display = str(file_path)
        kept.append(replace(diagnostic, path=display))
    return model, kept


# -- baseline ---------------------------------------------------------------


def _baseline_key(diagnostic: Diagnostic) -> tuple[str, str, str]:
    """A line-number-free identity for baseline matching.

    Uses the path relative to the scanned package root (stable across
    checkouts) plus the rule and the stripped source line, so findings
    survive unrelated edits that shift line numbers.
    """
    path = Path(diagnostic.path or "").resolve()
    try:
        rel = path.relative_to(DEFAULT_ROOT).as_posix()
    except ValueError:
        rel = path.name
    line_text = ""
    if diagnostic.line:
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
            line_text = lines[diagnostic.line - 1].strip()
        except (OSError, IndexError):
            line_text = ""
    return (rel, diagnostic.rule, line_text)


def write_baseline(findings: list[Diagnostic], path: Path) -> int:
    """Persist current findings as the baseline; returns the entry count."""
    counts: dict[tuple[str, str, str], int] = {}
    for diagnostic in findings:
        counts[_baseline_key(diagnostic)] = (
            counts.get(_baseline_key(diagnostic), 0) + 1
        )
    entries = [
        {"path": rel, "rule": rule, "line": line_text, "count": count}
        for (rel, rule, line_text), count in sorted(counts.items())
    ]
    atomic_write_text(path, json.dumps(entries, indent=2) + "\n")
    return len(entries)


def load_baseline(path: Path) -> dict[tuple[str, str, str], int]:
    if not path.exists():
        return {}
    entries = json.loads(path.read_text(encoding="utf-8"))
    return {
        (entry["path"], entry["rule"], entry["line"]): int(
            entry.get("count", 1)
        )
        for entry in entries
    }


def apply_baseline(
    findings: list[Diagnostic], baseline: dict[tuple[str, str, str], int]
) -> list[Diagnostic]:
    """Findings not covered by the baseline (count-aware)."""
    remaining = dict(baseline)
    new: list[Diagnostic] = []
    for diagnostic in findings:
        key = _baseline_key(diagnostic)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            continue
        new.append(diagnostic)
    return new


# -- CLI --------------------------------------------------------------------


def main(argv: list[str] | None = None, out: TextIO | None = None) -> int:
    """``repro-lint`` / ``python -m repro lint`` entry point.

    Exits 0 when no findings beyond the baseline, 1 otherwise.
    """
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="static lint of the repro determinism/concurrency invariants",
        allow_abbrev=False,
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=f"files or directories to lint (default: {DEFAULT_ROOT})",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline file of grandfathered findings",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON document instead of text lines",
    )
    parser.add_argument(
        "--concurrency-report",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the canonical lock-hierarchy model "
        "(concurrency.json) to PATH",
    )
    args = parser.parse_args(argv)

    scan_paths = args.paths or [DEFAULT_ROOT]
    conc_root = DEFAULT_ROOT
    if args.paths:
        first = Path(args.paths[0]).resolve()
        if not first.is_relative_to(DEFAULT_ROOT):
            conc_root = first if first.is_dir() else first.parent
    findings = lint_paths(scan_paths)
    model, conc_findings = concurrency_findings(scan_paths, root=conc_root)
    findings = findings + conc_findings
    if args.concurrency_report is not None:
        atomic_write_text(args.concurrency_report, model.canonical_json())

    if args.write_baseline:
        # conc/* findings are never baselined: the lock hierarchy must
        # stay clean, not grandfathered (CONCURRENCY.md).
        count = write_baseline(
            [f for f in findings if not f.rule.startswith("conc/")],
            args.baseline,
        )
        print(
            f"baseline written: {count} entr{'y' if count == 1 else 'ies'} "
            f"({len(findings)} finding{'s' if len(findings) != 1 else ''}) "
            f"-> {args.baseline}",
            file=out,
        )
        return 0

    baseline = {} if args.no_baseline else load_baseline(args.baseline)
    baseline = {
        key: count
        for key, count in baseline.items()
        if not key[1].startswith("conc/")
    }
    new = apply_baseline(findings, baseline)
    grandfathered = len(findings) - len(new)
    if args.json:
        payload = {
            "findings": [diagnostic.to_dict() for diagnostic in new],
            "total": len(new),
            "grandfathered": grandfathered,
        }
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 1 if new else 0
    for diagnostic in new:
        print(diagnostic.format(), file=out)
    summary = f"{len(new)} finding{'s' if len(new) != 1 else ''}"
    if grandfathered:
        summary += f" ({grandfathered} grandfathered by baseline)"
    print(summary, file=out)
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
