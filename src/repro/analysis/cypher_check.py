"""Cypher semantic analyzer.

A static pass over the parsed AST of :mod:`repro.graphdb.cypher` that
catches the queries which would otherwise fail *silently* -- a typo'd
label (``MATCH (m:Malwear)``) matches nothing and returns zero rows,
which in a threat-intel UI is indistinguishable from "no such malware".
The analyzer checks a query against a :class:`QuerySchema` built from
the security ontology (:mod:`repro.ontology`) plus whatever labels,
relationship types and property keys actually exist in the graph, and
reports positioned :class:`~repro.analysis.diagnostics.Diagnostic`\\ s.

Rules
-----

=============================  ========  ==================================
``cypher/unknown-label``       error*    node label absent from ontology
                                         and graph (warning in CREATE)
``cypher/unknown-rel-type``    error*    relationship type absent from
                                         ontology and graph (warning in
                                         CREATE)
``cypher/unbound-variable``    error     WHERE/RETURN/ORDER BY references
                                         a variable no pattern binds
``cypher/unknown-property``    warning   property key never seen in the
                                         ontology or the graph
``cypher/type-mismatch``       error/w   ordering comparison between
                                         incompatible types
``cypher/aggregate-in-where``  error     count()/collect()/avg()/min()/
                                         max()/sum() inside WHERE
``cypher/unbounded-path``      warning   variable-length pattern with no
                                         explicit upper bound
``cypher/cartesian-product``   warning   MATCH paths sharing no variable
``cypher/duplicate-alias``     warning   two RETURN items with one alias
=============================  ========  ==================================
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, Severity, Span
from repro.graphdb.cypher import ast
from repro.graphdb.cypher.parser import parse
from repro.ontology.entities import EntityType
from repro.ontology.relations import RelationType

#: Property keys the storage stage itself writes, known even before any
#: graph is populated (node bookkeeping + edge provenance).
BASE_PROPERTY_KEYS: frozenset[str] = frozenset(
    {
        "name",
        "merge_key",
        "weight",
        "reports",
        "sentence",
        "report_id",
        "source",
        "url",
        "title",
    }
)


@dataclass(frozen=True)
class QuerySchema:
    """What the analyzer validates queries against.

    ``property_types`` maps a property key to the set of python type
    names observed for it (used by the type-compatibility rule); keys
    with no observations simply skip that rule.

    ``closed_labels`` / ``closed_rel_types`` declare the respective
    vocabulary authoritative: a MATCH against an unknown name is then an
    error rather than a warning.  A populated graph closes its own
    vocabularies; an empty one provides no evidence, so misses stay
    advisory.
    """

    labels: frozenset[str] = frozenset()
    rel_types: frozenset[str] = frozenset()
    property_keys: frozenset[str] = frozenset()
    property_types: dict[str, frozenset[str]] = field(default_factory=dict)
    closed_labels: bool = False
    closed_rel_types: bool = False

    def merged_with(self, other: "QuerySchema") -> "QuerySchema":
        types = {key: set(value) for key, value in self.property_types.items()}
        for key, value in other.property_types.items():
            types.setdefault(key, set()).update(value)
        return QuerySchema(
            labels=self.labels | other.labels,
            rel_types=self.rel_types | other.rel_types,
            property_keys=self.property_keys | other.property_keys,
            property_types={k: frozenset(v) for k, v in types.items()},
            closed_labels=self.closed_labels or other.closed_labels,
            closed_rel_types=self.closed_rel_types or other.closed_rel_types,
        )


def ontology_schema(closed: bool = False) -> QuerySchema:
    """The vocabulary of the security ontology.

    ``closed=True`` treats the ontology as authoritative (unknown
    labels/types become errors even without graph evidence) -- used by
    the repo sweep test; runtime analysis leaves it open and lets the
    graph close the vocabularies instead.
    """
    return QuerySchema(
        labels=frozenset(entity.value for entity in EntityType),
        rel_types=frozenset(relation.value for relation in RelationType),
        property_keys=BASE_PROPERTY_KEYS,
        closed_labels=closed,
        closed_rel_types=closed,
    )


def graph_schema(graph) -> QuerySchema:
    """Labels, relationship types and property keys present in a graph.

    Works with any object exposing ``label_counts`` /
    ``edge_type_counts``; the incremental ``property_schema`` index of
    :class:`~repro.graphdb.store.PropertyGraph` is used when available.
    """
    labels = frozenset(graph.label_counts())
    rel_types = frozenset(graph.edge_type_counts())
    prop_schema = getattr(graph, "property_schema", None)
    property_types: dict[str, frozenset[str]] = (
        dict(prop_schema()) if callable(prop_schema) else {}
    )
    return QuerySchema(
        labels=labels,
        rel_types=rel_types,
        property_keys=frozenset(property_types),
        property_types=property_types,
        closed_labels=bool(labels),
        closed_rel_types=bool(rel_types),
    )


def schema_for(graph) -> QuerySchema:
    """Ontology vocabulary extended with what the graph contains."""
    return ontology_schema().merged_with(graph_schema(graph))


# -- type grouping for the comparison rule ---------------------------------

_TYPE_GROUPS = {
    "int": "number",
    "float": "number",
    "bool": "number",
    "str": "string",
    "list": "list",
    "tuple": "list",
    "NoneType": "null",
}


def _group_of(value: object) -> str | None:
    return _TYPE_GROUPS.get(type(value).__name__)


_ORDERING_OPS = frozenset({"<", ">", "<=", ">="})
_EQUALITY_OPS = frozenset({"=", "<>"})


class CypherAnalyzer:
    """Analyze parsed queries against a :class:`QuerySchema`."""

    def __init__(self, schema: QuerySchema | None = None):
        self.schema = schema if schema is not None else ontology_schema()

    # -- entry points ------------------------------------------------------

    def analyze(
        self, query: str | ast.Query, source: str = ""
    ) -> list[Diagnostic]:
        """All diagnostics for one query (parses strings first).

        Raises :class:`~repro.graphdb.cypher.lexer.CypherSyntaxError`
        for unparseable input; semantic findings are *returned*, never
        raised -- policy (strict vs advisory) belongs to the caller.
        """
        if isinstance(query, str):
            source = query
            query = parse(query)
        out: list[Diagnostic] = []
        if isinstance(query, ast.MatchQuery):
            self._analyze_match(query, out)
        elif isinstance(query, ast.CreateQuery):
            self._analyze_create(query, out)
        return sorted(out, key=lambda d: (d.span.start if d.span else -1))

    # -- MATCH ------------------------------------------------------------

    def _analyze_match(self, query: ast.MatchQuery, out: list[Diagnostic]) -> None:
        declared: set[str] = set()
        for path in query.paths:
            declared.update(_path_variables(path))
        for path in query.paths:
            self._check_path(path, out, create=False)
        self._check_connectivity(query.paths, out)

        if query.where is not None:
            self._check_expr(query.where, declared, out, clause="WHERE")

        aliases: set[str] = set()
        for item in query.returns:
            self._check_expr(item.expr, declared, out, clause="RETURN")
            if item.alias in aliases:
                out.append(
                    Diagnostic(
                        rule="cypher/duplicate-alias",
                        severity=Severity.WARNING,
                        message=(
                            f"duplicate RETURN alias {item.alias!r}; "
                            "later items overwrite earlier ones"
                        ),
                    )
                )
            aliases.add(item.alias)

        for expr, _ascending in query.order_by:
            # ORDER BY may also reference RETURN aliases.
            self._check_expr(expr, declared | aliases, out, clause="ORDER BY")

    def _analyze_create(self, query: ast.CreateQuery, out: list[Diagnostic]) -> None:
        for path in query.paths:
            self._check_path(path, out, create=True)

    # -- patterns ----------------------------------------------------------

    def _check_path(
        self, path: ast.PathPattern, out: list[Diagnostic], create: bool
    ) -> None:
        # CREATE legitimately introduces new labels/types, so vocabulary
        # misses are advisory there; in MATCH against a closed vocabulary
        # they guarantee zero rows and are errors.
        label_severity = (
            Severity.ERROR
            if not create and self.schema.closed_labels
            else Severity.WARNING
        )
        rel_severity = (
            Severity.ERROR
            if not create and self.schema.closed_rel_types
            else Severity.WARNING
        )
        for node in path.nodes:
            if node.label is not None and node.label not in self.schema.labels:
                out.append(
                    Diagnostic(
                        rule="cypher/unknown-label",
                        severity=label_severity,
                        message=f"unknown node label {node.label!r}",
                        span=_span_at(node.label_pos, node.label),
                        suggestion=_closest(node.label, self.schema.labels),
                    )
                )
            for (key, _value), pos in zip(
                node.properties, node.property_positions
            ):
                self._check_property_key(key, pos, out)
        for rel in path.rels:
            if (
                rel.rel_type is not None
                and rel.rel_type not in self.schema.rel_types
            ):
                out.append(
                    Diagnostic(
                        rule="cypher/unknown-rel-type",
                        severity=rel_severity,
                        message=f"unknown relationship type {rel.rel_type!r}",
                        span=_span_at(rel.type_pos, rel.rel_type),
                        suggestion=_closest(rel.rel_type, self.schema.rel_types),
                    )
                )
            if rel.is_variable_length and not rel.explicit_max:
                out.append(
                    Diagnostic(
                        rule="cypher/unbounded-path",
                        severity=Severity.WARNING,
                        message=(
                            "variable-length pattern has no upper bound; "
                            "the engine caps it at 5 hops -- write an "
                            "explicit bound like *1..3"
                        ),
                        span=_span_at(rel.star_pos, "*"),
                    )
                )

    def _check_connectivity(
        self, paths: list[ast.PathPattern], out: list[Diagnostic]
    ) -> None:
        """Warn when MATCH paths share no variables (cartesian product)."""
        if len(paths) < 2:
            return
        components: list[set[str]] = []
        disconnected = 0
        for path in paths:
            variables = _path_variables(path)
            merged = False
            for component in components:
                if component & variables:
                    component.update(variables)
                    merged = True
                    break
            if not merged:
                components.append(set(variables))
                if len(components) > 1:
                    disconnected += 1
        if disconnected:
            first = paths[0].nodes[0]
            out.append(
                Diagnostic(
                    rule="cypher/cartesian-product",
                    severity=Severity.WARNING,
                    message=(
                        "MATCH contains disconnected patterns; the result "
                        "is a cartesian product over their matches"
                    ),
                    span=_span_at(first.pos, "("),
                )
            )

    # -- expressions -------------------------------------------------------

    def _check_expr(
        self,
        expr: ast.Expr,
        declared: set[str],
        out: list[Diagnostic],
        clause: str,
    ) -> None:
        if isinstance(expr, ast.Variable):
            self._check_bound(expr.name, expr.pos, declared, out, clause)
        elif isinstance(expr, ast.Property):
            self._check_bound(expr.variable, expr.pos, declared, out, clause)
            self._check_property_key(expr.key, expr.key_pos, out)
        elif isinstance(expr, (ast.And, ast.Or)):
            self._check_expr(expr.left, declared, out, clause)
            self._check_expr(expr.right, declared, out, clause)
        elif isinstance(expr, ast.Not):
            self._check_expr(expr.operand, declared, out, clause)
        elif isinstance(expr, ast.Compare):
            self._check_expr(expr.left, declared, out, clause)
            if expr.right is not None:
                self._check_expr(expr.right, declared, out, clause)
            self._check_compare_types(expr, out)
        elif isinstance(expr, (ast.Count, ast.Collect, ast.NumAgg)):
            if clause == "WHERE":
                if isinstance(expr, ast.NumAgg):
                    name = expr.func
                else:
                    name = "count" if isinstance(expr, ast.Count) else "collect"
                out.append(
                    Diagnostic(
                        rule="cypher/aggregate-in-where",
                        severity=Severity.ERROR,
                        message=f"{name}() is an aggregate and cannot "
                        "be used in WHERE; aggregates belong in RETURN",
                    )
                )
            if expr.operand is not None:
                self._check_expr(expr.operand, declared, out, clause)
        elif isinstance(expr, ast.ListLiteral):
            for item in expr.items:
                self._check_expr(item, declared, out, clause)

    def _check_bound(
        self,
        name: str,
        pos: int,
        declared: set[str],
        out: list[Diagnostic],
        clause: str,
    ) -> None:
        if name in declared:
            return
        out.append(
            Diagnostic(
                rule="cypher/unbound-variable",
                severity=Severity.ERROR,
                message=(
                    f"variable {name!r} in {clause} is not bound by any "
                    "MATCH pattern"
                ),
                span=_span_at(pos, name),
                suggestion=_closest(name, declared),
            )
        )

    def _check_property_key(
        self, key: str, pos: int, out: list[Diagnostic]
    ) -> None:
        if key in self.schema.property_keys:
            return
        out.append(
            Diagnostic(
                rule="cypher/unknown-property",
                severity=Severity.WARNING,
                message=f"property key {key!r} never occurs in the graph "
                "or ontology; the comparison will always be null",
                span=_span_at(pos, key),
                suggestion=_closest(key, self.schema.property_keys),
            )
        )

    def _check_compare_types(self, expr: ast.Compare, out: list[Diagnostic]) -> None:
        if expr.op in _ORDERING_OPS:
            self._check_ordering(expr, out)
        elif expr.op in _EQUALITY_OPS:
            self._check_equality(expr, out)

    def _check_ordering(self, expr: ast.Compare, out: list[Diagnostic]) -> None:
        left, right = expr.left, expr.right
        if isinstance(left, ast.Literal) and isinstance(right, ast.Literal):
            lg, rg = _group_of(left.value), _group_of(right.value)
            if lg and rg and lg != rg:
                out.append(
                    Diagnostic(
                        rule="cypher/type-mismatch",
                        severity=Severity.ERROR,
                        message=f"cannot order-compare {lg} with {rg}",
                        span=_span_at(expr.op_pos, expr.op),
                    )
                )
            return
        for prop, literal in ((left, right), (right, left)):
            if isinstance(prop, ast.Property) and isinstance(literal, ast.Literal):
                self._check_property_literal(prop, literal, expr, out)

    def _check_equality(self, expr: ast.Compare, out: list[Diagnostic]) -> None:
        left, right = expr.left, expr.right
        for prop, literal in ((left, right), (right, left)):
            if isinstance(prop, ast.Property) and isinstance(literal, ast.Literal):
                self._check_property_literal(prop, literal, expr, out)

    def _check_property_literal(
        self,
        prop: ast.Property,
        literal: ast.Literal,
        expr: ast.Compare,
        out: list[Diagnostic],
    ) -> None:
        observed = self.schema.property_types.get(prop.key)
        if not observed:
            return  # no evidence either way
        literal_group = _group_of(literal.value)
        if literal_group in (None, "null"):
            return
        observed_groups = {
            _TYPE_GROUPS.get(type_name) for type_name in observed
        } - {None}
        if observed_groups and literal_group not in observed_groups:
            kinds = "/".join(sorted(observed_groups))
            out.append(
                Diagnostic(
                    rule="cypher/type-mismatch",
                    severity=Severity.WARNING,
                    message=(
                        f"property {prop.key!r} holds {kinds} values but is "
                        f"compared with a {literal_group} literal"
                    ),
                    span=_span_at(expr.op_pos, expr.op),
                )
            )


# -- helpers ----------------------------------------------------------------


def _path_variables(path: ast.PathPattern) -> set[str]:
    names = {node.variable for node in path.nodes if node.variable}
    names.update(rel.variable for rel in path.rels if rel.variable)
    return names


def _span_at(pos: int, token: str | None) -> Span | None:
    if pos < 0:
        return None
    return Span(pos, pos + len(token or " "))


def _closest(name: str, candidates) -> str | None:
    matches = difflib.get_close_matches(name, list(candidates), n=1, cutoff=0.6)
    return matches[0] if matches else None


def analyze_query(
    query: str, schema: QuerySchema | None = None
) -> list[Diagnostic]:
    """Convenience one-shot: parse and analyze ``query``."""
    return CypherAnalyzer(schema).analyze(query)


__all__ = [
    "BASE_PROPERTY_KEYS",
    "CypherAnalyzer",
    "QuerySchema",
    "analyze_query",
    "graph_schema",
    "ontology_schema",
    "schema_for",
]
