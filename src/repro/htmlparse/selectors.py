"""CSS selector subset.

Supports the selector grammar the source-dependent parsers need:

* type selectors (``div``), universal (``*``)
* id (``#report``), class (``.ioc-list``), attribute
  (``[href]``, ``[data-kind=hash]``, ``[href^=/page]``,
  ``[href$=.html]``, ``[href*=report]``)
* compound selectors (``table.ioc[data-kind=ip]``)
* descendant (whitespace) and child (``>``) combinators
* selector groups separated by commas

Matching is performed top-down in one DOM pass per selector group, so
queries stay linear in document size.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.htmlparse.dom import Element


@dataclass(frozen=True)
class AttrCheck:
    """One attribute condition of a simple selector."""

    name: str
    op: str  # '', '=', '^=', '$=', '*='
    value: str

    def matches(self, element: Element) -> bool:
        if self.name == "class" and self.op == "~":
            return self.value in element.classes
        if self.name not in element.attrs:
            return False
        actual = element.attrs[self.name]
        if self.op == "":
            return True
        if self.op == "=":
            return actual == self.value
        if self.op == "^=":
            return bool(self.value) and actual.startswith(self.value)
        if self.op == "$=":
            return bool(self.value) and actual.endswith(self.value)
        if self.op == "*=":
            return bool(self.value) and self.value in actual
        raise ValueError(f"unknown attribute operator {self.op!r}")


@dataclass(frozen=True)
class SimpleSelector:
    """A compound simple selector: tag + id/class/attribute checks."""

    tag: str = "*"
    checks: tuple[AttrCheck, ...] = field(default=())

    def matches(self, element: Element) -> bool:
        if self.tag != "*" and element.tag != self.tag:
            return False
        return all(check.matches(element) for check in self.checks)


@dataclass(frozen=True)
class CompiledSelector:
    """A selector chain: simple selectors joined by combinators.

    ``combinators[i]`` joins ``parts[i]`` to ``parts[i+1]`` and is
    either ``" "`` (descendant) or ``">"`` (child).
    """

    parts: tuple[SimpleSelector, ...]
    combinators: tuple[str, ...]


class SelectorSyntaxError(ValueError):
    """Raised for selectors outside the supported grammar."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s*>\s*|\s+)
  | (?P<id>\#[\w-]+)
  | (?P<class>\.[\w-]+)
  | (?P<attr>\[\s*[\w-]+\s*(?:[\^\$\*]?=\s*(?:"[^"]*"|'[^']*'|[^\]\s]*))?\s*\])
  | (?P<tag>\*|[a-zA-Z][\w-]*)
    """,
    re.VERBOSE,
)

_ATTR_BODY_RE = re.compile(
    r"""\[\s*(?P<name>[\w-]+)\s*(?:(?P<op>[\^\$\*]?=)\s*(?P<value>"[^"]*"|'[^']*'|[^\]\s]*))?\s*\]"""
)


def _parse_attr(token: str) -> AttrCheck:
    match = _ATTR_BODY_RE.fullmatch(token)
    if not match:
        raise SelectorSyntaxError(f"bad attribute selector: {token!r}")
    name = match.group("name").lower()
    op = match.group("op") or ""
    value = match.group("value") or ""
    if value[:1] in "\"'" and value[:1] == value[-1:]:
        value = value[1:-1]
    return AttrCheck(name=name, op=op, value=value)


def compile_selector(selector: str) -> list[CompiledSelector]:
    """Compile a selector group string into chains (one per comma part)."""
    chains: list[CompiledSelector] = []
    for part in selector.split(","):
        part = part.strip()
        if not part:
            raise SelectorSyntaxError(f"empty selector in group: {selector!r}")
        chains.append(_compile_chain(part))
    return chains


def _compile_chain(selector: str) -> CompiledSelector:
    parts: list[SimpleSelector] = []
    combinators: list[str] = []
    tag = "*"
    checks: list[AttrCheck] = []
    have_current = False
    pos = 0

    def flush() -> None:
        nonlocal tag, checks, have_current
        if not have_current:
            raise SelectorSyntaxError(f"dangling combinator in {selector!r}")
        parts.append(SimpleSelector(tag=tag, checks=tuple(checks)))
        tag = "*"
        checks = []
        have_current = False

    while pos < len(selector):
        match = _TOKEN_RE.match(selector, pos)
        if not match or match.end() == pos:
            raise SelectorSyntaxError(
                f"cannot parse selector {selector!r} at offset {pos}"
            )
        pos = match.end()
        if match.group("ws") is not None:
            flush()
            combinators.append(">" if ">" in match.group("ws") else " ")
        elif match.group("id") is not None:
            checks.append(AttrCheck("id", "=", match.group("id")[1:]))
            have_current = True
        elif match.group("class") is not None:
            checks.append(AttrCheck("class", "~", match.group("class")[1:]))
            have_current = True
        elif match.group("attr") is not None:
            checks.append(_parse_attr(match.group("attr")))
            have_current = True
        else:
            tag = match.group("tag").lower()
            have_current = True
    flush()
    return CompiledSelector(parts=tuple(parts), combinators=tuple(combinators))


def select(root: Element, selector: str) -> list[Element]:
    """All descendant elements of ``root`` matching the selector group.

    Results are in document order without duplicates, matching the
    behaviour of ``querySelectorAll``.
    """
    chains = compile_selector(selector)
    matched: list[Element] = []
    seen: set[int] = set()
    for element, states in _walk(root, chains):
        if states and id(element) not in seen:
            seen.add(id(element))
            matched.append(element)
    return matched


def select_one(root: Element, selector: str) -> Element | None:
    """First match of :func:`select`, or ``None``."""
    results = select(root, selector)
    return results[0] if results else None


def matches(element: Element, selector: str) -> bool:
    """Whether ``element`` itself matches a (single compound) selector."""
    chains = compile_selector(selector)
    for chain in chains:
        if len(chain.parts) == 1 and chain.parts[0].matches(element):
            return True
    return False


def _walk(root: Element, chains: list[CompiledSelector]):
    """Yield ``(element, fully_matched_chain_indexes)`` pairs.

    Implements descendant/child matching with a per-path state set:
    each state is ``(chain_idx, part_idx, via_child)`` meaning the chain
    still needs ``parts[part_idx]`` and, when ``via_child`` is true, it
    must match at the immediate child level.
    """
    initial = [(ci, 0, False) for ci in range(len(chains))]

    def visit(element: Element, states: list[tuple[int, int, bool]]):
        full: list[int] = []
        propagate: list[tuple[int, int, bool]] = []
        for ci, pi, _via_child in states:
            chain = chains[ci]
            if chain.parts[pi].matches(element):
                if pi + 1 == len(chain.parts):
                    full.append(ci)
                else:
                    propagate.append((ci, pi + 1, chain.combinators[pi] == ">"))
        yield element, full
        child_states = [
            state for state in states if not state[2]
        ]  # descendant states stay live at any depth
        child_states.extend(propagate)
        for child in element.iter_children():
            yield from visit(child, child_states)

    # Like ``querySelectorAll``, matching starts at the root's children:
    # the root element itself is never part of the result set.
    for child in root.iter_children():
        yield from visit(child, initial)


__all__ = [
    "AttrCheck",
    "CompiledSelector",
    "SelectorSyntaxError",
    "SimpleSelector",
    "compile_selector",
    "matches",
    "select",
    "select_one",
]
