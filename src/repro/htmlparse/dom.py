"""DOM tree construction over the token stream.

Builds an element tree with browser-like auto-closing for the common
misnesting patterns OSCTI pages contain (unclosed ``<p>``, ``<li>``,
table rows/cells), exposes traversal helpers, and extracts readable
text with block/inline awareness.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.htmlparse.tokenizer import (
    VOID_ELEMENTS,
    Token,
    TokenKind,
    tokenize,
)

#: Opening one of these closes any open element of the mapped set first.
_AUTO_CLOSE: dict[str, frozenset[str]] = {
    "p": frozenset({"p"}),
    "li": frozenset({"li"}),
    "dt": frozenset({"dt", "dd"}),
    "dd": frozenset({"dt", "dd"}),
    "tr": frozenset({"tr", "td", "th"}),
    "td": frozenset({"td", "th"}),
    "th": frozenset({"td", "th"}),
    "option": frozenset({"option"}),
    "thead": frozenset({"tbody", "tfoot"}),
    "tbody": frozenset({"thead", "tbody"}),
}

#: Block-level elements: text extraction inserts newlines around them.
_BLOCK_ELEMENTS = frozenset(
    {
        "address",
        "article",
        "aside",
        "blockquote",
        "br",
        "dd",
        "div",
        "dl",
        "dt",
        "fieldset",
        "figure",
        "footer",
        "form",
        "h1",
        "h2",
        "h3",
        "h4",
        "h5",
        "h6",
        "header",
        "hr",
        "li",
        "main",
        "nav",
        "ol",
        "p",
        "pre",
        "section",
        "table",
        "td",
        "th",
        "tr",
        "ul",
    }
)

_WS_RE = re.compile(r"[ \t\r\f\v]+")


@dataclass
class TextNode:
    """A run of character data."""

    text: str
    parent: "Element | None" = None


@dataclass
class Element:
    """An element node with attributes and ordered children."""

    tag: str
    attrs: dict[str, str] = field(default_factory=dict)
    children: list["Element | TextNode"] = field(default_factory=list)
    parent: "Element | None" = None

    # -- construction -------------------------------------------------

    def append(self, node: "Element | TextNode") -> None:
        node.parent = self
        self.children.append(node)

    # -- attribute access ---------------------------------------------

    def get(self, name: str, default: str = "") -> str:
        """Attribute value (case-insensitive name), or ``default``."""
        return self.attrs.get(name.lower(), default)

    @property
    def id(self) -> str:
        return self.get("id")

    @property
    def classes(self) -> frozenset[str]:
        return frozenset(self.get("class").split())

    # -- traversal ----------------------------------------------------

    def iter(self) -> Iterator["Element"]:
        """Depth-first pre-order iteration over element descendants,
        including this element itself."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def iter_children(self) -> Iterator["Element"]:
        """Direct element children only."""
        for child in self.children:
            if isinstance(child, Element):
                yield child

    def find_all(self, tag: str) -> list["Element"]:
        """All descendant elements with the given tag name."""
        tag = tag.lower()
        return [el for el in self.iter() if el.tag == tag]

    def find(self, tag: str) -> "Element | None":
        """First descendant element with the given tag name, if any."""
        tag = tag.lower()
        for el in self.iter():
            if el.tag == tag:
                return el
        return None

    def select(self, selector: str) -> list["Element"]:
        """CSS-selector query over this element's descendants."""
        from repro.htmlparse.selectors import select

        return select(self, selector)

    def select_one(self, selector: str) -> "Element | None":
        matches = self.select(selector)
        return matches[0] if matches else None

    # -- text extraction ----------------------------------------------

    def text(self, separator: str = "\n") -> str:
        """Readable text content.

        Whitespace is collapsed within inline runs; block boundaries
        become ``separator``.  ``<script>``/``<style>`` content is
        skipped entirely.
        """
        lines: list[str] = []
        current: list[str] = []

        def flush() -> None:
            joined = _WS_RE.sub(" ", "".join(current)).strip()
            if joined:
                lines.append(joined)
            current.clear()

        def walk(node: "Element | TextNode") -> None:
            if isinstance(node, TextNode):
                current.append(node.text)
                return
            if node.tag in ("script", "style"):
                return
            block = node.tag in _BLOCK_ELEMENTS
            if block:
                flush()
            for child in node.children:
                walk(child)
            if block:
                flush()

        walk(self)
        flush()
        return separator.join(lines)

    def inner_text(self) -> str:
        """Single-line text with all whitespace (incl. newlines) collapsed."""
        return re.sub(r"\s+", " ", self.text(separator=" ")).strip()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ident = f"#{self.id}" if self.id else ""
        return f"<Element {self.tag}{ident} children={len(self.children)}>"


class Document:
    """Parsed HTML document.

    Wraps the root element and exposes the common lookups the
    source-dependent parsers need.
    """

    def __init__(self, root: Element):
        self.root = root

    @property
    def body(self) -> Element:
        return self.root.find("body") or self.root

    @property
    def head(self) -> Element | None:
        return self.root.find("head")

    @property
    def title(self) -> str:
        title = self.root.find("title")
        return title.inner_text() if title is not None else ""

    def find(self, tag: str) -> Element | None:
        return self.root.find(tag)

    def find_all(self, tag: str) -> list[Element]:
        return self.root.find_all(tag)

    def text(self) -> str:
        return self.body.text()

    def select(self, selector: str) -> list[Element]:
        """CSS-selector query (see :mod:`repro.htmlparse.selectors`)."""
        from repro.htmlparse.selectors import select

        return select(self.root, selector)

    def select_one(self, selector: str) -> Element | None:
        matches = self.select(selector)
        return matches[0] if matches else None


def parse(markup: str) -> Document:
    """Parse HTML markup into a :class:`Document`."""
    return Document(build_tree(tokenize(markup)))


def build_tree(tokens: list[Token]) -> Element:
    """Assemble the token stream into an element tree.

    Mis-nested end tags close intervening elements when the named
    ancestor is open, and are dropped otherwise -- the behaviour that
    keeps real-world sloppy markup parseable.
    """
    root = Element("#document")
    stack: list[Element] = [root]

    for token in tokens:
        if token.kind is TokenKind.TEXT:
            if token.data:
                stack[-1].append(TextNode(token.data))
        elif token.kind is TokenKind.START_TAG:
            closers = _AUTO_CLOSE.get(token.data)
            if closers:
                while len(stack) > 1 and stack[-1].tag in closers:
                    stack.pop()
            element = Element(token.data, dict(token.attrs))
            stack[-1].append(element)
            if token.data not in VOID_ELEMENTS and not token.self_closing:
                stack.append(element)
        elif token.kind is TokenKind.END_TAG:
            if any(el.tag == token.data for el in stack[1:]):
                while len(stack) > 1:
                    closed = stack.pop()
                    if closed.tag == token.data:
                        break
        # Comments and doctypes are dropped from the tree.

    return root


__all__ = ["Document", "Element", "TextNode", "build_tree", "parse"]
