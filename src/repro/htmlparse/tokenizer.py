"""HTML tokenizer.

A pragmatic HTML5-ish tokenizer: it produces a flat stream of
:class:`Token` objects (start tags with attributes, end tags, text,
comments, doctype) from markup.  It handles the quirks that real OSCTI
pages exhibit -- unquoted attribute values, boolean attributes, raw-text
elements (``<script>``/``<style>``), and character references -- without
attempting full spec-compliant error recovery.
"""

from __future__ import annotations

import enum
import html
import re
from dataclasses import dataclass, field

#: Elements whose content is raw text up to the matching close tag.
RAWTEXT_ELEMENTS = frozenset({"script", "style"})

#: Void elements never take an end tag.
VOID_ELEMENTS = frozenset(
    {
        "area",
        "base",
        "br",
        "col",
        "embed",
        "hr",
        "img",
        "input",
        "link",
        "meta",
        "param",
        "source",
        "track",
        "wbr",
    }
)


class TokenKind(enum.Enum):
    START_TAG = "start"
    END_TAG = "end"
    TEXT = "text"
    COMMENT = "comment"
    DOCTYPE = "doctype"


@dataclass
class Token:
    """One lexical token of the HTML input."""

    kind: TokenKind
    data: str  # tag name for tags, text content otherwise
    attrs: dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


_TAG_NAME_RE = re.compile(r"[a-zA-Z][a-zA-Z0-9:-]*")
_ATTR_RE = re.compile(
    r"""\s*([^\s=/>"']+)(?:\s*=\s*("([^"]*)"|'([^']*)'|[^\s>]*))?""",
)


def _parse_attrs(raw: str) -> tuple[dict[str, str], bool]:
    """Parse the attribute region of a start tag.

    Returns the attribute dict and whether the tag is self-closing.
    Later duplicates of an attribute are ignored, matching browsers.
    """
    self_closing = raw.rstrip().endswith("/")
    if self_closing:
        raw = raw.rstrip()[:-1]
    attrs: dict[str, str] = {}
    for match in _ATTR_RE.finditer(raw):
        name = match.group(1).lower()
        if not name or name == "/":
            continue
        if match.group(2) is None:
            value = ""
        elif match.group(3) is not None:
            value = match.group(3)
        elif match.group(4) is not None:
            value = match.group(4)
        else:
            value = match.group(2)
        if name not in attrs:
            attrs[name] = html.unescape(value)
    return attrs, self_closing


def tokenize(markup: str) -> list[Token]:
    """Tokenize HTML markup into a flat token stream.

    Text inside ``<script>``/``<style>`` is emitted verbatim as a single
    TEXT token (no entity decoding), as per the raw-text tokenizer
    states of the HTML spec.
    """
    tokens: list[Token] = []
    pos = 0
    length = len(markup)
    rawtext_until: str | None = None

    while pos < length:
        if rawtext_until is not None:
            close = markup.lower().find(f"</{rawtext_until}", pos)
            if close == -1:
                tokens.append(Token(TokenKind.TEXT, markup[pos:]))
                pos = length
                rawtext_until = None
                continue
            if close > pos:
                tokens.append(Token(TokenKind.TEXT, markup[pos:close]))
            end = markup.find(">", close)
            tokens.append(Token(TokenKind.END_TAG, rawtext_until))
            pos = length if end == -1 else end + 1
            rawtext_until = None
            continue

        lt = markup.find("<", pos)
        if lt == -1:
            tokens.append(Token(TokenKind.TEXT, html.unescape(markup[pos:])))
            break
        if lt > pos:
            tokens.append(Token(TokenKind.TEXT, html.unescape(markup[pos:lt])))
        pos = lt

        if markup.startswith("<!--", pos):
            end = markup.find("-->", pos + 4)
            if end == -1:
                tokens.append(Token(TokenKind.COMMENT, markup[pos + 4 :]))
                break
            tokens.append(Token(TokenKind.COMMENT, markup[pos + 4 : end]))
            pos = end + 3
            continue
        if markup.startswith("<!", pos):
            end = markup.find(">", pos)
            if end == -1:
                break
            tokens.append(Token(TokenKind.DOCTYPE, markup[pos + 2 : end].strip()))
            pos = end + 1
            continue
        if markup.startswith("</", pos):
            end = markup.find(">", pos)
            if end == -1:
                break
            name_match = _TAG_NAME_RE.match(markup, pos + 2)
            if name_match:
                tokens.append(Token(TokenKind.END_TAG, name_match.group(0).lower()))
            pos = end + 1
            continue

        name_match = _TAG_NAME_RE.match(markup, pos + 1)
        if not name_match:
            # A bare '<' that does not open a tag is character data.
            tokens.append(Token(TokenKind.TEXT, "<"))
            pos += 1
            continue
        name = name_match.group(0).lower()
        attr_start = name_match.end()
        end = _find_tag_end(markup, attr_start)
        if end == -1:
            break
        attrs, self_closing = _parse_attrs(markup[attr_start:end])
        tokens.append(Token(TokenKind.START_TAG, name, attrs, self_closing))
        pos = end + 1
        if name in RAWTEXT_ELEMENTS and not self_closing:
            rawtext_until = name

    return tokens


def _find_tag_end(markup: str, start: int) -> int:
    """Find the closing ``>`` of a tag, skipping quoted attribute values."""
    pos = start
    length = len(markup)
    quote: str | None = None
    while pos < length:
        char = markup[pos]
        if quote is not None:
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
        elif char == ">":
            return pos
        pos += 1
    return -1


__all__ = ["RAWTEXT_ELEMENTS", "Token", "TokenKind", "VOID_ELEMENTS", "tokenize"]
