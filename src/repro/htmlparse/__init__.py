"""From-scratch HTML parsing substrate.

BeautifulSoup/lxml are not available offline, so the source-dependent
parsers run on this package: an HTML tokenizer
(:mod:`repro.htmlparse.tokenizer`), a forgiving DOM builder
(:mod:`repro.htmlparse.dom`) and a CSS-selector subset
(:mod:`repro.htmlparse.selectors`).

>>> from repro.htmlparse import parse
>>> doc = parse('<ul><li class="ioc">10.0.0.1<li class="ioc">evil.com</ul>')
>>> [li.inner_text() for li in doc.select("li.ioc")]
['10.0.0.1', 'evil.com']
"""

from repro.htmlparse.dom import Document, Element, TextNode, build_tree, parse
from repro.htmlparse.selectors import (
    SelectorSyntaxError,
    compile_selector,
    matches,
    select,
    select_one,
)
from repro.htmlparse.tokenizer import Token, TokenKind, tokenize

__all__ = [
    "Document",
    "Element",
    "SelectorSyntaxError",
    "TextNode",
    "Token",
    "TokenKind",
    "build_tree",
    "compile_selector",
    "matches",
    "parse",
    "select",
    "select_one",
    "tokenize",
]
