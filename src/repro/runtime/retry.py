"""Shared retry/backoff helpers.

The fetcher and the scheduler both reboot failed work with exponential
backoff; these small value objects keep the arithmetic (and its tests)
in one place, and route every delay through the injected clock so
retries cost nothing under virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.runtime.clock import Clock


@dataclass(frozen=True)
class Backoff:
    """Exponential backoff schedule: ``base * factor ** attempt``."""

    base: float = 0.01
    factor: float = 2.0
    max_delay: float | None = None

    def delay(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (0-based: first retry = base)."""
        value = self.base * (self.factor ** attempt)
        if self.max_delay is not None:
            value = min(value, self.max_delay)
        return value


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, and how long to wait in between."""

    max_retries: int = 3
    backoff: Backoff = field(default_factory=Backoff)

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def attempts(self, clock: Clock) -> Iterator[int]:
        """Yield attempt indices ``0..max_retries``, sleeping the
        backoff on the clock before every retry (never before the
        first attempt)."""
        for attempt in range(self.max_retries + 1):
            if attempt:
                clock.sleep(self.backoff.delay(attempt - 1))
            yield attempt


__all__ = ["Backoff", "RetryPolicy"]
