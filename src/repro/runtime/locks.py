"""Named locks and the runtime lock-order witness.

Every lock in the system is created through :func:`named_lock` with a
stable dotted name (``"storage.engine"``, ``"crawl.frontier"``, ...).
The names serve two masters:

* The static concurrency analyzer (:mod:`repro.analysis.concurrency`)
  reads the string literal at each ``named_lock("...")`` call site and
  builds a project-wide lock-acquisition-order graph from nested
  ``with`` blocks across call-graph edges.
* The runtime :class:`LockOrderWitness`, enabled under pytest, wraps
  each lock in a :class:`WitnessLock` that records the *actual*
  acquisition orders per thread.  The test suite asserts the observed
  edges are a subgraph of the static hierarchy, so the static model is
  validated dynamically on every test run.

In production the witness is disabled and :func:`named_lock` returns a
plain :class:`threading.Lock` / :class:`threading.RLock` -- zero
overhead, no wrapper in the acquire path.
"""

from __future__ import annotations

import threading
from typing import Iterable


class LockOrderViolation(RuntimeError):
    """An acquisition order contradicting the static lock hierarchy."""


def canonical_lock_name(name: str) -> str:
    """Collapse per-instance numeric segments to the family wildcard.

    A sharded deployment creates one lock per partition with names like
    ``shard.3.stats``; the static model names the *family*
    ``shard.*.stats`` (the analyzer renders f-string interpolations as
    ``*``).  Canonicalizing at the witness boundary lets every instance
    share the family's hierarchy edges.  Names without purely-numeric
    segments (every pre-sharding lock) are returned unchanged.
    """
    parts = name.split(".")
    if not any(part.isdigit() for part in parts):
        return name
    return ".".join("*" if part.isdigit() else part for part in parts)


def _instance_index(name: str) -> int | None:
    """The first numeric dotted segment (the shard index), if any."""
    for part in name.split("."):
        if part.isdigit():
            return int(part)
    return None


class LockOrderWitness:
    """Records runtime lock-acquisition order edges per thread.

    An *edge* ``(a, b)`` means some thread acquired lock ``b`` while
    already holding lock ``a``.  Re-entrant acquisitions (the lock is
    already on the thread's held stack) record no edges, matching the
    static analysis, which treats re-entry as a no-op.  Edges between
    two holds of the *same* name (two instances of a per-object lock
    class) are skipped: the hierarchy orders lock *names*.

    Per-instance lock families (``shard.0.stats``, ``shard.1.stats``,
    ...) are recorded under their canonical family name
    (``shard.*.stats``, see :func:`canonical_lock_name`), and nesting
    two *different* instances of one family is allowed only in
    ascending instance order -- the standard total-order discipline
    that keeps same-family nesting deadlock-free.

    When a static hierarchy (transitive closure of allowed edges) is
    installed via :meth:`enable`, an acquisition that *reverses* a
    known edge raises :class:`LockOrderViolation` immediately -- the
    earliest possible deadlock diagnostic.  Unknown edges are recorded
    silently and judged at end of session by :meth:`violations`.
    """

    def __init__(self) -> None:
        self._enabled = False
        self._local = threading.local()
        self._mutex = threading.Lock()
        #: (held_name, acquired_name) -> {"count": int, "threads": set}
        self.edges: dict[tuple[str, str], dict[str, object]] = {}
        self._closure: frozenset[tuple[str, str]] | None = None

    # -- lifecycle -------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._enabled

    def enable(
        self, hierarchy: Iterable[tuple[str, str]] | None = None
    ) -> None:
        """Start witnessing; optionally install the static hierarchy.

        ``hierarchy`` is the *transitive closure* of allowed order
        edges; with it installed, reversed edges raise immediately.
        """
        self._enabled = True
        if hierarchy is not None:
            self._closure = frozenset(hierarchy)

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop recorded edges (held stacks are per-thread and drain)."""
        with self._mutex:
            self.edges = {}

    # -- recording (called from WitnessLock) -----------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def record_acquire(self, name: str) -> None:
        if not self._enabled:
            return
        stack = self._stack()
        if name in stack:  # re-entrant: no new ordering information
            stack.append(name)
            return
        canon = canonical_lock_name(name)
        thread_name = threading.current_thread().name
        for item in stack:
            # same family, different instance: ascending index only
            if item == name or canonical_lock_name(item) != canon:
                continue
            held_index = _instance_index(item)
            want_index = _instance_index(name)
            if (
                held_index is not None
                and want_index is not None
                and held_index > want_index
            ):
                raise LockOrderViolation(
                    f"thread {thread_name!r} acquired {name!r} while "
                    f"holding {item!r}; instances of the {canon!r} family "
                    f"must be acquired in ascending instance order"
                )
        held = []
        for item in stack:
            item_canon = canonical_lock_name(item)
            if item_canon != canon and item_canon not in held:
                held.append(item_canon)
        stack.append(name)
        if not held:
            return
        with self._mutex:
            for item in held:
                edge = self.edges.setdefault(
                    (item, canon), {"count": 0, "threads": set()}
                )
                edge["count"] = int(edge["count"]) + 1
                edge["threads"].add(thread_name)  # type: ignore[union-attr]
        if self._closure is not None:
            for item in held:
                if (canon, item) in self._closure and (
                    item,
                    canon,
                ) not in self._closure:
                    raise LockOrderViolation(
                        f"thread {thread_name!r} acquired {name!r} while "
                        f"holding {item!r}, reversing the static hierarchy "
                        f"edge {canon!r} -> {item!r}"
                    )

    def record_release(self, name: str) -> None:
        if not self._enabled:
            return
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    # -- reporting -------------------------------------------------------

    def observed_edges(self) -> list[tuple[str, str]]:
        """Distinct (held, acquired) pairs, sorted."""
        with self._mutex:
            return sorted(self.edges)

    def report(self) -> list[dict[str, object]]:
        """JSON-safe edge report (deterministically ordered)."""
        with self._mutex:
            return [
                {
                    "held": held,
                    "acquired": acquired,
                    "count": info["count"],
                    "threads": sorted(info["threads"]),  # type: ignore[arg-type]
                }
                for (held, acquired), info in sorted(self.edges.items())
            ]

    def violations(
        self,
        closure: Iterable[tuple[str, str]],
        known_names: Iterable[str] | None = None,
    ) -> list[tuple[str, str]]:
        """Observed edges absent from the static transitive closure.

        ``known_names`` restricts the check to locks the static model
        knows about, so witness unit tests with synthetic lock names
        do not trip the end-of-session validation.
        """
        allowed = set(closure)
        names = set(known_names) if known_names is not None else None
        bad = []
        for held, acquired in self.observed_edges():
            if names is not None and (
                held not in names or acquired not in names
            ):
                continue
            if (held, acquired) not in allowed:
                bad.append((held, acquired))
        return bad


class WitnessLock:
    """A named lock wrapper reporting acquisitions to a witness.

    Compatible with ``threading.Condition(lock)``: the stdlib
    condition delegates ``acquire``/``release`` and (when present)
    ``_is_owned`` to the lock it wraps, so condition waits release and
    re-acquire *through* this wrapper and the witness accounting stays
    correct across the wait.
    """

    __slots__ = ("name", "_lock", "_witness", "_owner", "_count")

    def __init__(
        self,
        name: str,
        witness: LockOrderWitness,
        *,
        reentrant: bool = False,
    ) -> None:
        self.name = name
        self._witness = witness
        self._lock: threading.RLock | threading.Lock = (
            threading.RLock() if reentrant else threading.Lock()
        )
        self._owner: int | None = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            me = threading.get_ident()
            if self._owner == me:
                self._count += 1
            else:
                self._owner = me
                self._count = 1
            self._witness.record_acquire(self.name)
        return got

    def release(self) -> None:
        if self._count <= 1:
            self._count = 0
            self._owner = None
        else:
            self._count -= 1
        self._witness.record_release(self.name)
        self._lock.release()

    def __enter__(self) -> "WitnessLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        return self._owner is not None

    def _is_owned(self) -> bool:
        """``threading.Condition`` protocol hook."""
        return self._owner == threading.get_ident()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self.locked() else "unlocked"
        return f"<WitnessLock {self.name!r} {state}>"


#: The process-wide witness pytest enables (see tests/conftest.py).
WITNESS = LockOrderWitness()


def named_lock(name: str, *, reentrant: bool = False):
    """A lock registered in the concurrency model under ``name``.

    ``name`` must be a string *literal* at the call site -- the static
    analyzer reads it to identify the lock.  With the witness disabled
    (production) this returns a plain stdlib lock; under pytest it
    returns a :class:`WitnessLock` reporting to :data:`WITNESS`.
    """
    if WITNESS.active:
        return WitnessLock(name, WITNESS, reentrant=reentrant)
    return threading.RLock() if reentrant else threading.Lock()


__all__ = [
    "LockOrderViolation",
    "LockOrderWitness",
    "WITNESS",
    "WitnessLock",
    "canonical_lock_name",
    "named_lock",
]
