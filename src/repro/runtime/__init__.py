"""Unified runtime clock: real and virtual time behind one interface.

Every timing-dependent layer of the system -- simulated network
latency, per-host politeness, retry backoff, scheduler intervals,
crawl/pipeline stopwatches -- reads time and sleeps through an
injected :class:`Clock` instead of the :mod:`time` module.  Two
implementations exist:

:class:`RealClock`
    Monotonic wall time and real ``time.sleep``; the deployment
    default (``python -m repro run``).

:class:`VirtualClock`
    A discrete-event timeline.  A thread calling ``sleep(d)`` parks on
    the timeline; virtual time jumps to the next pending deadline only
    when every registered worker thread is parked, so multi-threaded
    crawls replay the exact latency-overlap behaviour of a real run in
    milliseconds of wall time, deterministically.

The ``det/raw-sleep`` lint rule bans direct ``time.sleep`` /
``time.monotonic`` calls outside this package, so the substitution
cannot silently regress.
"""

from repro.runtime.clock import (
    REAL_CLOCK,
    Clock,
    RealClock,
    Stopwatch,
    VirtualClock,
    clock_from_name,
)
from repro.runtime.locks import (
    WITNESS,
    LockOrderViolation,
    LockOrderWitness,
    WitnessLock,
    named_lock,
)
from repro.runtime.retry import Backoff, RetryPolicy

__all__ = [
    "Backoff",
    "Clock",
    "LockOrderViolation",
    "LockOrderWitness",
    "REAL_CLOCK",
    "RealClock",
    "RetryPolicy",
    "Stopwatch",
    "VirtualClock",
    "WITNESS",
    "WitnessLock",
    "clock_from_name",
    "named_lock",
]
