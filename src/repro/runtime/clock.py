"""Real and virtual clocks plus the shared stopwatch.

This module is the single sanctioned home of raw ``time.sleep`` /
``time.monotonic`` calls (see the ``det/raw-sleep`` lint rule): every
other layer receives a :class:`Clock` and is thereby oblivious to
whether seconds are real or simulated.

The virtual clock is a discrete-event timeline in the SimPy/ns style:
nothing ever waits in real time; instead, time jumps straight to the
next deadline once no participating thread can make progress at the
current instant.  That makes latency-shaped benchmarks run in
milliseconds and timing-dependent behaviour (backoff, politeness
intervals, scheduler reboots) exactly assertable.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """What every timing-dependent component programs against."""

    def now(self) -> float:
        """Current time in seconds (monotonic; epoch is arbitrary)."""

    def sleep(self, seconds: float) -> None:
        """Suspend the calling thread for ``seconds``."""

    def wait_for(self, event: threading.Event, timeout: float) -> bool:
        """Wait up to ``timeout`` for ``event``; True when it is set."""

    def worker(self):
        """Context manager marking the calling thread as a coordinated
        worker for the duration (virtual time cannot pass while any
        registered worker is runnable)."""

    def condition(self, lock: threading.Lock):
        """A condition variable on ``lock`` that keeps the clock
        informed: a worker waiting on it does not hold up virtual time,
        and a notified waiter counts as runnable from the moment of the
        notify (so time cannot skip ahead before it resumes)."""


class RealClock:
    """Monotonic wall time; coordination hooks are plain primitives."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def wait_for(self, event: threading.Event, timeout: float) -> bool:
        return event.wait(timeout)

    @contextmanager
    def worker(self) -> Iterator[None]:
        yield

    def condition(self, lock: threading.Lock) -> threading.Condition:
        return threading.Condition(lock)


#: The process-wide real clock (stateless, so one instance suffices).
REAL_CLOCK = RealClock()


class _Sleeper:
    """One pending wake deadline on the virtual timeline."""

    __slots__ = ("deadline", "parked")

    def __init__(self, deadline: float, parked: bool):
        self.deadline = deadline
        self.parked = parked


class VirtualClock:
    """Discrete-event clock coordinating sleeping worker threads.

    Threads that participate in a multi-threaded section register via
    the ``worker()`` context manager.  ``sleep(d)`` parks the calling
    thread on the timeline; when *every* registered worker is parked
    (sleeping, or waiting on a :meth:`condition`) and no notified
    waiter is still on its way back, virtual time jumps to the earliest
    pending deadline.  The advancing thread unparks every sleeper whose
    deadline was reached *at the moment of the jump*, so a due-but-not-
    yet-resumed thread counts as runnable and time can never skip past
    work pending at the current instant.  A thread that never
    registered does not gate advancement -- in particular, a single
    unregistered thread sleeps with zero real delay.

    Registration itself is not synchronised: callers running several
    workers must ensure all of them have *entered* ``worker()`` before
    any starts sleeping (a ``threading.Barrier`` at the top of each
    worker body), or early workers could advance time while late ones
    are still starting up.

    Within one virtual instant all runnable work completes before time
    moves, which is what makes multi-threaded crawls deterministic:
    the set of (event, virtual-time) pairs depends only on the
    simulated latencies, never on OS scheduling.
    """

    def __init__(self, start: float = 0.0):
        self._cond = threading.Condition()
        self._now = float(start)
        self._workers = 0  # registered worker threads
        self._parked = 0  # registered workers sleeping or condition-waiting
        self._pending_wakeups = 0  # notified waiters not yet resumed
        self._timeline: list[tuple[float, int, _Sleeper]] = []
        self._seq = itertools.count()
        self._local = threading.local()
        #: total ``sleep()`` calls that actually parked (introspection)
        self.sleeps = 0

    # -- Clock protocol ---------------------------------------------------

    def now(self) -> float:
        with self._cond:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        with self._cond:
            self.sleeps += 1
            entry = _Sleeper(self._now + seconds, parked=self._is_worker())
            if entry.parked:
                self._parked += 1
            heapq.heappush(
                self._timeline, (entry.deadline, next(self._seq), entry)
            )
            self._advance_if_quiescent()
            while self._now < entry.deadline:
                self._cond.wait()
            if entry.parked:  # the advancer may have unparked us already
                entry.parked = False
                self._parked -= 1

    def wait_for(self, event: threading.Event, timeout: float) -> bool:
        if event.is_set():
            return True
        self.sleep(timeout)
        return event.is_set()

    @contextmanager
    def worker(self) -> Iterator[None]:
        with self._cond:
            self._workers += 1
            self._local.depth = getattr(self._local, "depth", 0) + 1
        try:
            yield
        finally:
            with self._cond:
                self._workers -= 1
                self._local.depth -= 1
                self._advance_if_quiescent()

    def condition(self, lock: threading.Lock) -> "_VirtualCondition":
        return _VirtualCondition(self, lock)

    # -- timeline ---------------------------------------------------------

    def _is_worker(self) -> bool:
        return getattr(self._local, "depth", 0) > 0

    def _advance_if_quiescent(self) -> None:
        """Jump to the next deadline when no registered worker can run.

        Caller must hold ``self._cond``.  Advancement is attempted at
        every *parking* event (sleep entry, condition-wait entry,
        worker unregister) and when the last pending wakeup is
        consumed; it is refused while any registered worker is runnable
        or any notified waiter has yet to resume.  Every sleeper due at
        the new instant is unparked here, by the advancing thread, so
        the accounting reflects runnability the moment time moves.
        """
        if self._pending_wakeups > 0:
            return
        if self._parked < self._workers:
            return
        if not self._timeline:
            return
        self._now = self._timeline[0][0]
        while self._timeline and self._timeline[0][0] <= self._now:
            _deadline, _seq, entry = heapq.heappop(self._timeline)
            if entry.parked:
                entry.parked = False
                self._parked -= 1
        self._cond.notify_all()

    # internal hooks for _VirtualCondition --------------------------------

    def _note_wait_enter(self, registered: bool) -> None:
        with self._cond:
            if registered:
                self._parked += 1
            self._advance_if_quiescent()

    def _note_wait_exit(self, registered: bool, consumed_wakeup: bool) -> None:
        with self._cond:
            if registered:
                self._parked -= 1
            if consumed_wakeup and self._pending_wakeups > 0:
                self._pending_wakeups -= 1
                if self._pending_wakeups == 0:
                    self._advance_if_quiescent()

    def _note_notify(self, count: int) -> None:
        with self._cond:
            self._pending_wakeups += count


class _VirtualCondition:
    """Condition variable that reports waiting/waking to a VirtualClock.

    Used exactly like ``threading.Condition(lock)`` (the caller holds
    ``lock`` around ``wait``/``notify``).  ``wait`` marks a registered
    worker as parked for the duration; ``notify`` records a pending
    wakeup so virtual time cannot advance until the woken thread has
    actually resumed and had its turn at the current instant.
    """

    def __init__(self, clock: VirtualClock, lock: threading.Lock):
        self._clock = clock
        self._cond = threading.Condition(lock)
        self._waiters = 0  # protected by `lock`
        self._pending = 0  # notified-but-not-resumed waiters; under `lock`

    def wait(self, timeout: float | None = None) -> bool:
        registered = self._clock._is_worker()
        self._waiters += 1
        self._clock._note_wait_enter(registered)
        try:
            return self._cond.wait(timeout)
        finally:
            self._waiters -= 1
            consumed = self._pending > 0
            if consumed:
                self._pending -= 1
            self._clock._note_wait_exit(registered, consumed)

    def notify(self, n: int = 1) -> None:
        grant = min(n, self._waiters - self._pending)
        if grant > 0:
            self._pending += grant
            self._clock._note_notify(grant)
        self._cond.notify(n)

    def notify_all(self) -> None:
        self.notify(self._waiters)


class Stopwatch:
    """Elapsed seconds against an injected clock.

    >>> clock = VirtualClock()
    >>> watch = Stopwatch(clock)
    >>> clock.sleep(2.5)
    >>> watch.elapsed
    2.5
    """

    def __init__(self, clock: Clock):
        self.clock = clock
        self.started_at = clock.now()

    def restart(self) -> None:
        self.started_at = self.clock.now()

    @property
    def elapsed(self) -> float:
        return self.clock.now() - self.started_at


def clock_from_name(name: str) -> Clock:
    """Resolve a configuration string to a clock instance.

    ``"real"`` returns the shared :data:`REAL_CLOCK`; ``"virtual"``
    returns a fresh :class:`VirtualClock` (each deployment gets its own
    timeline).
    """
    if name == "real":
        return REAL_CLOCK
    if name == "virtual":
        return VirtualClock()
    raise ValueError(f"unknown clock {name!r} (expected 'real' or 'virtual')")


__all__ = [
    "Clock",
    "REAL_CLOCK",
    "RealClock",
    "Stopwatch",
    "VirtualClock",
    "clock_from_name",
]
