"""Text analysis for the search index.

Lowercases, tokenizes with IOC protection (so ``update-relay3.xyz``
is findable as one term), drops stopwords, and adds lemma variants so
``encrypts`` matches a query for ``encrypt``.  IOC terms additionally
index their internal fragments (the domain inside a URL, the file name
inside a path) because analysts search for those.
"""

from __future__ import annotations

import re

from repro.nlp.lemma import lemmatize
from repro.nlp.tokenize import tokenize_words

STOPWORDS = frozenset(
    "a an the and or of to in on for with by from at is are was were be been "
    "this that these those it its as into their his her our your over under "
    "has have had do does did not no can could will would s t".split()
)

_SPLIT_RE = re.compile(r"[\\/@.:_\-]+")


def analyze(text: str) -> list[str]:
    """Terms for indexing/searching one text."""
    terms: list[str] = []
    for token in tokenize_words(text):
        lower = token.text.lower()
        if token.is_ioc:
            terms.append(lower)
            terms.extend(
                frag for frag in _SPLIT_RE.split(lower) if len(frag) > 1
            )
            continue
        if not any(ch.isalnum() for ch in lower):
            continue
        if lower in STOPWORDS:
            continue
        terms.append(lower)
        lemma = lemmatize(lower)
        if lemma != lower:
            terms.append(lemma)
    return terms


def analyze_query(text: str) -> list[str]:
    """Terms for a user query (same pipeline, kept separate for tuning)."""
    return analyze(text)


__all__ = ["STOPWORDS", "analyze", "analyze_query"]
