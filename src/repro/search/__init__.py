"""Full-text search substrate (Elasticsearch substitute).

An IOC-aware analyzer plus a positional inverted index with BM25
ranking, boolean modes, filters, phrase queries and JSON persistence.
Backs the UI's multilingual keyword-search path (paper section 2.6).

>>> from repro.search import SearchIndex
>>> index = SearchIndex()
>>> index.add("r1", {"title": "WannaCry analysis", "body": "it encrypts files"})
>>> index.search("wannacry")[0].doc_id
'r1'
"""

from repro.search.analyzer import STOPWORDS, analyze, analyze_query
from repro.search.index import SearchHit, SearchIndex

__all__ = ["STOPWORDS", "SearchHit", "SearchIndex", "analyze", "analyze_query"]
