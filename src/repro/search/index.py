"""Inverted index with BM25 ranking.

The Elasticsearch substitute behind the UI's keyword search (paper
section 2.6): documents with typed fields, an inverted index with
positions (for phrase queries), Okapi BM25 scoring with per-field
boosts, boolean AND/OR semantics and filters.  Persistence is a single
JSON file -- adequate for the corpus sizes a single host collects.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.runtime import named_lock
from repro.search.analyzer import analyze, analyze_query
from repro.storage.atomic import atomic_write_text


@dataclass
class SearchHit:
    """One ranked result."""

    doc_id: str
    score: float
    fields: dict[str, str] = field(default_factory=dict)


@dataclass
class _Posting:
    doc_id: str
    field: str
    positions: list[int]


class SearchIndex:
    """BM25 inverted index over documents with string fields.

    Parameters
    ----------
    field_boosts:
        Score multipliers per field (title hits matter more than body
        hits).  Unlisted fields get boost 1.0.
    """

    def __init__(
        self,
        field_boosts: dict[str, float] | None = None,
        k1: float = 1.5,
        b: float = 0.75,
    ):
        self.field_boosts = dict(field_boosts or {"title": 2.5, "name": 3.0})
        self.k1 = k1
        self.b = b
        self._postings: dict[str, list[_Posting]] = {}
        self._documents: dict[str, dict[str, str]] = {}
        self._doc_lengths: dict[tuple[str, str], int] = {}  # (doc, field) -> terms
        self._field_totals: dict[str, int] = {}
        # Re-entrant: add() re-indexes an existing document by calling
        # remove() while already holding the lock.
        self._lock = named_lock("search.index", reentrant=True)

    # -- indexing --------------------------------------------------------

    def add(self, doc_id: str, fields: dict[str, str]) -> None:
        """Index (or re-index) one document."""
        with self._lock:
            if doc_id in self._documents:
                self.remove(doc_id)
            self._documents[doc_id] = dict(fields)
            for field_name, text in fields.items():
                terms = analyze(text)
                self._doc_lengths[(doc_id, field_name)] = len(terms)
                self._field_totals[field_name] = (
                    self._field_totals.get(field_name, 0) + len(terms)
                )
                by_term: dict[str, list[int]] = {}
                for position, term in enumerate(terms):
                    by_term.setdefault(term, []).append(position)
                for term, positions in by_term.items():
                    self._postings.setdefault(term, []).append(
                        _Posting(doc_id=doc_id, field=field_name, positions=positions)
                    )

    def remove(self, doc_id: str) -> bool:
        """Drop a document from the index; returns whether it existed."""
        with self._lock:
            fields = self._documents.pop(doc_id, None)
            if fields is None:
                return False
            for term in list(self._postings):
                remaining = [p for p in self._postings[term] if p.doc_id != doc_id]
                if remaining:
                    self._postings[term] = remaining
                else:
                    del self._postings[term]
            for field_name in fields:
                length = self._doc_lengths.pop((doc_id, field_name), 0)
                self._field_totals[field_name] = max(
                    0, self._field_totals.get(field_name, 0) - length
                )
            return True

    @property
    def doc_count(self) -> int:
        return len(self._documents)

    def document(self, doc_id: str) -> dict[str, str] | None:
        return self._documents.get(doc_id)

    # -- scoring -----------------------------------------------------------

    def _idf(self, term: str) -> float:
        n_docs = len(self._documents)
        containing = len({p.doc_id for p in self._postings.get(term, ())})
        return math.log(1 + (n_docs - containing + 0.5) / (containing + 0.5))

    def _avg_field_length(self, field_name: str) -> float:
        total = self._field_totals.get(field_name, 0)
        docs = sum(1 for (d, f) in self._doc_lengths if f == field_name)
        return total / docs if docs else 1.0

    def search(
        self,
        query: str,
        limit: int = 10,
        mode: str = "or",
        filters: dict[str, str] | None = None,
    ) -> list[SearchHit]:
        """BM25-ranked search.

        ``mode='and'`` requires every query term; ``filters`` restrict
        results to documents whose stored field equals a value exactly.
        """
        with self._lock:
            terms = analyze_query(query)
            if not terms:
                return []
            scores: dict[str, float] = {}
            matched_terms: dict[str, set[str]] = {}
            for term in set(terms):
                idf = self._idf(term)
                for posting in self._postings.get(term, ()):
                    frequency = len(posting.positions)
                    avg = self._avg_field_length(posting.field)
                    length = self._doc_lengths.get((posting.doc_id, posting.field), 0)
                    denom = frequency + self.k1 * (
                        1 - self.b + self.b * length / max(avg, 1e-9)
                    )
                    boost = self.field_boosts.get(posting.field, 1.0)
                    scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + (
                        idf * frequency * (self.k1 + 1) / denom * boost
                    )
                    matched_terms.setdefault(posting.doc_id, set()).add(term)

            unique_terms = set(terms)
            hits = []
            for doc_id, score in scores.items():
                if mode == "and" and matched_terms.get(doc_id) != unique_terms:
                    continue
                fields = self._documents[doc_id]
                if filters and any(
                    fields.get(k) != v for k, v in filters.items()
                ):
                    continue
                hits.append(SearchHit(doc_id=doc_id, score=score, fields=fields))
            hits.sort(key=lambda h: (-h.score, h.doc_id))
            return hits[:limit]

    def phrase_search(self, phrase: str, limit: int = 10) -> list[SearchHit]:
        """Documents containing the exact term sequence in one field."""
        with self._lock:
            terms = analyze_query(phrase)
            if not terms:
                return []
            # candidate docs containing all terms
            first = terms[0]
            candidates: dict[tuple[str, str], list[int]] = {
                (p.doc_id, p.field): p.positions
                for p in self._postings.get(first, ())
            }
            hits = []
            for (doc_id, field_name), start_positions in candidates.items():
                positions = set(start_positions)
                ok_positions = positions
                for offset, term in enumerate(terms[1:], start=1):
                    next_positions = {
                        pos
                        for p in self._postings.get(term, ())
                        if p.doc_id == doc_id and p.field == field_name
                        for pos in p.positions
                    }
                    ok_positions = {
                        pos for pos in ok_positions if pos + offset in next_positions
                    }
                    if not ok_positions:
                        break
                if ok_positions:
                    hits.append(
                        SearchHit(
                            doc_id=doc_id,
                            score=float(len(ok_positions)),
                            fields=self._documents[doc_id],
                        )
                    )
            hits.sort(key=lambda h: (-h.score, h.doc_id))
            # one hit per doc (a phrase may occur in several fields)
            seen: set[str] = set()
            unique = [h for h in hits if not (h.doc_id in seen or seen.add(h.doc_id))]
            return unique[:limit]

    # -- persistence -----------------------------------------------------------

    def clear(self) -> None:
        """Drop every document and posting."""
        with self._lock:
            self._postings.clear()
            self._documents.clear()
            self._doc_lengths.clear()
            self._field_totals.clear()

    def to_state(self) -> dict:
        """JSON-safe serialisation of documents + postings."""
        with self._lock:
            return {
                "documents": self._documents,
                "postings": {
                    term: [[p.doc_id, p.field, p.positions] for p in postings]
                    for term, postings in self._postings.items()
                },
                "doc_lengths": [
                    [doc, field_name, length]
                    for (doc, field_name), length in self._doc_lengths.items()
                ],
                "field_totals": self._field_totals,
                "field_boosts": self.field_boosts,
            }

    def restore_state(self, data: dict) -> None:
        """Replace this index's contents with a :meth:`to_state` payload."""
        with self._lock:
            self.field_boosts = dict(
                data.get("field_boosts") or self.field_boosts
            )
            self._documents = {k: dict(v) for k, v in data["documents"].items()}
            self._postings = {
                term: [_Posting(doc_id, field_name, list(positions))
                       for doc_id, field_name, positions in postings]
                for term, postings in data["postings"].items()
            }
            self._doc_lengths = {
                (doc, field_name): int(length)
                for doc, field_name, length in data["doc_lengths"]
            }
            self._field_totals = {
                k: int(v) for k, v in data["field_totals"].items()
            }

    @classmethod
    def from_state(cls, data: dict) -> "SearchIndex":
        index = cls(field_boosts=data.get("field_boosts"))
        index.restore_state(data)
        return index

    def save(self, path: str | Path) -> None:
        """Serialise documents + postings to one JSON file (durably)."""
        atomic_write_text(Path(path), json.dumps(self.to_state()))

    @classmethod
    def load(cls, path: str | Path) -> "SearchIndex":
        return cls.from_state(json.loads(Path(path).read_text()))


class SearchIndexParticipant:
    """The search index's storage-engine adapter.

    Journal ops are incremental document deltas -- ``add`` (doc id +
    full field map) and ``remove`` -- replacing the old
    save-everything-at-exit persistence, so every pipeline batch's index
    changes are durable the moment the batch commits.
    """

    name = "search"

    def __init__(self, index: SearchIndex | None = None):
        self.index = index if index is not None else SearchIndex()

    def apply(self, ops: list[dict]) -> None:
        for op in ops:
            kind = op["op"]
            if kind == "add":
                self.index.add(op["doc_id"], op["fields"])
            elif kind == "remove":
                self.index.remove(op["doc_id"])
            else:  # pragma: no cover - corrupted journal
                raise ValueError(f"unknown search operation {kind!r}")

    def snapshot_data(self) -> dict:
        return self.index.to_state()

    def load_snapshot(self, data: dict) -> None:
        self.index.restore_state(data)

    def reset(self) -> None:
        self.index.clear()


__all__ = ["SearchHit", "SearchIndex", "SearchIndexParticipant"]
