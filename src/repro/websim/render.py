"""HTML rendering of report content, per site family.

Five site families mirror the diversity of real OSCTI sources (paper
section 2.2: threat encyclopedias, blogs, security news, ...).  Each
family produces structurally different markup -- different tags, class
names, field layouts and IOC presentation -- so each source genuinely
needs its own source-dependent parser:

``encyclopedia``
    Structured: ``<dl>`` fact sheet, one ``<table>`` per IOC kind,
    ``<h2>`` sections.  Long reports split across two pages joined by a
    ``rel=next`` link (exercises the porter's multi-page grouping).
``blog``
    Narrative: ``<article>`` with paragraphs, IOCs in a trailing
    ``<ul class="...-indicators">`` list with ``data-kind`` items.
``news``
    Short-form: headline, byline, paragraphs; no structured IOC block
    (IOCs appear inline only).
``advisory``
    Vulnerability-centric: metadata ``<table>``, impact sections, IOC
    appendix as ``<pre>`` blocks per kind.
``feed``
    Aggregator: terse summary page per item with a key/value ``<ul>``.

Markup class names are prefixed by a per-site token so two sites of the
same family still differ superficially, like real CMS deployments.
"""

from __future__ import annotations

import html as html_escape
import re

from repro.websim.scenario import ReportContent

FAMILIES: tuple[str, ...] = ("encyclopedia", "blog", "news", "advisory", "feed")


def _esc(text: str) -> str:
    return html_escape.escape(text, quote=True)


def site_prefix(site_name: str) -> str:
    """Per-site CSS class token derived from the site name."""
    return re.sub(r"[^a-z0-9]+", "-", site_name.lower()).strip("-")


def _page_shell(title: str, body: str, site_name: str) -> str:
    return (
        "<!DOCTYPE html>\n"
        f"<html><head><title>{_esc(title)} | {_esc(site_name)}</title>"
        '<meta charset="utf-8"></head>\n'
        f'<body><header class="site-header"><span class="site-name">{_esc(site_name)}</span></header>\n'
        f"{body}\n"
        '<footer class="site-footer">Copyright; all rights reserved.</footer>'
        "</body></html>"
    )


def _paragraphs(sentences: list[str], css_class: str) -> str:
    return "\n".join(f'<p class="{css_class}">{_esc(s)}</p>' for s in sentences)


# ---------------------------------------------------------------------------
# encyclopedia family


def render_encyclopedia(
    report: ReportContent, site_name: str, page: int = 1
) -> str:
    """Encyclopedia page: fact sheet + sections (page 1), IOC tables (page 2)."""
    prefix = site_prefix(site_name)
    if page == 1:
        facts = "".join(
            f"<dt>{_esc(key)}</dt><dd>{_esc(value)}</dd>"
            for key, value in report.structured_fields.items()
        )
        sections = "".join(
            f'<h2 class="{prefix}-section">{_esc(heading)}</h2>'
            + _paragraphs(sentences, f"{prefix}-para")
            for heading, sentences in report.sections
        )
        body = (
            f'<div class="{prefix}-entry" data-category="{_esc(report.category)}">'
            f'<h1 class="{prefix}-title">{_esc(report.title)}</h1>'
            f'<div class="{prefix}-meta"><span class="vendor">{_esc(report.vendor)}</span>'
            f'<time datetime="{_esc(report.published)}">{_esc(report.published)}</time></div>'
            f'<p class="{prefix}-summary">{_esc(report.summary)}</p>'
            f'<dl class="{prefix}-facts">{facts}</dl>'
            f"{sections}"
            f'<a class="{prefix}-next" rel="next" href="?page=2">Indicators of Compromise</a>'
            "</div>"
        )
    else:
        tables = []
        for kind, values in report.ioc_table.items():
            if not values:
                continue
            rows = "".join(f"<tr><td>{_esc(v)}</td></tr>" for v in values)
            tables.append(
                f'<h3 class="{prefix}-ioc-head">{_esc(kind)}</h3>'
                f'<table class="{prefix}-ioc" data-kind="{_esc(kind)}">{rows}</table>'
            )
        body = (
            f'<div class="{prefix}-entry">'
            f'<h1 class="{prefix}-title">{_esc(report.title)}</h1>'
            f'<div class="{prefix}-appendix">{"".join(tables)}</div>'
            "</div>"
        )
    return _page_shell(report.title, body, site_name)


# ---------------------------------------------------------------------------
# blog family


def render_blog(report: ReportContent, site_name: str) -> str:
    """Blog post: article body with inline IOC code spans + indicator list."""
    prefix = site_prefix(site_name)
    sections = "".join(
        f'<h3>{_esc(heading)}</h3>' + _paragraphs(sentences, f"{prefix}-body")
        for heading, sentences in report.sections
    )
    indicators = "".join(
        f'<li data-kind="{_esc(kind)}"><code>{_esc(value)}</code></li>'
        for kind, values in report.ioc_table.items()
        for value in values
    )
    body = (
        f'<article class="{prefix}-post" data-topic="{_esc(report.category)}">'
        f"<h1>{_esc(report.title)}</h1>"
        f'<div class="byline">By {_esc(report.vendor)} research team on '
        f'<span class="date">{_esc(report.published)}</span></div>'
        f'<p class="lede">{_esc(report.summary)}</p>'
        f"{sections}"
        f'<h3>Indicators</h3><ul class="{prefix}-indicators">{indicators}</ul>'
        "</article>"
    )
    return _page_shell(report.title, body, site_name)


# ---------------------------------------------------------------------------
# news family


def render_news(report: ReportContent, site_name: str) -> str:
    """News article: headline + narrative paragraphs only."""
    prefix = site_prefix(site_name)
    sentences = [s for _heading, chunk in report.sections for s in chunk]
    body = (
        f'<div class="{prefix}-story">'
        f'<h1 class="headline">{_esc(report.title)}</h1>'
        f'<p class="dateline">{_esc(report.published)} - {_esc(report.vendor)}</p>'
        f'<p class="standfirst">{_esc(report.summary)}</p>'
        + _paragraphs(sentences, f"{prefix}-graf")
        + "</div>"
    )
    return _page_shell(report.title, body, site_name)


# ---------------------------------------------------------------------------
# advisory family


def render_advisory(report: ReportContent, site_name: str) -> str:
    """Security advisory: metadata table, sections, IOC <pre> appendix."""
    prefix = site_prefix(site_name)
    meta_items = [
        ("Reported by", report.vendor),
        ("Published", report.published),
        *report.structured_fields.items(),
    ]
    meta_rows = "".join(
        f"<tr><th>{_esc(key)}</th><td>{_esc(value)}</td></tr>"
        for key, value in meta_items
    )
    sections = "".join(
        f'<h2>{_esc(heading)}</h2>' + _paragraphs(sentences, f"{prefix}-text")
        for heading, sentences in report.sections
    )
    blocks = "".join(
        f'<h4>{_esc(kind)}</h4><pre class="{prefix}-iocs" data-kind="{_esc(kind)}">'
        + _esc("\n".join(values))
        + "</pre>"
        for kind, values in report.ioc_table.items()
        if values
    )
    body = (
        f'<main class="{prefix}-advisory" data-category="{_esc(report.category)}">'
        f"<h1>{_esc(report.title)}</h1>"
        f'<table class="{prefix}-meta">{meta_rows}</table>'
        f'<p class="abstract">{_esc(report.summary)}</p>'
        f"{sections}"
        f'<section class="{prefix}-appendix"><h2>Observables</h2>{blocks}</section>'
        "</main>"
    )
    return _page_shell(report.title, body, site_name)


# ---------------------------------------------------------------------------
# feed family


def render_feed_item(report: ReportContent, site_name: str) -> str:
    """Aggregator item: terse summary with key/value metadata list."""
    prefix = site_prefix(site_name)
    fields = "".join(
        f'<li><span class="k">{_esc(key)}</span><span class="v">{_esc(value)}</span></li>'
        for key, value in report.structured_fields.items()
    )
    sentences = [s for _heading, chunk in report.sections for s in chunk][:3]
    body = (
        f'<div class="{prefix}-item" data-category="{_esc(report.category)}">'
        f'<h2 class="{prefix}-item-title">{_esc(report.title)}</h2>'
        f'<ul class="{prefix}-fields">{fields}</ul>'
        f'<div class="{prefix}-excerpt">{_paragraphs([report.summary, *sentences], f"{prefix}-line")}</div>'
        f'<div class="src">via {_esc(report.vendor)} | {_esc(report.published)}</div>'
        "</div>"
    )
    return _page_shell(report.title, body, site_name)


# ---------------------------------------------------------------------------
# index pages (all families share a structure, classes differ per site)


def render_index(
    site_name: str,
    links: list[tuple[str, str]],
    page: int,
    total_pages: int,
) -> str:
    """Archive/index page: article links plus numbered pagination."""
    prefix = site_prefix(site_name)
    items = "".join(
        f'<li class="{prefix}-idx"><a class="{prefix}-link" href="{_esc(url)}">{_esc(title)}</a></li>'
        for url, title in links
    )
    pager_links = []
    if page > 1:
        pager_links.append(f'<a class="prev" href="/index/{page - 1}">Prev</a>')
    if page < total_pages:
        pager_links.append(f'<a class="next" rel="next" href="/index/{page + 1}">Next</a>')
    body = (
        f'<div class="{prefix}-archive"><h1>{_esc(site_name)} - Archive</h1>'
        f'<ul class="{prefix}-list">{items}</ul>'
        f'<nav class="pager">{"".join(pager_links)}</nav></div>'
    )
    return _page_shell(f"Archive page {page}", body, site_name)


def render_report(
    report: ReportContent, family: str, site_name: str, page: int = 1
) -> str:
    """Dispatch to the family renderer."""
    if family == "encyclopedia":
        return render_encyclopedia(report, site_name, page=page)
    if family == "blog":
        return render_blog(report, site_name)
    if family == "news":
        return render_news(report, site_name)
    if family == "advisory":
        return render_advisory(report, site_name)
    if family == "feed":
        return render_feed_item(report, site_name)
    raise ValueError(f"unknown site family {family!r}")


__all__ = [
    "FAMILIES",
    "render_advisory",
    "render_blog",
    "render_encyclopedia",
    "render_feed_item",
    "render_index",
    "render_news",
    "render_report",
    "site_prefix",
]
