"""Synthetic OSCTI web.

The paper crawls 40+ live security websites; this environment has no
network, so the collection stage runs against this package instead: a
deterministic web of 42 sources across five site families, backed by a
shared pool of threat scenarios with full ground-truth annotations
(entity mentions, relations, IOC tables) that the extraction
benchmarks score against.

>>> from repro.websim import build_default_web, SimulatedTransport
>>> web = build_default_web(scenario_count=10, reports_per_site=5)
>>> transport = SimulatedTransport(web, time_scale=0.0)
>>> transport.fetch(web.sites[0].index_url).ok
True
"""

from repro.websim.network import (
    Brownout,
    Response,
    SimulatedTransport,
    TransportError,
    TransportStats,
)
from repro.websim.scenario import (
    CATEGORIES,
    GroundTruth,
    ReportContent,
    ThreatScenario,
    generate_report_content,
    make_scenarios,
)
from repro.websim.sites import (
    DEFAULT_SITE_SPECS,
    Article,
    Site,
    Web,
    build_default_web,
)
from repro.websim.textgen import (
    DISTRACTORS,
    TEMPLATES,
    GeneratedSentence,
    GoldMention,
    GoldRelation,
    Template,
    realize,
)

__all__ = [
    "Article",
    "Brownout",
    "CATEGORIES",
    "DEFAULT_SITE_SPECS",
    "DISTRACTORS",
    "GeneratedSentence",
    "GoldMention",
    "GoldRelation",
    "GroundTruth",
    "ReportContent",
    "Response",
    "SimulatedTransport",
    "Site",
    "TEMPLATES",
    "Template",
    "ThreatScenario",
    "TransportError",
    "TransportStats",
    "Web",
    "build_default_web",
    "generate_report_content",
    "make_scenarios",
    "realize",
]
