"""Template-based threat narrative generator with ground truth.

Report body text is produced from sentence templates whose slots are
typed by the ontology.  Because the generator knows exactly which span
realises which slot, every sentence comes with gold entity mentions and
gold relations -- the ground truth the extraction benchmarks (E4-E7)
score against, something the live web cannot provide.

Templates embed relation verbs from the ontology's verb vocabulary, so
dependency-path relation extraction has a recoverable signal, and they
surround entity slots with the contextual cue words ("ransomware",
"threat actor", "a tool known as") that let a CRF generalise to entity
names absent from its training gazetteer.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field

from repro.ontology.entities import EntityType

#: Slot kind -> ontology entity type (``None`` = not an entity).
SLOT_TYPES: dict[str, EntityType | None] = {
    "malware": EntityType.MALWARE,
    "malware2": EntityType.MALWARE,
    "actor": EntityType.THREAT_ACTOR,
    "actor2": EntityType.THREAT_ACTOR,
    "technique": EntityType.TECHNIQUE,
    "technique2": EntityType.TECHNIQUE,
    "tool": EntityType.TOOL,
    "software": EntityType.SOFTWARE,
    "cve": EntityType.VULNERABILITY,
    "file_name": EntityType.FILE_NAME,
    "file_path": EntityType.FILE_PATH,
    "ip": EntityType.IP,
    "domain": EntityType.DOMAIN,
    "url": EntityType.URL,
    "email": EntityType.EMAIL,
    "hash": EntityType.HASH,
    "registry": EntityType.REGISTRY,
    "sector": None,
    "vendor": None,
}


@dataclass(frozen=True)
class Template:
    """One sentence template.

    ``pattern`` contains ``{slot}`` placeholders; ``relations`` lists
    ``(head_slot, verb, tail_slot)`` triples realised by the sentence.
    """

    pattern: str
    relations: tuple[tuple[str, str, str], ...] = ()


@dataclass
class GoldMention:
    """Gold entity span within one generated sentence."""

    text: str
    type: EntityType
    start: int
    end: int


@dataclass
class GoldRelation:
    """Gold relation realised by one generated sentence."""

    head_text: str
    head_type: EntityType
    verb: str
    tail_text: str
    tail_type: EntityType


@dataclass
class GeneratedSentence:
    """A realised sentence plus its gold annotations."""

    text: str
    mentions: list[GoldMention] = field(default_factory=list)
    relations: list[GoldRelation] = field(default_factory=list)


#: Narrative templates.  Kept as data so tests/benchmarks can reason
#: about coverage (every relation verb family appears at least once).
TEMPLATES: tuple[Template, ...] = (
    Template(
        "The {malware} ransomware dropped {file_name} on infected hosts.",
        (("malware", "dropped", "file_name"),),
    ),
    Template(
        "Once executed, {malware} drops a copy of itself as {file_path} and "
        "encrypts {file_name} across mapped drives.",
        (("malware", "drops", "file_path"), ("malware", "encrypts", "file_name")),
    ),
    Template(
        "Researchers observed that {malware} connects to {ip} over port 443.",
        (("malware", "connects", "ip"),),
    ),
    Template(
        "The {malware} trojan communicates with its command server at {domain}.",
        (("malware", "communicates", "domain"),),
    ),
    Template(
        "During the infection chain, {malware} downloads a second stage from {url}.",
        (("malware", "downloads", "url"),),
    ),
    Template(
        "The loader beacons to {domain} and retrieves {malware2} as the final payload.",
        (),
    ),
    Template(
        "{malware} exploits {cve} in {software} to gain initial access.",
        (("malware", "exploits", "cve"),),
    ),
    Template(
        "The campaign targets {software} installations exposed to the internet.",
        (),
    ),
    Template(
        "The threat actor {actor} uses {technique} to establish persistence.",
        (("actor", "uses", "technique"),),
    ),
    Template(
        "Analysts attribute the intrusion to {actor}, a group that leverages "
        "{tool} during lateral movement.",
        (("actor", "leverages", "tool"),),
    ),
    Template(
        "{actor} deployed {malware} against {sector} throughout the campaign.",
        (("actor", "deployed", "malware"),),
    ),
    Template(
        "The group known as {actor} employs {technique} and {technique2} in "
        "its playbook.",
        (("actor", "employs", "technique"), ("actor", "employs", "technique2")),
    ),
    Template(
        "Operators behind {malware} modified {registry} to survive reboots.",
        (("malware", "modified", "registry"),),
    ),
    Template(
        "On launch, the sample creates {registry} pointing to {file_path}.",
        (),
    ),
    Template(
        "{malware} sends stolen credentials to {email} via encrypted mail.",
        (("malware", "sends", "email"),),
    ),
    Template(
        "The phishing wave spreads {malware} through messages from {email}.",
        (),
    ),
    Template(
        "A sample with hash {hash} was identified as a {malware} variant.",
        (),
    ),
    Template(
        "The dropper, tracked by the digest {hash}, writes {file_name} into "
        "the temporary folder.",
        (),
    ),
    Template(
        "{malware} spreads via {technique}, abusing unpatched {software} hosts.",
        (("malware", "spreads", "technique"),),
    ),
    Template(
        "Victims reported that {malware} deleted {file_name} and wiped volume "
        "shadow copies.",
        (("malware", "deleted", "file_name"),),
    ),
    Template(
        "The implant executes {tool} to harvest credentials from memory.",
        (),
    ),
    Template(
        "{actor} executed {tool} on the domain controller before staging data.",
        (("actor", "executed", "tool"),),
    ),
    Template(
        "The backdoor {malware} runs {file_name} with elevated privileges.",
        (("malware", "runs", "file_name"),),
    ),
    Template(
        "Telemetry links {malware} to {actor} with high confidence.",
        (("malware", "links", "actor"),),
    ),
    Template(
        "{malware} is attributed to {actor} based on shared infrastructure.",
        (("malware", "attributed", "actor"),),
    ),
    Template(
        "The vulnerability {cve} affects {software} versions prior to the patch.",
        (("cve", "affects", "software"),),
    ),
    Template(
        "Attackers exploit {cve} to deploy {malware} on vulnerable servers.",
        (),
    ),
    Template(
        "{actor} targets {sector} using spearphishing emails sent from {email}.",
        (),
    ),
    Template(
        "The intrusion set {actor} abuses {software} management interfaces "
        "reachable from {ip}.",
        (("actor", "abuses", "software"),),
    ),
    Template(
        "After encryption, {malware} contacts {url} to register the victim.",
        (("malware", "contacts", "url"),),
    ),
    Template(
        "The worm component of {malware} propagates via {technique} inside "
        "flat networks.",
        (("malware", "propagates", "technique"),),
    ),
    Template(
        "Defenders should block {domain} and {ip}, both used by {malware} "
        "for command and control.",
        (),
    ),
    Template(
        "A scheduled task launches {file_path} every fifteen minutes.",
        (),
    ),
    Template(
        "The {malware} stealer utilizes {tool} to disable endpoint defenses.",
        (("malware", "utilizes", "tool"),),
    ),
    Template(
        "{actor} compromised a supplier and distributed {malware} through "
        "signed updates.",
        (("actor", "distributed", "malware"),),
    ),
    Template(
        "Forensic review tied the mail sender {email} to {actor} infrastructure.",
        (),
    ),
    Template(
        "{malware} tampers with {registry} to disable real-time protection.",
        (("malware", "tampers", "registry"),),
    ),
    Template(
        "The second stage is fetched from {url} and saved as {file_path}.",
        (),
    ),
    Template(
        "{malware2} is considered a variant of {malware} by several vendors.",
        (),
    ),
    Template(
        "Incident responders found {tool} artifacts alongside {malware} binaries.",
        (),
    ),
    Template(
        "The actor {actor} exfiltrates archives over {domain} using {technique}.",
        (("actor", "exfiltrates", "domain"),),
    ),
    Template(
        "Weeks before detection, {actor} infected {software} build servers.",
        (("actor", "infected", "software"),),
    ),
)

#: Entity-free distractor sentences; they teach the CRF what *not* to
#: tag and stress sentence segmentation with ordinary punctuation.
DISTRACTORS: tuple[str, ...] = (
    "Organizations are urged to apply the latest security updates promptly.",
    "Network segmentation remains one of the most effective mitigations.",
    "The investigation is ongoing and additional details will be published.",
    "Administrators should review authentication logs for unusual activity.",
    "Backups must be kept offline to survive destructive attacks.",
    "No customer data is believed to have been accessed at this time.",
    "Security teams shared the findings with national response agencies.",
    "The patch was released on Tuesday as part of the monthly cycle.",
    "Multi-factor authentication significantly raises the cost of intrusion.",
    "Researchers continue to monitor the infrastructure for new activity.",
    "Employees reported suspicious messages to the internal response team.",
    "The advisory includes detection rules for common endpoint platforms.",
)

_SLOT_RE = re.compile(r"\{(\w+)\}")


def realize(
    template: Template, values: dict[str, str]
) -> GeneratedSentence:
    """Fill a template with concrete slot values.

    ``values`` must provide every slot that appears in the pattern.
    Returns the sentence with exact character spans for entity slots
    and the template's declared relations bound to the filled values.
    """
    parts: list[str] = []
    spans: dict[str, tuple[int, int, str]] = {}
    cursor = 0
    last = 0
    for match in _SLOT_RE.finditer(template.pattern):
        literal = template.pattern[last : match.start()]
        parts.append(literal)
        cursor += len(literal)
        slot = match.group(1)
        if slot not in values:
            raise KeyError(f"template slot {slot!r} missing a value")
        value = values[slot]
        spans[slot] = (cursor, cursor + len(value), value)
        parts.append(value)
        cursor += len(value)
        last = match.end()
    parts.append(template.pattern[last:])
    text = "".join(parts)

    mentions = [
        GoldMention(text=value, type=SLOT_TYPES[slot], start=start, end=end)
        for slot, (start, end, value) in spans.items()
        if SLOT_TYPES.get(slot) is not None
    ]
    mentions.sort(key=lambda m: m.start)

    relations = []
    for head_slot, verb, tail_slot in template.relations:
        head_type = SLOT_TYPES[head_slot]
        tail_type = SLOT_TYPES[tail_slot]
        if head_type is None or tail_type is None:
            continue
        relations.append(
            GoldRelation(
                head_text=spans[head_slot][2],
                head_type=head_type,
                verb=verb,
                tail_text=spans[tail_slot][2],
                tail_type=tail_type,
            )
        )
    return GeneratedSentence(text=text, mentions=mentions, relations=relations)


def template_slots(template: Template) -> list[str]:
    """The slot names appearing in a template's pattern, in order."""
    return _SLOT_RE.findall(template.pattern)


def pick_templates(
    rng: random.Random, count: int, distractor_rate: float = 0.25
) -> list[Template | str]:
    """Choose a narrative plan: templates mixed with distractor strings."""
    plan: list[Template | str] = []
    for _ in range(count):
        if rng.random() < distractor_rate:
            plan.append(rng.choice(DISTRACTORS))
        else:
            plan.append(rng.choice(TEMPLATES))
    return plan


__all__ = [
    "DISTRACTORS",
    "GeneratedSentence",
    "GoldMention",
    "GoldRelation",
    "SLOT_TYPES",
    "TEMPLATES",
    "Template",
    "pick_templates",
    "realize",
    "template_slots",
]
