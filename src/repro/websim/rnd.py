"""Derived deterministic RNG streams.

``random.Random`` only seeds from scalars; :func:`derive_rng` builds an
independent, reproducible stream from any tuple of labels (site seed,
purpose, index, URL, ...), which the web simulator uses everywhere so
that content, latency and failure draws never interfere.
"""

from __future__ import annotations

import random


def derive_seed(*parts: object) -> str:
    """A stable string seed from heterogeneous parts."""
    return "\x1f".join(repr(part) for part in parts)


def derive_rng(*parts: object) -> random.Random:
    """An independent ``random.Random`` keyed by ``parts``."""
    return random.Random(derive_seed(*parts))


__all__ = ["derive_rng", "derive_seed"]
