"""Deterministic IOC value generators.

Produces the low-level indicator strings embedded in synthetic reports:
IPs, domains, URLs, emails, hashes, file names/paths, registry keys and
CVE identifiers.  All generators draw from a caller-supplied
``random.Random`` so corpora are reproducible from a seed.

The values intentionally carry the "massive nuances" the paper calls
out -- dots, underscores, backslashes, long hex runs -- which is what
breaks naive tokenization and motivates IOC protection.
"""

from __future__ import annotations

import random

from repro.websim import seeds


def make_ip(rng: random.Random) -> str:
    """A routable-looking IPv4 address (avoids 0/255 octet edges)."""
    return ".".join(str(rng.randint(1, 254)) for _ in range(4))


def make_domain(rng: random.Random) -> str:
    """A plausible C2 domain like ``update-relay3.xyz``."""
    first = rng.choice(seeds.DOMAIN_WORDS)
    second = rng.choice(seeds.DOMAIN_WORDS)
    sep = rng.choice(["-", "", "."])
    label = f"{first}{sep}{second}" if first != second else f"{first}{rng.randint(2, 99)}"
    if rng.random() < 0.35:
        label = f"{label}{rng.randint(2, 9)}"
    return f"{label}{rng.choice(seeds.TLDS)}"


def make_url(rng: random.Random, domain: str | None = None) -> str:
    """A full URL, optionally over a given domain."""
    domain = domain or make_domain(rng)
    scheme = rng.choice(["http", "https"])
    path_bits = rng.sample(seeds.DOMAIN_WORDS, k=rng.randint(1, 3))
    path = "/".join(path_bits)
    suffix = rng.choice(["", ".php", ".aspx", "/gate", "?id=" + str(rng.randint(100, 999))])
    return f"{scheme}://{domain}/{path}{suffix}"


def make_email(rng: random.Random, domain: str | None = None) -> str:
    """A spearphishing-style sender address."""
    domain = domain or make_domain(rng)
    user = rng.choice(seeds.EMAIL_USERS)
    if rng.random() < 0.4:
        user = f"{user}{rng.choice(['.', '_'])}{rng.randint(1, 99)}"
    return f"{user}@{domain}"


_HEX = "0123456789abcdef"


def make_hash(rng: random.Random, algorithm: str | None = None) -> str:
    """A hash digest; algorithm picked among md5/sha1/sha256 if unset."""
    algorithm = algorithm or rng.choice(["md5", "sha1", "sha256"])
    length = {"md5": 32, "sha1": 40, "sha256": 64}[algorithm]
    return "".join(rng.choice(_HEX) for _ in range(length))


def make_file_name(rng: random.Random) -> str:
    """A dropped-file name like ``invoice_scan.docm``."""
    stem = rng.choice(seeds.FILE_STEMS)
    if rng.random() < 0.4:
        stem = f"{stem}{rng.choice(['_', '-', ''])}{rng.choice(seeds.FILE_STEMS)}"
    if rng.random() < 0.3:
        stem = f"{stem}{rng.randint(1, 99)}"
    return f"{stem}{rng.choice(seeds.FILE_EXTENSIONS)}"


def make_file_path(rng: random.Random, file_name: str | None = None) -> str:
    """A Windows absolute path to a (possibly given) file name."""
    file_name = file_name or make_file_name(rng)
    return f"{rng.choice(seeds.WINDOWS_DIRS)}\\{file_name}"


def make_registry_key(rng: random.Random) -> str:
    """A persistence-flavoured registry key with a value name."""
    hive = rng.choice(seeds.REGISTRY_HIVES)
    value = rng.choice(seeds.FILE_STEMS)
    return f"{hive}\\{value}"


def make_cve(rng: random.Random) -> str:
    """A CVE identifier in the 2014-2021 range."""
    year = rng.randint(2014, 2021)
    number = rng.randint(1000, 49999)
    return f"CVE-{year}-{number}"


def make_mutex(rng: random.Random) -> str:
    """A malware mutex name (used as a free attribute value)."""
    return "Global\\" + "".join(rng.choice(_HEX) for _ in range(12))


__all__ = [
    "make_cve",
    "make_domain",
    "make_email",
    "make_file_name",
    "make_file_path",
    "make_hash",
    "make_ip",
    "make_mutex",
    "make_registry_key",
    "make_url",
]
