"""Threat scenario and report content generation.

A :class:`ThreatScenario` is one coherent incident: a malware family,
an operating actor, the techniques/tools involved, the exploited
software, and a pool of concrete IOCs.  From a scenario the generator
realises :class:`ReportContent` -- the logical content of one OSCTI
report (title, summary, narrative sections, IOC appendix, structured
fields) together with complete :class:`GroundTruth` annotations.

Multiple sources can report on the *same* scenario (with different
narrative sentences and overlapping IOC subsets), which is what gives
the knowledge graph its cross-report merge behaviour (E8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ontology.entities import EntityType
from repro.websim import iocgen, seeds
from repro.websim.textgen import (
    GeneratedSentence,
    Template,
    pick_templates,
    realize,
    template_slots,
)

#: Report categories, matching the ontology's report types.
CATEGORIES: tuple[str, ...] = ("malware", "vulnerability", "attack")


@dataclass
class ThreatScenario:
    """One coherent incident with concrete names and indicators."""

    scenario_id: int
    malware: str
    secondary_malware: str
    actor: str
    secondary_actor: str
    techniques: list[str]
    tools: list[str]
    software: list[str]
    cves: list[str]
    sector: str
    ips: list[str]
    domains: list[str]
    urls: list[str]
    emails: list[str]
    hashes: list[str]
    file_names: list[str]
    file_paths: list[str]
    registry_keys: list[str]

    @classmethod
    def generate(
        cls, scenario_id: int, rng: random.Random, known_only: bool = False
    ) -> "ThreatScenario":
        """Draw one scenario deterministically from ``rng``.

        With ``known_only=True`` concept names are sampled exclusively
        from the gazetteer-known splits -- the corpus regime used to
        synthesise training annotations, where the curated lists have
        full coverage.  The default mixes in the held-out names, so
        evaluation corpora contain entities no list has seen.
        """
        if known_only:
            malware_bank = seeds.split_bank(seeds.MALWARE_FAMILIES)[0]
            actor_bank = seeds.split_bank(seeds.THREAT_ACTORS)[0]
            technique_bank = seeds.split_bank(seeds.TECHNIQUES)[0]
            tool_bank = seeds.split_bank(seeds.TOOLS)[0]
            software_bank = seeds.split_bank(seeds.SOFTWARE)[0]
        else:
            malware_bank = list(seeds.MALWARE_FAMILIES)
            actor_bank = list(seeds.THREAT_ACTORS)
            technique_bank = list(seeds.TECHNIQUES)
            tool_bank = list(seeds.TOOLS)
            software_bank = list(seeds.SOFTWARE)
        malware, secondary = rng.sample(malware_bank, 2)
        actor, secondary_actor = rng.sample(actor_bank, 2)
        techniques = [name for _tid, name in rng.sample(technique_bank, 4)]
        domains = [iocgen.make_domain(rng) for _ in range(rng.randint(2, 4))]
        file_names = [iocgen.make_file_name(rng) for _ in range(rng.randint(2, 4))]
        return cls(
            scenario_id=scenario_id,
            malware=malware,
            secondary_malware=secondary,
            actor=actor,
            secondary_actor=secondary_actor,
            techniques=techniques,
            tools=rng.sample(tool_bank, 3),
            software=rng.sample(software_bank, 2),
            cves=[iocgen.make_cve(rng) for _ in range(rng.randint(1, 2))],
            sector=rng.choice(seeds.SECTORS),
            ips=[iocgen.make_ip(rng) for _ in range(rng.randint(2, 4))],
            domains=domains,
            urls=[iocgen.make_url(rng, rng.choice(domains)) for _ in range(2)],
            emails=[iocgen.make_email(rng) for _ in range(rng.randint(1, 2))],
            hashes=[iocgen.make_hash(rng) for _ in range(rng.randint(2, 4))],
            file_names=file_names,
            file_paths=[
                iocgen.make_file_path(rng, rng.choice(file_names)) for _ in range(2)
            ],
            registry_keys=[iocgen.make_registry_key(rng)],
        )

    def slot_value(self, slot: str, rng: random.Random) -> str:
        """Concrete value for a template slot, drawn from this scenario."""
        providers = {
            "malware": lambda: self.malware,
            "malware2": lambda: self.secondary_malware,
            "actor": lambda: self.actor,
            "actor2": lambda: self.secondary_actor,
            "technique": lambda: self.techniques[0],
            "technique2": lambda: rng.choice(self.techniques[1:]),
            "tool": lambda: rng.choice(self.tools),
            "software": lambda: rng.choice(self.software),
            "cve": lambda: rng.choice(self.cves),
            "sector": lambda: self.sector,
            "ip": lambda: rng.choice(self.ips),
            "domain": lambda: rng.choice(self.domains),
            "url": lambda: rng.choice(self.urls),
            "email": lambda: rng.choice(self.emails),
            "hash": lambda: rng.choice(self.hashes),
            "file_name": lambda: rng.choice(self.file_names),
            "file_path": lambda: rng.choice(self.file_paths),
            "registry": lambda: rng.choice(self.registry_keys),
            "vendor": lambda: rng.choice(seeds.VENDORS),
        }
        try:
            return providers[slot]()
        except KeyError:
            raise KeyError(f"unknown template slot {slot!r}") from None


#: IOC slot kind -> ontology entity type, for the appendix table.
IOC_KINDS: tuple[tuple[str, EntityType], ...] = (
    ("ips", EntityType.IP),
    ("domains", EntityType.DOMAIN),
    ("urls", EntityType.URL),
    ("emails", EntityType.EMAIL),
    ("hashes", EntityType.HASH),
    ("file_names", EntityType.FILE_NAME),
    ("file_paths", EntityType.FILE_PATH),
    ("registry_keys", EntityType.REGISTRY),
)


@dataclass
class GroundTruth:
    """Complete annotations for one generated report."""

    sentences: list[GeneratedSentence] = field(default_factory=list)
    iocs: dict[str, list[str]] = field(default_factory=dict)

    @property
    def entity_mentions(self) -> list[tuple[str, EntityType]]:
        """All gold (text, type) mentions across the narrative."""
        return [
            (mention.text, mention.type)
            for sentence in self.sentences
            for mention in sentence.mentions
        ]

    @property
    def relation_triples(self) -> list[tuple[str, str, str]]:
        """All gold (head, verb, tail) triples across the narrative."""
        return [
            (rel.head_text, rel.verb, rel.tail_text)
            for sentence in self.sentences
            for rel in sentence.relations
        ]


@dataclass
class ReportContent:
    """The logical content of one OSCTI report before HTML rendering."""

    scenario: ThreatScenario
    category: str
    title: str
    vendor: str
    published: str
    summary: str
    sections: list[tuple[str, list[str]]]
    structured_fields: dict[str, str]
    ioc_table: dict[str, list[str]]
    truth: GroundTruth


_SECTION_HEADINGS: tuple[str, ...] = (
    "Overview",
    "Technical Analysis",
    "Infection Chain",
    "Command and Control",
    "Persistence",
    "Impact",
    "Attribution",
    "Recommendations",
)

_TITLE_PATTERNS: dict[str, tuple[str, ...]] = {
    "malware": (
        "{Malware}: anatomy of an evolving threat",
        "Dissecting the {Malware} malware family",
        "{Malware} returns with upgraded capabilities",
        "Inside the {Malware} infection chain",
    ),
    "vulnerability": (
        "{cve}: exploitation of {software} in the wild",
        "Critical flaw {cve} puts {software} deployments at risk",
        "Patch now: {cve} actively exploited against {software}",
    ),
    "attack": (
        "{Actor} campaign strikes {sector}",
        "Tracking {Actor}: new operations against {sector}",
        "{Actor} intrusions expand to {sector}",
    ),
}


#: CTI vendors spell the same family differently ("agent tesla" vs
#: "AgentTesla" vs "agent_tesla").  Each vendor consistently uses one
#: convention in its structured fact sheets, which is precisely the
#: situation the paper's knowledge-fusion stage exists to resolve
#: (section 2.5: "same malware represented in different naming
#: conventions by different CTI vendors").
def vendor_naming_style(vendor: str):
    """The naming convention a vendor applies to threat names."""
    styles = (
        lambda name: name.title(),  # "Agent Tesla"
        lambda name: "".join(part.title() for part in name.split()),  # "AgentTesla"
        lambda name: name.replace(" ", "_"),  # "agent_tesla"
        lambda name: name.replace(" ", "-"),  # "agent-tesla"
    )
    digest = sum(ord(ch) for ch in vendor)
    return styles[digest % len(styles)]


def _pick_date(rng: random.Random) -> str:
    year = rng.randint(2019, 2021)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


def generate_report_content(
    scenario: ThreatScenario,
    rng: random.Random,
    category: str | None = None,
    vendor: str | None = None,
    sentence_count: int = 10,
    ioc_fraction: float = 0.8,
) -> ReportContent:
    """Realise one report about ``scenario``.

    ``ioc_fraction`` controls how much of the scenario's IOC pool this
    particular report discloses -- different sources reporting on the
    same scenario overlap but do not coincide, which exercises the
    cross-report merge logic.
    """
    category = category or rng.choice(CATEGORIES)
    vendor = vendor or rng.choice(seeds.VENDORS)
    title_pattern = rng.choice(_TITLE_PATTERNS[category])
    title = title_pattern.format(
        Malware=scenario.malware.title(),
        Actor=scenario.actor.title(),
        cve=scenario.cves[0],
        software=scenario.software[0],
        sector=scenario.sector,
    )

    truth = GroundTruth()
    plan = pick_templates(rng, sentence_count)
    realized: list[str] = []
    for item in plan:
        if isinstance(item, Template):
            values = {
                slot: scenario.slot_value(slot, rng) for slot in template_slots(item)
            }
            sentence = realize(item, values)
            truth.sentences.append(sentence)
            realized.append(sentence.text)
        else:
            truth.sentences.append(GeneratedSentence(text=item))
            realized.append(item)

    summary = realized[0] if realized else ""
    body = realized[1:]
    headings = rng.sample(_SECTION_HEADINGS, k=min(3, len(_SECTION_HEADINGS)))
    sections: list[tuple[str, list[str]]] = []
    if body:
        chunk = max(1, len(body) // len(headings))
        for index, heading in enumerate(headings):
            start = index * chunk
            end = None if index == len(headings) - 1 else (index + 1) * chunk
            chunk_sentences = body[start:end]
            if chunk_sentences:
                sections.append((heading, chunk_sentences))

    ioc_table: dict[str, list[str]] = {}
    for attr, kind in IOC_KINDS:
        values = list(getattr(scenario, attr))
        rng.shuffle(values)
        keep = max(1, round(len(values) * ioc_fraction))
        ioc_table[kind.value] = values[:keep]
    truth.iocs = {kind: list(values) for kind, values in ioc_table.items()}

    structured_fields = {
        "Threat name": vendor_naming_style(vendor)(scenario.malware),
        "Category": category,
        "First seen": _pick_date(rng),
        "Severity": rng.choice(["low", "medium", "high", "critical"]),
        "Associated actor": scenario.actor.title(),
    }
    if category == "vulnerability":
        structured_fields["CVE"] = scenario.cves[0]
        structured_fields["Affected software"] = scenario.software[0]

    return ReportContent(
        scenario=scenario,
        category=category,
        title=title,
        vendor=vendor,
        published=_pick_date(rng),
        summary=summary,
        sections=sections,
        structured_fields=structured_fields,
        ioc_table=ioc_table,
        truth=truth,
    )


def make_scenarios(
    count: int, seed: int = 7, known_only: bool = False
) -> list[ThreatScenario]:
    """Generate ``count`` deterministic scenarios from a master seed."""
    rng = random.Random(seed)
    return [
        ThreatScenario.generate(index, rng, known_only=known_only)
        for index in range(count)
    ]


__all__ = [
    "CATEGORIES",
    "vendor_naming_style",
    "GroundTruth",
    "IOC_KINDS",
    "ReportContent",
    "ThreatScenario",
    "generate_report_content",
    "make_scenarios",
]
