"""Simulated HTTP transport over the synthetic web.

Gives the crawler framework a network with realistic misbehaviour:
per-site latency, jitter, transient 5xx failures and timeouts, plus
per-host request accounting.  Latency is slept on the injected
:class:`~repro.runtime.Clock` scaled by ``time_scale`` -- under the
real clock throughput benchmarks (E1) measure real concurrency
effects; under a :class:`~repro.runtime.VirtualClock` the same
latency profile replays in milliseconds of wall time.

Failure injection is deterministic: whether fetch attempt *k* of a URL
fails is a pure function of ``(failure_seed, url, k)``, so a failing
crawl is exactly reproducible and retry logic can be tested without
flakiness.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.runtime import REAL_CLOCK, Clock, Stopwatch, named_lock
from repro.websim.rnd import derive_rng
from repro.websim.sites import Web


class TransportError(Exception):
    """Connection-level failure (simulated timeout / reset)."""


@dataclass(frozen=True)
class Brownout:
    """A window during which one host's fetches mostly fail.

    Models a *gray failure*: the host is up (DNS resolves, connections
    open) but requests fail at ``failure_rate`` between ``start`` and
    ``end`` on the transport's clock.  Failures draw the same
    deterministic randomness as the baseline failure injection, so a
    browned-out crawl is exactly reproducible.
    """

    host: str
    start: float
    end: float
    failure_rate: float = 1.0

    def active(self, host: str, now: float) -> bool:
        return host == self.host and self.start <= now < self.end


@dataclass
class Response:
    """Result of one fetch."""

    url: str
    status: int
    body: str
    elapsed: float
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


@dataclass
class TransportStats:
    """Thread-safe counters for requests through the transport."""

    total: int = 0
    failures: int = 0
    by_host: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=lambda: named_lock("websim.transport_stats"),
        repr=False,
    )

    def record(self, host: str, failed: bool) -> None:
        with self._lock:
            self.total += 1
            if failed:
                self.failures += 1
            self.by_host[host] = self.by_host.get(host, 0) + 1

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "total": self.total,
                "failures": self.failures,
                "by_host": dict(self.by_host),
            }


class SimulatedTransport:
    """Fetch pages of a :class:`~repro.websim.sites.Web`.

    Parameters
    ----------
    web:
        The synthetic web to serve.
    failure_rate:
        Probability that any single fetch attempt fails with a 503 or a
        :class:`TransportError` (half each).  Retried attempts of the
        same URL draw fresh, deterministic randomness.
    time_scale:
        Multiplier on simulated latency.  ``1.0`` sleeps the site's
        configured latency; ``0.0`` disables sleeping for fast tests.
    clock:
        The runtime clock latency is slept on and ``elapsed`` is
        measured against.  Components downstream (fetcher, engine)
        inherit this clock, so injecting a virtual clock here threads
        virtual time through the whole crawl.
    brownouts:
        Optional :class:`Brownout` windows -- per-host gray-failure
        injection for health/quarantine experiments.
    """

    def __init__(
        self,
        web: Web,
        failure_rate: float = 0.0,
        time_scale: float = 1.0,
        failure_seed: int = 99,
        clock: Clock | None = None,
        brownouts: list[Brownout] | None = None,
    ):
        self.web = web
        self.failure_rate = failure_rate
        self.time_scale = time_scale
        self.failure_seed = failure_seed
        self.clock = clock if clock is not None else REAL_CLOCK
        self.brownouts = list(brownouts or [])
        self.stats = TransportStats()
        self._attempts: dict[str, int] = {}
        self._attempt_lock = named_lock("websim.attempts")

    def _next_attempt(self, url: str) -> int:
        with self._attempt_lock:
            attempt = self._attempts.get(url, 0)
            self._attempts[url] = attempt + 1
            return attempt

    def _host(self, url: str) -> str:
        return url.split("://", 1)[-1].split("/", 1)[0]

    def fetch(self, url: str) -> Response:
        """Fetch one URL, simulating latency and injected failures.

        Raises :class:`TransportError` for connection-level failures;
        returns non-2xx :class:`Response` objects for HTTP errors.
        """
        watch = Stopwatch(self.clock)
        host = self._host(url)
        site = self.web.site_for_url(url)

        if site is not None and self.time_scale > 0:
            low, high = site.latency_ms
            jitter = derive_rng(self.failure_seed, "lat", url).uniform(low, high)
            self.clock.sleep(jitter / 1000.0 * self.time_scale)

        attempt = self._next_attempt(url)
        failure_rate = self.failure_rate
        if self.brownouts:
            now = self.clock.now()
            for brownout in self.brownouts:
                if brownout.active(host, now):
                    failure_rate = max(failure_rate, brownout.failure_rate)
        roll = derive_rng(self.failure_seed, url, attempt).random()
        if roll < failure_rate:
            self.stats.record(host, failed=True)
            if roll < failure_rate / 2:
                raise TransportError(f"simulated connection reset for {url}")
            return Response(
                url=url,
                status=503,
                body="service unavailable",
                elapsed=watch.elapsed,
            )

        body = self.web.page(url)
        if body is None:
            self.stats.record(host, failed=False)
            return Response(
                url=url, status=404, body="not found", elapsed=watch.elapsed
            )
        self.stats.record(host, failed=False)
        return Response(
            url=url,
            status=200,
            body=body,
            elapsed=watch.elapsed,
            headers={"content-type": "text/html; charset=utf-8"},
        )


__all__ = [
    "Brownout",
    "Response",
    "SimulatedTransport",
    "TransportError",
    "TransportStats",
]
