"""Site registry: the 40+ synthetic OSCTI sources.

Each :class:`Site` is one data source with its own host, URL scheme,
site family, archive pagination and publishing volume.  Content is
materialised lazily and deterministically from the site seed, so the
same site always serves the same bytes -- crawls are reproducible and
incremental re-crawls see stable URLs.

Sites draw their stories from a shared scenario pool with overlap:
several sources report on the same incident with different narrative
text and partially overlapping IOC disclosures, exactly the situation
that makes cross-report knowledge-graph merging meaningful.
"""

from __future__ import annotations

import math
import random
import re
import threading
from dataclasses import dataclass, field

from repro.runtime import named_lock
from repro.websim.render import render_index, render_report
from repro.websim.rnd import derive_rng
from repro.websim.scenario import (
    ReportContent,
    ThreatScenario,
    generate_report_content,
    make_scenarios,
)
from repro.websim import seeds

#: (site name, family) for the default web.  8 encyclopedias, 12 blogs,
#: 10 news outlets, 7 advisory trackers, 5 aggregator feeds = 42 sources.
DEFAULT_SITE_SPECS: tuple[tuple[str, str], ...] = (
    ("ThreatPedia", "encyclopedia"),
    ("MalwareVault", "encyclopedia"),
    ("VirusArchive", "encyclopedia"),
    ("ThreatLibrary", "encyclopedia"),
    ("InfectDB", "encyclopedia"),
    ("MalwareAtlas", "encyclopedia"),
    ("ThreatCompendium", "encyclopedia"),
    ("SpecimenIndex", "encyclopedia"),
    ("SecureListing", "blog"),
    ("RedCanopy Blog", "blog"),
    ("NightOwl Notes", "blog"),
    ("CipherTrace Journal", "blog"),
    ("BlueLattice Research", "blog"),
    ("ThreatForge Lab", "blog"),
    ("ObsidianSec Posts", "blog"),
    ("HaloGuard Insights", "blog"),
    ("VectorShield Briefs", "blog"),
    ("PaleFire Writeups", "blog"),
    ("IronVeil Dispatch", "blog"),
    ("CrimsonHex Diary", "blog"),
    ("InfoSec Ledger", "news"),
    ("Breach Gazette", "news"),
    ("CyberWire Daily", "news"),
    ("ThreatPost Mirror", "news"),
    ("DarkReading Echo", "news"),
    ("HackWatch News", "news"),
    ("ZeroDay Tribune", "news"),
    ("PacketStorm Times", "news"),
    ("FirewallHerald", "news"),
    ("MalwareBulletin", "news"),
    ("NVD Shadow", "advisory"),
    ("CERT Relay", "advisory"),
    ("PatchAlert", "advisory"),
    ("VulnTracker", "advisory"),
    ("ExploitNotice", "advisory"),
    ("AdvisoryHub", "advisory"),
    ("SecFlaw Registry", "advisory"),
    ("OTX Mirror", "feed"),
    ("ThreatMiner Echo", "feed"),
    ("PhishTank Relay", "feed"),
    ("IOC Firehose", "feed"),
    ("IntelStream", "feed"),
)

_ARTICLE_PATH_BY_FAMILY: dict[str, str] = {
    "encyclopedia": "/threats/{slug}",
    "blog": "/posts/{slug}",
    "news": "/news/{slug}.html",
    "advisory": "/advisories/{slug}",
    "feed": "/items/{slug}",
}


def _slugify(text: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")
    return slug[:60] or "item"


def host_for(site_name: str) -> str:
    return re.sub(r"[^a-z0-9]+", "", site_name.lower()) + ".example"


@dataclass
class Article:
    """One published report on one site."""

    index: int
    url: str
    title: str
    content: ReportContent
    extra_page_url: str | None = None  # encyclopedia page 2


@dataclass
class Site:
    """One OSCTI source: lazily-rendered pages plus ground truth."""

    name: str
    family: str
    scenario_pool: list[ThreatScenario]
    seed: int
    report_count: int = 30
    page_size: int = 10
    latency_ms: tuple[float, float] = (20.0, 80.0)
    scenario_stride: int = 1
    scenario_offset: int = 0
    vendor: str = ""
    _articles: list[Article] | None = field(default=None, repr=False)
    _pages: dict[str, str] | None = field(default=None, repr=False)
    _lock: threading.Lock = field(
        default_factory=lambda: named_lock("websim.site"), repr=False
    )

    def __post_init__(self) -> None:
        if not self.vendor:
            rng = random.Random(self.seed)
            self.vendor = rng.choice(seeds.VENDORS)

    @property
    def host(self) -> str:
        return host_for(self.name)

    @property
    def base_url(self) -> str:
        return f"https://{self.host}"

    @property
    def index_url(self) -> str:
        return f"{self.base_url}/index/1"

    @property
    def robots_url(self) -> str:
        return f"{self.base_url}/robots.txt"

    # -- content materialisation ---------------------------------------

    def articles(self) -> list[Article]:
        """All articles of this site (materialised once, thread-safely)."""
        with self._lock:
            if self._articles is None:
                self._articles = self._build_articles()
            return self._articles

    def _build_articles(self) -> list[Article]:
        articles: list[Article] = []
        pool_size = len(self.scenario_pool)
        for index in range(self.report_count):
            scenario = self.scenario_pool[
                (self.scenario_offset + index * self.scenario_stride) % pool_size
            ]
            rng = derive_rng(self.seed, "article", index)
            category = _category_for(self.family, rng)
            content = generate_report_content(
                scenario,
                rng,
                category=category,
                vendor=self.vendor,
                sentence_count=4 if self.family in ("news", "feed") else 10,
                ioc_fraction=rng.uniform(0.5, 1.0),
            )
            slug = f"{_slugify(content.title)}-{index}"
            path = _ARTICLE_PATH_BY_FAMILY[self.family].format(slug=slug)
            url = f"{self.base_url}{path}"
            extra = f"{url}?page=2" if self.family == "encyclopedia" else None
            articles.append(
                Article(
                    index=index,
                    url=url,
                    title=content.title,
                    content=content,
                    extra_page_url=extra,
                )
            )
        return articles

    def pages(self) -> dict[str, str]:
        """URL -> HTML for every page this site serves."""
        with self._lock:
            if self._pages is not None:
                return self._pages
        articles = self.articles()
        pages: dict[str, str] = {}
        total_index_pages = max(1, math.ceil(len(articles) / self.page_size))
        for page_no in range(1, total_index_pages + 1):
            window = articles[
                (page_no - 1) * self.page_size : page_no * self.page_size
            ]
            links = [(a.url, a.title) for a in window]
            pages[f"{self.base_url}/index/{page_no}"] = render_index(
                self.name, links, page_no, total_index_pages
            )
        for article in articles:
            pages[article.url] = render_report(
                article.content, self.family, self.name, page=1
            )
            if article.extra_page_url:
                pages[article.extra_page_url] = render_report(
                    article.content, self.family, self.name, page=2
                )
        pages[self.robots_url] = (
            "User-agent: *\nDisallow: /private/\nCrawl-delay: 0\n"
        )
        pages[f"{self.base_url}/private/internal"] = "<html><body>private</body></html>"
        with self._lock:
            self._pages = pages
        return pages

    def publish_more(self, count: int) -> int:
        """The site publishes ``count`` new reports.

        Existing article URLs and content are untouched (articles are a
        deterministic function of their index), so incremental crawls
        pick up exactly the new ones.  Returns the new report count.
        """
        with self._lock:
            self.report_count += count
            self._articles = None
            self._pages = None
        return self.report_count

    # -- ground truth ----------------------------------------------------

    def article_for_url(self, url: str) -> Article | None:
        base = url.split("?", 1)[0]
        for article in self.articles():
            if article.url == base:
                return article
        return None

    def ground_truth(self, url: str) -> ReportContent | None:
        """The gold content behind an article URL (None for non-articles)."""
        article = self.article_for_url(url)
        return article.content if article else None


def _category_for(family: str, rng: random.Random) -> str:
    if family == "advisory":
        return "vulnerability"
    if family == "encyclopedia":
        return "malware"
    return rng.choice(["malware", "attack", "attack"])


@dataclass
class Web:
    """The whole synthetic web: sites plus the shared scenario pool."""

    sites: list[Site]
    scenarios: list[ThreatScenario]

    def site_by_name(self, name: str) -> Site:
        for site in self.sites:
            if site.name == name:
                return site
        raise KeyError(f"unknown site {name!r}")

    def site_for_url(self, url: str) -> Site | None:
        for site in self.sites:
            if url.startswith(site.base_url):
                return site
        return None

    def page(self, url: str) -> str | None:
        site = self.site_for_url(url)
        if site is None:
            return None
        return site.pages().get(url)

    @property
    def total_reports(self) -> int:
        return sum(site.report_count for site in self.sites)

    def publish_everywhere(self, count: int) -> int:
        """Every site publishes ``count`` new reports (continuous web)."""
        for site in self.sites:
            site.publish_more(count)
        return self.total_reports


def build_default_web(
    scenario_count: int = 60,
    reports_per_site: int = 30,
    seed: int = 7,
    site_specs: tuple[tuple[str, str], ...] = DEFAULT_SITE_SPECS,
) -> Web:
    """Construct the default 42-source web over a shared scenario pool.

    Consecutive sites start at staggered offsets into the pool, so each
    scenario is covered by several sources (cross-source overlap), and
    strides are co-prime-ish with the pool size to spread coverage.
    """
    scenarios = make_scenarios(scenario_count, seed=seed)
    sites: list[Site] = []
    for index, (name, family) in enumerate(site_specs):
        sites.append(
            Site(
                name=name,
                family=family,
                scenario_pool=scenarios,
                seed=seed * 1000 + index,
                report_count=reports_per_site,
                page_size=10,
                latency_ms=(20.0 + (index % 5) * 10, 80.0 + (index % 7) * 20),
                scenario_stride=1 + index % 3,
                scenario_offset=index * 3,
            )
        )
    return Web(sites=sites, scenarios=scenarios)


__all__ = [
    "Article",
    "DEFAULT_SITE_SPECS",
    "Site",
    "Web",
    "build_default_web",
    "host_for",
]
