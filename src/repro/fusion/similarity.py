"""String similarity for knowledge fusion.

Different CTI vendors render the same entity under different naming
conventions ("agent tesla", "AgentTesla", "agent_tesla"); fusion needs
to recognise these as one entity.  Two complementary signals:

* :func:`squash` -- a normal form that removes case, separators and
  punctuation; equal squashes indicate a pure convention difference.
* :func:`jaro_winkler` -- edit-distance-flavoured similarity for
  near-miss spellings ("sodinokibi" vs "sodinokibi ransomware" is
  handled by token containment in :func:`name_similarity`).
"""

from __future__ import annotations

import re

_NON_ALNUM = re.compile(r"[^a-z0-9]+")


def squash(name: str) -> str:
    """Case/separator/punctuation-free normal form of a name."""
    return _NON_ALNUM.sub("", name.lower())


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if not len_a or not len_b:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    window = max(window, 0)
    match_a = [False] * len_a
    match_b = [False] * len_b
    matches = 0
    for i, char in enumerate(a):
        lo = max(0, i - window)
        hi = min(len_b, i + window + 1)
        for j in range(lo, hi):
            if not match_b[j] and b[j] == char:
                match_a[i] = True
                match_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len_a):
        if match_a[i]:
            while not match_b[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro with a common-prefix bonus."""
    base = jaro(a, b)
    prefix = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1 - base)


def token_set_overlap(a: str, b: str) -> float:
    """Jaccard overlap of the word sets of two names."""
    set_a = set(a.lower().split())
    set_b = set(b.lower().split())
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def name_similarity(a: str, b: str) -> float:
    """Composite similarity used by the fusion stage.

    1.0 for squash-equal names (pure convention differences); else the
    max of Jaro-Winkler over squashes and token-set overlap.
    """
    squash_a, squash_b = squash(a), squash(b)
    if squash_a and squash_a == squash_b:
        return 1.0
    return max(jaro_winkler(squash_a, squash_b), token_set_overlap(a, b))


__all__ = ["jaro", "jaro_winkler", "name_similarity", "squash", "token_set_overlap"]
