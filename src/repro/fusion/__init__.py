"""Knowledge fusion stage (paper section 2.5).

Separate from the main pipeline by design: alias groups (same entity
under different vendor naming conventions) are merged into unified
nodes with migrated edges only after storage, preventing early
deletion of useful information.
"""

from repro.fusion.fuse import FusionReport, KnowledgeFusion
from repro.fusion.similarity import (
    jaro,
    jaro_winkler,
    name_similarity,
    squash,
    token_set_overlap,
)

__all__ = [
    "FusionReport",
    "KnowledgeFusion",
    "jaro",
    "jaro_winkler",
    "name_similarity",
    "squash",
    "token_set_overlap",
]
