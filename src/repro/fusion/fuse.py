"""Knowledge fusion: merging alias nodes (paper section 2.5).

The storage stage only merges nodes whose description text matches
exactly; nodes that are "the same malware represented in different
naming conventions by different CTI vendors" survive as distinct
nodes.  This separate stage finds those alias groups (same label,
similar names), creates one unified node per group, migrates every
relation edge onto it, and records the aliases -- without ever running
inside the main pipeline, so nothing is deleted early.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fusion.similarity import name_similarity, squash
from repro.graphdb.store import PropertyGraph


@dataclass
class FusionReport:
    """What one fusion pass did."""

    nodes_before: int = 0
    nodes_after: int = 0
    groups_merged: int = 0
    aliases_resolved: int = 0
    merged_groups: list[list[str]] = field(default_factory=list)

    @property
    def nodes_removed(self) -> int:
        return self.nodes_before - self.nodes_after


class _UnionFind:
    def __init__(self, items: list[int]):
        self.parent = {item: item for item in items}

    def find(self, item: int) -> int:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        self.parent[self.find(a)] = self.find(b)


class KnowledgeFusion:
    """Alias clustering + node merging over a property graph.

    Parameters
    ----------
    threshold:
        Minimum :func:`~repro.fusion.similarity.name_similarity` for
        two same-label nodes to be considered aliases (squash-equal
        names always are).
    labels:
        Node labels eligible for fusion.  IOCs are excluded by default:
        two similar-looking hashes are *different* hashes.
    """

    FUSABLE_LABELS = frozenset(
        {"Malware", "ThreatActor", "Technique", "Tool", "Software", "Campaign",
         "Vendor"}
    )

    def __init__(
        self,
        threshold: float = 0.93,
        labels: frozenset[str] | None = None,
    ):
        self.threshold = threshold
        self.labels = labels if labels is not None else self.FUSABLE_LABELS

    # -- clustering ------------------------------------------------------

    def find_alias_groups(self, graph: PropertyGraph) -> list[list[int]]:
        """Groups (size >= 2) of node ids judged to be the same entity."""
        groups: list[list[int]] = []
        for label in sorted(self.labels):
            nodes = list(graph.nodes(label))
            if len(nodes) < 2:
                continue
            uf = _UnionFind([n.node_id for n in nodes])
            # Exact squash equality via bucketing (cheap), then pairwise
            # similarity within plausible buckets (first-two-chars block).
            by_squash: dict[str, list[int]] = {}
            by_block: dict[str, list[tuple[int, str]]] = {}
            for node in nodes:
                name = str(node.properties.get("name", ""))
                squashed = squash(name)
                by_squash.setdefault(squashed, []).append(node.node_id)
                by_block.setdefault(squashed[:2], []).append((node.node_id, name))
            for members in by_squash.values():
                for other in members[1:]:
                    uf.union(members[0], other)
            for block in by_block.values():
                for i, (id_a, name_a) in enumerate(block):
                    for id_b, name_b in block[i + 1 :]:
                        if uf.find(id_a) == uf.find(id_b):
                            continue
                        if name_similarity(name_a, name_b) >= self.threshold:
                            uf.union(id_a, id_b)
            clusters: dict[int, list[int]] = {}
            for node in nodes:
                clusters.setdefault(uf.find(node.node_id), []).append(node.node_id)
            groups.extend(
                sorted(members) for members in clusters.values() if len(members) > 1
            )
        return groups

    # -- merging -------------------------------------------------------------

    def merge_group(self, graph: PropertyGraph, group: list[int]) -> int:
        """Merge one alias group into its canonical node.

        The canonical node is the highest-degree member (the richest
        one); its name wins, the other names become ``aliases``, edges
        are migrated with de-duplication, and the losers are deleted.
        Returns the canonical node id.
        """
        canonical_id = max(group, key=lambda i: (graph.degree(i), -i))
        canonical = graph.node(canonical_id)
        aliases = set(canonical.properties.get("aliases", []))
        merged_properties: dict[str, object] = {}

        for node_id in group:
            if node_id == canonical_id:
                continue
            node = graph.node(node_id)
            name = str(node.properties.get("name", ""))
            if name and name != canonical.properties.get("name"):
                aliases.add(name)
            for key, value in node.properties.items():
                if key in ("name", "merge_key", "aliases"):
                    continue
                if key not in canonical.properties:
                    merged_properties[key] = value
            for edge in list(graph.out_edges(node_id)):
                self._migrate_edge(graph, edge.edge_id, src=canonical_id)
            for edge in list(graph.in_edges(node_id)):
                # a self-loop was already consumed by the out-edge pass
                if graph.has_edge(edge.edge_id):
                    self._migrate_edge(graph, edge.edge_id, dst=canonical_id)
            graph.delete_node(node_id)

        merged_properties["aliases"] = sorted(aliases)
        graph.set_node_properties(canonical_id, merged_properties)
        return canonical_id

    def _migrate_edge(
        self,
        graph: PropertyGraph,
        edge_id: int,
        src: int | None = None,
        dst: int | None = None,
    ) -> None:
        """Recreate an edge with one endpoint moved, merging duplicates."""
        edge = graph.edge(edge_id)
        new_src = src if src is not None else edge.src
        new_dst = dst if dst is not None else edge.dst
        if new_src == new_dst:
            graph.delete_edge(edge_id)
            return
        duplicates = [
            e for e in graph.out_edges(new_src, edge.type) if e.dst == new_dst
        ]
        if duplicates:
            existing = duplicates[0]
            weight = int(existing.properties.get("weight", 1)) + int(
                edge.properties.get("weight", 1)
            )
            reports = list(existing.properties.get("reports", []))
            for report in edge.properties.get("reports", []):
                if report not in reports:
                    reports.append(report)
            graph.set_edge_properties(
                existing.edge_id, {"weight": weight, "reports": reports}
            )
            graph.delete_edge(edge_id)
        else:
            graph.create_edge(new_src, edge.type, new_dst, dict(edge.properties))
            graph.delete_edge(edge_id)

    # -- entry point ----------------------------------------------------------------

    def run(self, graph: PropertyGraph) -> FusionReport:
        """One full fusion pass over the graph."""
        report = FusionReport(nodes_before=graph.node_count)
        for group in self.find_alias_groups(graph):
            names = [
                str(graph.node(i).properties.get("name", "")) for i in group
            ]
            self.merge_group(graph, group)
            report.groups_merged += 1
            report.aliases_resolved += len(group) - 1
            report.merged_groups.append(sorted(names))
        report.nodes_after = graph.node_count
        return report


__all__ = ["FusionReport", "KnowledgeFusion"]
