"""Durable atomic file writes.

The one sanctioned way to persist a file in this codebase (enforced by
the ``store/raw-atomic-write`` lint rule): write a sibling temp file,
flush and ``fsync`` it, rename it over the target, then ``fsync`` the
directory so the rename itself survives a power cut.  A bare
``write_text`` + ``replace`` gives atomicity against a crashed *writer*
but not durability against a crashed *host* -- after the rename the new
inode's data may still sit in the page cache.

The temp name is ``<name>.tmp`` appended to the full filename (not
``with_suffix``), so ``crawl_state.json`` and ``crawl_state.yaml``
cannot collide on one ``crawl_state.tmp``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


def fsync_directory(path: Path) -> None:
    """Best-effort fsync of a directory (makes renames in it durable)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # platforms/filesystems without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass  # repro: allow[silent-swallow] -- durability hint only
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes, fsync: bool = True) -> None:
    """Atomically (and, by default, durably) replace ``path`` with ``data``."""
    path = Path(path)
    tmp = path.parent / (path.name + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        fsync_directory(path.parent)


def atomic_write_text(
    path: str | Path, text: str, fsync: bool = True, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path`` with ``text`` (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def atomic_write_json(path: str | Path, payload: object, fsync: bool = True) -> None:
    """Atomically replace ``path`` with ``payload`` serialised as JSON."""
    atomic_write_text(path, json.dumps(payload), fsync=fsync)


__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "fsync_directory",
]
