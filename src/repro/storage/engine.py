"""Unified transactional storage engine.

The paper's storage stage leans on Neo4j's and Elasticsearch's own
durability; this reproduction coordinates *all* of its stores -- the
property graph, the search index, the incremental crawl state, the SQL
mirror -- under one store-agnostic engine so a crash can never leave
them mutually inconsistent.

Design
------
* **Participants.**  Each store registers a named :class:`Participant`
  adapter: ``apply(ops)`` mutates the in-memory state, ``snapshot_data``
  / ``load_snapshot`` serialise it for compaction, ``reset`` empties it
  before recovery.  The engine never interprets a store's ops; it only
  journals and replays them.
* **One journal, one commit.**  All participants share a single
  JSON-lines journal.  A commit is one line carrying every
  participant's op batches plus the batch's per-report *ingest
  markers*, so graph mutations, search-index doc deltas and the
  seen-URL delta become durable as a single unit.  A torn final line
  (crash mid-append) is detected and truncated on recovery; a line is
  either fully applied or not at all.
* **Redo-log semantics.**  Ops are applied to memory when logged and
  journalled at commit; memory is a cache of the log.  After a crash
  the process is gone, so recovery = load snapshot + replay journal.
  Replay is idempotent: every commit carries a sequence number and
  replay skips records at or below the recovered sequence.
* **Manifest-based checkpoints.**  Compaction writes
  ``snapshot-<gen>.json`` and an empty ``journal-<gen>.jsonl``, then
  atomically swaps ``MANIFEST`` (fsync'd write-rename) to the new
  generation.  The manifest swap is the commit point; a crash anywhere
  else leaves the previous generation fully intact, and stale files are
  swept on the next open.
* **Exactly-once ingest.**  ``transaction().mark_ingested(report_id)``
  records that a report's mutations are part of this commit; after a
  crash the pipeline asks :meth:`StorageEngine.is_ingested` and skips
  replayed reports, so re-crawled input is never double-counted.
* **Staged ops.**  Deltas produced *before* their owning commit is
  known (seen-URLs recorded while crawling) are staged: applied to
  memory immediately, keyed, and later adopted into the transaction
  that stores the matching report -- or flushed in bulk.
* **Fault injection.**  Every commit/checkpoint boundary calls into a
  :class:`~repro.storage.faults.CrashInjector`; recovery tests kill the
  engine at each registered point and assert convergence.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Protocol, runtime_checkable

from repro.obs import NO_OBS, Obs
from repro.runtime import named_lock
from repro.storage.atomic import atomic_write_text, fsync_directory
from repro.storage.faults import NO_FAULTS, InjectedCrash


class StorageError(Exception):
    """Misuse of or unrecoverable damage to the storage engine."""


@runtime_checkable
class Participant(Protocol):
    """A named store coordinated by the engine."""

    name: str

    def apply(self, ops: list[dict]) -> object | None:
        """Apply one op batch to the in-memory state; may return a result."""

    def snapshot_data(self) -> object:
        """JSON-safe serialisation of the full current state."""

    def load_snapshot(self, data: object) -> None:
        """Replace the in-memory state with a snapshot's contents."""

    def reset(self) -> None:
        """Empty the in-memory state (recovery starts from zero)."""


class _StagedOp:
    __slots__ = ("name", "key", "op")

    def __init__(self, name: str, key: str | None, op: dict):
        self.name = name
        self.key = key
        self.op = op


class EngineTransaction:
    """Buffers one atomic cross-store commit."""

    def __init__(self, engine: "StorageEngine"):
        self._engine = engine
        self._groups: list[tuple[str, list[dict]]] = []
        self._marks: list[str] = []

    def mark_ingested(self, report_id: str) -> None:
        """Record a per-report ingest marker in this commit."""
        self._marks.append(report_id)

    def adopt_staged(self, name: str, keys: Iterable[str]) -> int:
        """Move staged ops with the given keys into this transaction.

        Unknown participants are tolerated (no-op) so callers can run
        against engines without, say, a crawl participant.
        """
        if name not in self._engine._participants:
            return 0
        ops = self._engine._take_staged(name, set(keys))
        if ops:
            self._groups.append((name, ops))
        return len(ops)


class StorageEngine:
    """Crash-consistent coordinator of named storage participants.

    Parameters
    ----------
    path:
        Directory for the manifest, journal and snapshots.  ``None``
        keeps everything in memory (tests, benchmarks, ephemeral runs)
        while preserving the full transactional API.
    participants:
        The stores to coordinate.  Recovery needs them registered up
        front, so the set is fixed at construction.
    faults:
        Optional :class:`~repro.storage.faults.CrashInjector`; the
        default never fires.
    fsync:
        Issue real ``fsync`` calls (disable only in benchmarks that
        measure something else).
    obs:
        Observability bundle: commit/checkpoint spans, journal-byte and
        commit counters, checkpoint-duration histogram.  Defaults to
        the no-op bundle.
    """

    MANIFEST = "MANIFEST"

    def __init__(
        self,
        path: str | Path | None,
        participants: Iterable[Participant],
        faults=None,
        fsync: bool = True,
        obs: Obs | None = None,
    ):
        self.path = Path(path) if path is not None else None
        self._obs = obs if obs is not None else NO_OBS
        self._participants: dict[str, Participant] = {}
        for participant in participants:
            if participant.name in self._participants:
                raise StorageError(f"duplicate participant {participant.name!r}")
            self._participants[participant.name] = participant
        self._faults = faults if faults is not None else NO_FAULTS
        self._fsync = fsync
        # Public and re-entrant: CrawlState and SQLConnector alias this
        # lock in engine-attached mode, and transactions re-enter it.
        self.lock = named_lock("storage.engine", reentrant=True)
        self._seq = 0
        self._generation = 1
        self._ingested: set[str] = set()
        self._staged: list[_StagedOp] = []
        self._active_tx: EngineTransaction | None = None
        self._failed = False
        self._closed = False
        self._journal_handle = None
        self._journal_path: Path | None = None
        self._checkpoint_steps: list = []
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
            self._recover()

    # -- introspection ----------------------------------------------------

    def participant(self, name: str) -> Participant:
        try:
            return self._participants[name]
        except KeyError:
            raise StorageError(
                f"no participant {name!r} registered; "
                f"known: {sorted(self._participants)}"
            ) from None

    @property
    def participant_names(self) -> list[str]:
        return sorted(self._participants)

    @property
    def journal_path(self) -> Path | None:
        """The live journal file (None for in-memory engines)."""
        return self._journal_path

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def last_seq(self) -> int:
        return self._seq

    def is_ingested(self, report_id: str) -> bool:
        """Whether a report's mutations are already durably committed."""
        with self.lock:
            return report_id in self._ingested

    @property
    def ingested_count(self) -> int:
        with self.lock:
            return len(self._ingested)

    def ingested_ids(self) -> list[str]:
        """Sorted ids of every durably ingested report."""
        with self.lock:
            return sorted(self._ingested)

    # -- recovery ---------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self.path / self.MANIFEST

    @staticmethod
    def _snapshot_name(generation: int) -> str:
        return f"snapshot-{generation:06d}.json"

    @staticmethod
    def _journal_name(generation: int) -> str:
        return f"journal-{generation:06d}.jsonl"

    def _recover(self) -> None:
        for leftover in self.path.glob("*.tmp"):
            leftover.unlink()
        manifest_path = self._manifest_path()
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            self._generation = int(manifest["generation"])
            for participant in self._participants.values():
                participant.reset()
            self._seq = 0
            self._ingested = set()
            snapshot_name = manifest.get("snapshot")
            if snapshot_name:
                snapshot_path = self.path / snapshot_name
                if not snapshot_path.exists():
                    raise StorageError(
                        f"manifest references missing snapshot {snapshot_name!r}"
                    )
                self._load_snapshot(
                    json.loads(snapshot_path.read_text(encoding="utf-8"))
                )
            journal_path = self.path / manifest["journal"]
            if journal_path.exists():
                self.replay_journal(journal_path)
            else:
                # crash window between manifest swap and journal creation
                # cannot happen (journal is created first), but an empty
                # journal is always a valid state
                journal_path.touch()
        else:
            journal_path = self.path / self._journal_name(self._generation)
            journal_path.touch()
            self._write_manifest(snapshot=None)
        self._journal_path = journal_path
        self._journal_handle = journal_path.open("a", encoding="utf-8")
        self._sweep_stale_generations()

    def _load_snapshot(self, data: dict) -> None:
        self._seq = int(data.get("seq", 0))
        self._ingested = set(data.get("ingested", []))
        for name, store_data in data.get("stores", {}).items():
            if name not in self._participants:
                raise StorageError(
                    f"snapshot contains unknown participant {name!r}; "
                    "open the store with the same participants it was "
                    "written with"
                )
            self._participants[name].load_snapshot(store_data)

    def replay_journal(self, journal_path: Path) -> int:
        """Replay a journal file; returns the number of records applied.

        Torn tails (a crash mid-append) are truncated to the last
        complete record.  Replay is idempotent: records whose sequence
        number is at or below the engine's current sequence are skipped,
        so replaying any prefix and then the full journal equals
        applying the journal once.
        """
        applied = 0
        valid_bytes = 0
        with journal_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    break  # torn tail: no newline ever made it to disk
                stripped = line.strip()
                if stripped:
                    try:
                        record = json.loads(stripped)
                        applied += self.replay_records([record])
                    except (json.JSONDecodeError, KeyError, TypeError):
                        break  # torn or corrupt tail record
                valid_bytes += len(line.encode("utf-8"))
        if valid_bytes < journal_path.stat().st_size:
            with journal_path.open("r+b") as handle:
                handle.truncate(valid_bytes)
        return applied

    def replay_records(self, records: Iterable[dict]) -> int:
        """Apply journal records to the participants (seq-idempotent)."""
        applied = 0
        for record in records:
            seq = int(record["seq"])
            if seq <= self._seq:
                continue
            for name, batches in record.get("ops", {}).items():
                if name not in self._participants:
                    raise StorageError(
                        f"journal references unknown participant {name!r}"
                    )
                for batch in batches:
                    self._participants[name].apply(batch)
            self._ingested.update(record.get("marks", []))
            self._seq = seq
            applied += 1
        return applied

    # -- fault plumbing ---------------------------------------------------

    def _fail(self, point: str) -> None:
        self._failed = True
        raise InjectedCrash(point)

    def _crash_point(self, point: str) -> None:
        if self._faults.fire(point):
            self._fail(point)

    def _check_usable(self) -> None:
        if self._closed:
            raise StorageError("storage engine is closed")
        if self._failed:
            raise StorageError(
                "storage engine crashed (injected fault); reopen it to recover"
            )

    # -- mutation path ----------------------------------------------------

    def log(self, name: str, ops: list[dict]) -> object | None:
        """Apply one op batch now; journal it with the active transaction
        (or as its own commit when none is open).  Returns whatever the
        participant's ``apply`` returns."""
        with self.lock:
            self._check_usable()
            result = self.participant(name).apply(ops)
            if self._active_tx is not None:
                self._active_tx._groups.append((name, ops))
            else:
                self._commit([(name, ops)], [])
            return result

    def stage(self, name: str, op: dict, key: str | None = None) -> None:
        """Apply one op now; defer its durability until a transaction
        adopts it by ``key`` or :meth:`flush` commits the backlog."""
        with self.lock:
            self._check_usable()
            self.participant(name).apply([op])
            self._staged.append(_StagedOp(name, key, op))

    def unstage(self, name: str, key: str) -> bool:
        """Drop the first staged op with this key; True when one existed."""
        with self.lock:
            for index, staged in enumerate(self._staged):
                if staged.name == name and staged.key == key:
                    del self._staged[index]
                    return True
            return False

    def _take_staged(self, name: str, keys: set[str]) -> list[dict]:
        with self.lock:
            taken = [
                staged
                for staged in self._staged
                if staged.name == name and staged.key in keys
            ]
            if taken:
                remaining = [s for s in self._staged if s not in taken]
                self._staged = remaining
            return [staged.op for staged in taken]

    @property
    def staged_count(self) -> int:
        with self.lock:
            return len(self._staged)

    @contextmanager
    def transaction(self):
        """One atomic cross-store commit.

        Ops logged inside the block are buffered and written as a
        single journal record on exit.  On an ordinary exception the
        buffered ops are *still* committed (they were already applied
        to memory; committing keeps disk and memory in agreement) and
        the exception propagates.  On an injected crash the engine is
        poisoned and nothing further is written.
        """
        with self.lock:
            self._check_usable()
            if self._active_tx is not None:
                raise StorageError("transactions do not nest")
            tx = EngineTransaction(self)
            self._active_tx = tx
            try:
                yield tx
            except InjectedCrash:
                raise
            except BaseException:
                if not self._failed:
                    self._commit(tx._groups, tx._marks)
                raise
            else:
                self._commit(tx._groups, tx._marks)
            finally:
                self._active_tx = None

    def flush(self) -> None:
        """Durably commit every staged op as one journal record."""
        with self.lock:
            self._check_usable()
            if not self._staged:
                return
            grouped: dict[str, list[dict]] = {}
            for staged in self._staged:
                grouped.setdefault(staged.name, []).append(staged.op)
            self._staged = []
            self._commit(list(grouped.items()), [])

    def _commit(self, groups: list[tuple[str, list[dict]]], marks: list[str]) -> None:
        """Write one journal record (caller holds the lock, ops are
        already applied to memory)."""
        if not groups and not marks:
            return
        self._seq += 1
        # the journal sequence number is deliberately NOT a span
        # attribute: it reflects arrival order, which races between
        # pipeline workers, and would break golden-trace byte identity
        with self._obs.tracer.span(
            "storage.commit", marks=len(marks)
        ) as span:
            if marks:
                span.set("report", marks[0])
            if self._journal_handle is not None:
                ops_map: dict[str, list[list[dict]]] = {}
                for name, batch in groups:
                    ops_map.setdefault(name, []).append(batch)
                line = (
                    json.dumps({"seq": self._seq, "ops": ops_map, "marks": marks})
                    + "\n"
                )
                self._crash_point("commit.before-append")
                if self._faults.fire("commit.torn-append"):
                    self._journal_handle.write(line[: max(1, len(line) // 2)])
                    self._journal_handle.flush()
                    self._fail("commit.torn-append")
                self._journal_handle.write(line)
                self._journal_handle.flush()
                self._crash_point("commit.after-append")
                if self._fsync:
                    os.fsync(self._journal_handle.fileno())
                self._crash_point("commit.after-fsync")
                self._obs.metrics.inc("storage.journal_bytes", len(line))
        self._obs.metrics.inc("storage.commits")
        self._ingested.update(marks)

    # -- checkpoint (log compaction) --------------------------------------

    def add_checkpoint_step(self, step) -> None:
        """Register a zero-argument callable to run after every
        successful checkpoint (feed snapshot publication, cache
        rebuilds).  Steps run *outside* the engine lock -- they may do
        their own I/O -- and are skipped when the checkpoint itself
        crashed (the ``checkpoint.feeds-snapshot`` crash point models
        dying in that window; recovery simply re-runs the steps at the
        next checkpoint)."""
        with self.lock:
            self._checkpoint_steps.append(step)

    def checkpoint(self) -> None:
        """Compact: snapshot every participant, start a fresh journal,
        and atomically swap the manifest to the new generation."""
        if self.path is None:
            with self.lock:
                self._check_usable()
                self._staged = []  # effects live in memory only anyway
                steps = list(self._checkpoint_steps)
            for step in steps:
                step()
            return
        with self.lock:
            self._check_usable()
            with self._obs.tracer.span(
                "storage.checkpoint", generation=self._generation + 1
            ) as span:
                self._checkpoint_locked()
            self._obs.metrics.observe("storage.checkpoint_seconds", span.duration)
            self._crash_point("checkpoint.feeds-snapshot")
            steps = list(self._checkpoint_steps)
        for step in steps:
            step()

    def _checkpoint_locked(self) -> None:
        """The checkpoint body (caller holds the lock and the span)."""
        self._crash_point("checkpoint.begin")
        new_generation = self._generation + 1
        snapshot = {
            "seq": self._seq,
            "ingested": sorted(self._ingested),
            "stores": {
                name: participant.snapshot_data()
                for name, participant in sorted(self._participants.items())
            },
        }
        payload = json.dumps(snapshot)
        snapshot_name = self._snapshot_name(new_generation)
        if self._faults.fire("checkpoint.torn-snapshot"):
            (self.path / (snapshot_name + ".tmp")).write_text(
                payload[: max(1, len(payload) // 2)], encoding="utf-8"
            )
            self._fail("checkpoint.torn-snapshot")
        atomic_write_text(
            self.path / snapshot_name, payload, fsync=self._fsync
        )
        journal_name = self._journal_name(new_generation)
        (self.path / journal_name).touch()
        self._crash_point("checkpoint.after-snapshot")
        if self._faults.fire("checkpoint.torn-manifest"):
            (self.path / (self.MANIFEST + ".tmp")).write_text(
                '{"generation": ', encoding="utf-8"
            )
            self._fail("checkpoint.torn-manifest")
        self._generation = new_generation
        self._write_manifest(snapshot=snapshot_name)
        self._crash_point("checkpoint.after-manifest")
        self._journal_handle.close()
        self._journal_path = self.path / journal_name
        self._journal_handle = self._journal_path.open("a", encoding="utf-8")
        # snapshot captured the staged ops' in-memory effects
        self._staged = []
        self._sweep_stale_generations()
        self._crash_point("checkpoint.after-cleanup")

    def _write_manifest(self, snapshot: str | None) -> None:
        manifest = {
            "generation": self._generation,
            "snapshot": snapshot,
            "journal": self._journal_name(self._generation),
            "participants": sorted(self._participants),
        }
        atomic_write_text(
            self._manifest_path(), json.dumps(manifest), fsync=self._fsync
        )

    def _sweep_stale_generations(self) -> None:
        """Remove snapshot/journal files from other generations (debris
        of a crashed checkpoint; the manifest is the source of truth)."""
        keep = {
            self._snapshot_name(self._generation),
            self._journal_name(self._generation),
            self.MANIFEST,
        }
        for candidate in self.path.iterdir():
            name = candidate.name
            if name in keep:
                continue
            if name.startswith(("snapshot-", "journal-")) or name.endswith(".tmp"):
                candidate.unlink()
        if self._fsync:
            fsync_directory(self.path)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Flush staged ops (when healthy) and release the journal."""
        with self.lock:
            if self._closed:
                return
            if not self._failed and self._staged and self._journal_handle is not None:
                self.flush()
            self._closed = True
            if self._journal_handle is not None:
                self._journal_handle.close()
                self._journal_handle = None

    def __enter__(self) -> "StorageEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


__all__ = [
    "EngineTransaction",
    "Participant",
    "StorageEngine",
    "StorageError",
]
