"""Deterministic crash-point fault injection.

Every durability-critical boundary in the storage engine is named a
:data:`CRASH_POINTS` entry.  A :class:`CrashInjector` arms exactly one
of them (optionally the *n*-th time it is reached) and raises
:class:`InjectedCrash` there, simulating the process dying at that
instant.  Because the injector is configured explicitly (or derived
from a seed), every recovery test is reproducible: the same point, the
same hit, the same torn bytes.

Two special "torn" points make the engine leave *partial* bytes behind
before dying -- half a journal line, half a snapshot -- exercising the
recovery paths a clean kill cannot reach.
"""

from __future__ import annotations

import random


class InjectedCrash(RuntimeError):
    """A simulated process death raised at an armed crash point."""

    def __init__(self, point: str):
        super().__init__(f"injected crash at {point!r}")
        self.point = point


#: Every commit/checkpoint boundary the engine can die at, in the order
#: the code reaches them.  Tests iterate this matrix exhaustively.
CRASH_POINTS: tuple[str, ...] = (
    "commit.before-append",   # nothing reached the journal
    "commit.torn-append",     # half a journal line, no newline
    "commit.after-append",    # full line written+flushed, fsync skipped
    "commit.after-fsync",     # commit durable, in-memory apply discarded
    "checkpoint.begin",       # checkpoint requested, nothing written
    "checkpoint.torn-snapshot",   # partial snapshot temp file left behind
    "checkpoint.after-snapshot",  # new snapshot durable, manifest still old
    "checkpoint.torn-manifest",   # partial manifest temp file left behind
    "checkpoint.after-manifest",  # manifest swapped, old generation not yet removed
    "checkpoint.after-cleanup",   # checkpoint fully complete
    "checkpoint.feeds-snapshot",  # post-checkpoint feed snapshots about to run
)


class CrashInjector:
    """Arms one crash point; fires on its ``at_hit``-th occurrence."""

    def __init__(self, point: str, at_hit: int = 1):
        if point not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {point!r}; known: {list(CRASH_POINTS)}"
            )
        if at_hit < 1:
            raise ValueError("at_hit is 1-based")
        self.point = point
        self.at_hit = at_hit
        self.hits = 0
        self.fired = False

    @classmethod
    def seeded(cls, seed: int, max_hit: int = 4) -> "CrashInjector":
        """Derive a reproducible (point, hit) pair from a seed."""
        rng = random.Random(f"crash-injector-{seed}")
        return cls(rng.choice(CRASH_POINTS), at_hit=rng.randint(1, max_hit))

    def fire(self, point: str) -> bool:
        """Record reaching ``point``; True when the armed crash is due."""
        if self.fired or point != self.point:
            return False
        self.hits += 1
        if self.hits >= self.at_hit:
            self.fired = True
            return True
        return False


class NoFaults:
    """The null injector: never fires."""

    def fire(self, point: str) -> bool:
        del point
        return False


NO_FAULTS = NoFaults()

__all__ = [
    "CRASH_POINTS",
    "CrashInjector",
    "InjectedCrash",
    "NO_FAULTS",
    "NoFaults",
]
