"""Unified transactional storage (crash-consistent cross-store commits).

This package owns *all* persistence in the reproduction:

* :mod:`repro.storage.atomic` -- the fsync'd atomic-write helpers every
  file write in the repo must go through (lint: ``store/raw-atomic-write``).
* :mod:`repro.storage.faults` -- deterministic crash-point injection.
* :mod:`repro.storage.engine` -- the :class:`StorageEngine` that
  coordinates the property graph, search index, crawl state and SQL
  mirror under one journal with atomic cross-store commits and
  exactly-once ingest markers.
"""

from repro.storage.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    fsync_directory,
)
from repro.storage.engine import (
    EngineTransaction,
    Participant,
    StorageEngine,
    StorageError,
)
from repro.storage.faults import (
    CRASH_POINTS,
    CrashInjector,
    InjectedCrash,
    NO_FAULTS,
    NoFaults,
)

__all__ = [
    "CRASH_POINTS",
    "CrashInjector",
    "EngineTransaction",
    "InjectedCrash",
    "NO_FAULTS",
    "NoFaults",
    "Participant",
    "StorageEngine",
    "StorageError",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "fsync_directory",
]
