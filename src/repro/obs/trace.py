"""Structured tracing: hierarchical spans on the injected clock.

A :class:`Span` measures one operation (a fetch, a pipeline stage, a
storage commit) with a name, start/end timestamps, JSON-safe attributes
and an optional parent, forming per-report trees such as::

    run
    └── crawl
        └── crawl.fetch  url=... source=...

Spans are timed by the :class:`~repro.runtime.Clock` the tracer was
built with, so a run under ``--clock virtual`` produces *deterministic*
timestamps and the exported trace is byte-identical across runs with
the same seed -- the property the golden-trace tests pin down.

Two sinks:

* a bounded in-memory ring buffer (``export()`` / the ``/trace``
  endpoint) holding the most recent finished spans;
* a JSONL file (``write_jsonl``) persisted through the fsync'd
  ``repro.storage.atomic_write_text`` helper.

The export is *canonical*: spans are sorted by ``(start, end, name,
attrs)`` and renumbered in depth-first preorder, so thread-completion
races at identical virtual instants cannot reorder the output.

The default tracer everywhere is :data:`NULL_TRACER`, whose ``span()``
returns a shared no-op span -- instrumentation costs one method call
and an empty context-manager enter/exit when observability is off.
"""

from __future__ import annotations

import collections
import json
import threading

from repro.runtime import REAL_CLOCK, Clock, named_lock


class Span:
    """One timed operation; use as a context manager."""

    __slots__ = ("name", "attrs", "start", "end", "parent", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, parent: "Span | None", attrs: dict):
        self._tracer = tracer
        self.name = name
        self.parent = parent
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def set(self, key: str, value) -> "Span":
        """Attach a JSON-safe attribute; returns self for chaining."""
        self.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        self._tracer._begin(self)
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._finish(self)
        return False


class NullSpan:
    """Shared no-op span: the disabled-tracing fast path."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    start = 0.0
    end = 0.0
    duration = 0.0

    def set(self, key: str, value) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


NULL_SPAN = NullSpan()


class Tracer:
    """Collects finished spans into a bounded ring buffer.

    Parameters
    ----------
    clock:
        Timestamp source.  Inject the deployment's clock so virtual-time
        runs emit deterministic traces.
    ring:
        Maximum finished spans retained in memory; older spans are
        evicted (their children export with ``parent: null``).
    """

    enabled = True

    def __init__(self, clock: Clock | None = None, ring: int = 8192):
        self.clock = clock if clock is not None else REAL_CLOCK
        self._finished: collections.deque[Span] = collections.deque(maxlen=ring)
        self._open: dict[int, Span] = {}
        self._lock = named_lock("obs.tracer")
        self._local = threading.local()
        #: Optional ``hook(span)`` invoked for every finished span,
        #: outside the tracer lock (the health engine tails the stream
        #: through this; its callback takes its own lock).
        self.on_finish = None

    # -- span lifecycle ---------------------------------------------------

    def span(self, name: str, parent: "Span | None" = None, **attrs) -> Span:
        """Create a span.  ``parent`` overrides the thread-local current
        span (required when the child runs on a different thread)."""
        if parent is not None and not isinstance(parent, Span):
            parent = None  # a NullSpan handed across an obs boundary
        return Span(self, name, parent, attrs)

    def current(self) -> Span | None:
        """The innermost span open on *this* thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _begin(self, span: Span) -> None:
        if span.parent is None:
            span.parent = self.current()
        span.start = self.clock.now()
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)
        with self._lock:
            self._open[id(span)] = span

    def _finish(self, span: Span) -> None:
        span.end = self.clock.now()
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # out-of-order close (defensive)
            stack.remove(span)
        with self._lock:
            self._open.pop(id(span), None)
            self._finished.append(span)
        hook = self.on_finish
        if hook is not None:
            hook(span)

    # -- introspection ----------------------------------------------------

    @property
    def open_span_count(self) -> int:
        with self._lock:
            return len(self._open)

    def open_spans(self) -> list[Span]:
        with self._lock:
            return list(self._open.values())

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    # -- export -----------------------------------------------------------

    def export(self) -> list[dict]:
        """Finished spans as a canonical list of JSON-safe records.

        Roots and siblings are ordered by ``(start, end, name, attrs)``
        and ids are assigned in depth-first preorder, so the export is
        independent of thread completion order.  A span whose parent was
        evicted from the ring exports as a root (``parent: null``).
        """
        with self._lock:
            finished = list(self._finished)
        included = {id(span) for span in finished}
        children: dict[int, list[Span]] = {}
        roots: list[Span] = []
        for span in finished:
            if span.parent is not None and id(span.parent) in included:
                children.setdefault(id(span.parent), []).append(span)
            else:
                roots.append(span)

        def order(span: Span):
            return (
                span.start,
                span.end,
                span.name,
                json.dumps(span.attrs, sort_keys=True, default=str),
            )

        records: list[dict] = []

        def visit(span: Span, parent_id: int | None) -> None:
            span_id = len(records) + 1
            records.append(
                {
                    "id": span_id,
                    "parent": parent_id,
                    "name": span.name,
                    "start": span.start,
                    "end": span.end,
                    "attrs": {key: span.attrs[key] for key in sorted(span.attrs)},
                }
            )
            for child in sorted(children.get(id(span), []), key=order):
                visit(child, span_id)

        for root in sorted(roots, key=order):
            visit(root, None)
        return records

    def export_jsonl(self) -> str:
        """The canonical export as JSON-lines text (one span per line)."""
        return "".join(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            for record in self.export()
        )

    def write_jsonl(self, path) -> None:
        """Persist the trace to ``path`` via the atomic-write helper."""
        # imported lazily: repro.storage pulls in the engine, which
        # imports repro.obs -- a module-level import here would cycle
        from repro.storage.atomic import atomic_write_text

        atomic_write_text(path, self.export_jsonl())

    def profile(self, top: int = 10) -> dict:
        """Self-time profile of the ring buffer (``GET /profile``).

        Delegates to :func:`repro.obs.profile.profile_dict` over the
        canonical export, so the result is deterministic under a
        virtual clock.
        """
        from repro.obs.profile import profile_dict

        return profile_dict(self.export(), top=top)


class NullTracer:
    """Disabled tracing: every ``span()`` is the shared no-op span."""

    enabled = False
    __slots__ = ()

    def span(self, name: str, parent=None, **attrs) -> NullSpan:
        return NULL_SPAN

    def current(self) -> None:
        return None

    @property
    def open_span_count(self) -> int:
        return 0

    def open_spans(self) -> list:
        return []

    def clear(self) -> None:
        return None

    def export(self) -> list[dict]:
        return []

    def export_jsonl(self) -> str:
        return ""

    def write_jsonl(self, path) -> None:
        from repro.storage.atomic import atomic_write_text

        atomic_write_text(path, "")

    def profile(self, top: int = 10) -> dict:
        from repro.obs.profile import profile_dict

        return profile_dict([], top=top)


NULL_TRACER = NullTracer()

__all__ = ["NULL_SPAN", "NULL_TRACER", "NullSpan", "NullTracer", "Span", "Tracer"]
