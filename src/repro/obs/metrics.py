"""Deterministic metrics registry: counters, gauges, histograms.

Everything the system counts flows through one
:class:`MetricsRegistry`: reports crawled per source, entities per
type, journal bytes, checkpoint durations.  Design constraints:

* **Determinism.**  Counters and gauges are plain integer/float updates
  under one lock; identical seeded runs produce identical snapshots for
  every integer-valued series (histogram *sums* of measured durations
  are only as deterministic as the clock that produced them).
* **Fixed buckets.**  Histograms use a fixed bucket ladder chosen at
  registry construction -- no dynamic resizing, so bucket boundaries in
  two snapshots are always comparable.
* **Label keys.**  A series is keyed by its sorted ``k=v`` label string
  (``source=ThreatPedia``); the empty string keys the unlabelled
  series.
* **Snapshots.**  :meth:`snapshot` returns a JSON-safe, sorted, nested
  dict -- the payload of ``SystemReport.metrics``, ``--metrics`` and
  the ``/metrics`` endpoint.

The default everywhere is :data:`NULL_METRICS`, whose updates are
no-ops, so instrumented hot paths cost one method call when
observability is off.
"""

from __future__ import annotations

import threading

from repro.runtime.locks import named_lock

#: Default histogram bucket upper bounds (seconds); +Inf is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0)


def label_key(labels: dict) -> str:
    """Canonical series key: sorted ``k=v`` pairs joined by commas."""
    return ",".join(f"{key}={labels[key]}" for key in sorted(labels))


class _Histogram:
    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: tuple[float, ...]):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        slot = len(self.bounds)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                slot = index
                break
        self.counts[slot] += 1
        self.count += 1
        self.total += value

    def to_dict(self) -> dict:
        buckets = {
            str(bound): self.counts[index]
            for index, bound in enumerate(self.bounds)
        }
        buckets["+Inf"] = self.counts[-1]
        return {"buckets": buckets, "count": self.count, "sum": self.total}


class MetricsRegistry:
    """Thread-safe named counters, gauges and fixed-bucket histograms.

    Parameters
    ----------
    buckets:
        Optional per-histogram-name bucket-ladder overrides; histograms
        not listed use :data:`DEFAULT_BUCKETS`.
    """

    enabled = True

    def __init__(self, buckets: dict[str, tuple[float, ...]] | None = None):
        self._lock = named_lock("obs.metrics")
        self._counters: dict[str, dict[str, int]] = {}
        self._gauges: dict[str, dict[str, float]] = {}
        self._histograms: dict[str, dict[str, _Histogram]] = {}
        self._buckets = dict(buckets or {})

    def inc(self, name: str, value: int = 1, **labels) -> None:
        """Add to a counter (zero increments are dropped)."""
        if not value:
            return
        key = label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge to the latest observed value."""
        key = label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = value

    def max_gauge(self, name: str, value: float, **labels) -> None:
        """Raise a high-water-mark gauge (never lowers it)."""
        key = label_key(labels)
        with self._lock:
            series = self._gauges.setdefault(name, {})
            if value > series.get(key, float("-inf")):
                series[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record a sample into a fixed-bucket histogram."""
        key = label_key(labels)
        with self._lock:
            series = self._histograms.setdefault(name, {})
            histogram = series.get(key)
            if histogram is None:
                histogram = series[key] = _Histogram(
                    self._buckets.get(name, DEFAULT_BUCKETS)
                )
            histogram.observe(value)

    # -- readout ----------------------------------------------------------

    def counter(self, name: str, **labels) -> int:
        """Current value of one counter series (0 when never bumped)."""
        with self._lock:
            return self._counters.get(name, {}).get(label_key(labels), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter across all of its label series."""
        with self._lock:
            return sum(self._counters.get(name, {}).values())

    def names(self) -> list[str]:
        """Sorted names of every metric that has recorded data."""
        with self._lock:
            return sorted(
                set(self._counters) | set(self._gauges) | set(self._histograms)
            )

    def snapshot(self) -> dict:
        """JSON-safe sorted snapshot of every series."""
        with self._lock:
            return {
                "counters": {
                    name: dict(sorted(series.items()))
                    for name, series in sorted(self._counters.items())
                },
                "gauges": {
                    name: dict(sorted(series.items()))
                    for name, series in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        key: histogram.to_dict()
                        for key, histogram in sorted(series.items())
                    }
                    for name, series in sorted(self._histograms.items())
                },
            }


class NullMetrics:
    """Disabled metrics: every update is a no-op."""

    enabled = False
    __slots__ = ()

    def inc(self, name: str, value: int = 1, **labels) -> None:
        return None

    def set_gauge(self, name: str, value: float, **labels) -> None:
        return None

    def max_gauge(self, name: str, value: float, **labels) -> None:
        return None

    def observe(self, name: str, value: float, **labels) -> None:
        return None

    def counter(self, name: str, **labels) -> int:
        return 0

    def counter_total(self, name: str) -> int:
        return 0

    def names(self) -> list[str]:
        return []

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "label_key",
]
