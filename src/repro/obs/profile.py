"""Deterministic profiling over canonical span traces.

The tracer's export answers "what happened"; this module answers
"where did the time go".  A parent span's duration *includes* its
children, so ranking raw durations makes every ancestor look like a
hotspot.  Profiling starts from **self time** -- a span's duration
minus the durations of its direct children (clamped at zero: children
running concurrently on other threads can overlap their parent) -- and
aggregates it three ways:

* per span name (:func:`aggregate` / :func:`hotspots`): the table an
  operator ranks by to find the hot layer;
* per stack path (:func:`collapsed_stacks` / :func:`render_folded`):
  canonical Brendan-Gregg collapsed-stack lines, one
  ``root;child;leaf <microseconds>`` per path, ready for any
  flamegraph renderer;
* per unit of work (:func:`unit_costs`): seconds/report from the
  ``report`` correlation attribute and seconds per produced unit
  (mentions, relations, records...) from the work-count attributes the
  spans already carry -- the numbers the E24 perf-baseline gate
  ratchets.

Everything is a pure function of the canonical export
(:meth:`repro.obs.trace.Tracer.export`), so a seeded virtual-clock run
yields byte-identical profile artefacts -- folded file included --
across runs.  Consumers: ``repro profile`` (offline), ``GET /profile``
(live ring buffer) and ``stats --from-trace`` (the ``self_s`` column).
"""

from __future__ import annotations

import json

#: Span attributes counting units of work, each tracked separately in
#: :func:`unit_costs` (seconds/token for NER, seconds/mention, ...).
UNIT_ATTRS = (
    "tokens", "mentions", "relations", "records", "items", "stored",
)


def annotate(spans: list[dict]) -> list[dict]:
    """Span records augmented with ``total_s``, ``self_s`` and ``path``.

    ``path`` is the semicolon-joined name chain from the span's root
    (the collapsed-stack identity).  Self time clamps at zero: children
    that ran concurrently on other threads may overlap their parent, in
    which case the parent's exclusive time is unknowable and zero is
    the conservative answer (the children still carry their own time).
    """
    by_id = {span["id"]: span for span in spans}
    child_total: dict[object, float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent in by_id:
            child_total[parent] = child_total.get(parent, 0.0) + max(
                0.0, span["end"] - span["start"]
            )
    out: list[dict] = []
    paths: dict[object, str] = {}
    for span in spans:
        parts = [span["name"]]
        walker = span
        while (
            walker.get("parent") is not None and walker["parent"] in by_id
        ):
            walker = by_id[walker["parent"]]
            parts.append(walker["name"])
        path = ";".join(reversed(parts))
        paths[span["id"]] = path
        total = max(0.0, span["end"] - span["start"])
        record = dict(span)
        record["total_s"] = total
        record["self_s"] = max(0.0, total - child_total.get(span["id"], 0.0))
        record["path"] = path
        out.append(record)
    return out


def aggregate(spans: list[dict]) -> dict[str, dict]:
    """Per-name aggregation: count, total, self, max self (sorted)."""
    table: dict[str, dict] = {}
    for span in annotate(spans):
        entry = table.setdefault(
            span["name"],
            {"count": 0, "total_s": 0.0, "self_s": 0.0, "max_self_s": 0.0},
        )
        entry["count"] += 1
        entry["total_s"] += span["total_s"]
        entry["self_s"] += span["self_s"]
        entry["max_self_s"] = max(entry["max_self_s"], span["self_s"])
    return {name: table[name] for name in sorted(table)}


def hotspots(spans: list[dict], top: int = 10) -> list[dict]:
    """Top-``top`` span names ranked by aggregate self time.

    Ties (everything, under a virtual clock) break by name, so the
    ranking is deterministic.  ``self_pct`` is the share of the whole
    trace's self time (which always sums to the root totals).
    """
    table = aggregate(spans)
    total_self = sum(entry["self_s"] for entry in table.values())
    ranked = sorted(
        table.items(), key=lambda item: (-item[1]["self_s"], item[0])
    )
    out = []
    for name, entry in ranked[: max(0, top)]:
        out.append(
            {
                "name": name,
                "count": entry["count"],
                "self_s": entry["self_s"],
                "total_s": entry["total_s"],
                "self_pct": (
                    100.0 * entry["self_s"] / total_self if total_self else 0.0
                ),
            }
        )
    return out


def unit_costs(spans: list[dict]) -> dict[str, dict]:
    """Per-name unit costs: seconds/report and seconds/unit.

    ``reports`` counts distinct ``report`` correlation attributes and
    ``self_per_report_s`` divides aggregate self time by it.  ``units``
    sums each work-count attribute (:data:`UNIT_ATTRS`) separately --
    tokens are not mentions -- and ``self_per_unit_s`` carries one cost
    per attribute seen (so ``extract.ner`` reports seconds/token *and*
    seconds/mention).  These are the per-stage figures the committed
    ``perf_baseline.json`` pins for the E24 regression gate.
    """
    table: dict[str, dict] = {}
    report_sets: dict[str, set] = {}
    for span in annotate(spans):
        name = span["name"]
        entry = table.setdefault(
            name, {"count": 0, "total_s": 0.0, "self_s": 0.0, "units": {}}
        )
        entry["count"] += 1
        entry["total_s"] += span["total_s"]
        entry["self_s"] += span["self_s"]
        attrs = span.get("attrs", {})
        report = attrs.get("report")
        if report is not None:
            report_sets.setdefault(name, set()).add(str(report))
        for key in UNIT_ATTRS:
            value = attrs.get(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                entry["units"][key] = entry["units"].get(key, 0) + int(value)
    out: dict[str, dict] = {}
    for name in sorted(table):
        entry = table[name]
        reports = len(report_sets.get(name, ()))
        units = {key: entry["units"][key] for key in sorted(entry["units"])}
        out[name] = {
            "count": entry["count"],
            "total_s": entry["total_s"],
            "self_s": entry["self_s"],
            "reports": reports,
            "self_per_report_s": (
                entry["self_s"] / reports if reports else None
            ),
            "units": units,
            "self_per_unit_s": {
                key: (entry["self_s"] / total if total else None)
                for key, total in units.items()
            },
        }
    return out


def collapsed_stacks(spans: list[dict]) -> dict[str, int]:
    """Self time per stack path, in integer microseconds.

    Values are integers because the collapsed-stack format's consumers
    (``flamegraph.pl`` and friends) expect sample counts; microsecond
    resolution keeps sub-millisecond operator work visible while
    rounding identically across platforms.
    """
    folded: dict[str, int] = {}
    for span in annotate(spans):
        folded[span["path"]] = folded.get(span["path"], 0) + int(
            round(span["self_s"] * 1e6)
        )
    return folded


def render_folded(spans: list[dict]) -> str:
    """Canonical collapsed-stack text: sorted, one path per line."""
    folded = collapsed_stacks(spans)
    return "".join(
        f"{path} {folded[path]}\n" for path in sorted(folded)
    )


def profile_dict(spans: list[dict], top: int = 10) -> dict:
    """The full profile as one JSON-safe dict (CLI ``--json``,
    ``GET /profile``)."""
    return {
        "spans": len(spans),
        "names": aggregate(spans),
        "unit_costs": unit_costs(spans),
        "hotspots": hotspots(spans, top=top),
    }


def render_profile(spans: list[dict], top: int = 10) -> str:
    """Text hotspot table ranked by self time (the CLI default view)."""
    if not spans:
        return "trace is empty"
    table = aggregate(spans)
    ranked = hotspots(spans, top=top)
    width = max(len(entry["name"]) for entry in ranked)
    total_self = sum(entry["self_s"] for entry in table.values())
    lines = [
        f"{len(spans)} spans, {len(table)} distinct names, "
        f"{total_self:.4f}s total self time",
        f"{'span':<{width}}  {'count':>6}  {'self_s':>9}  {'total_s':>9}  "
        f"{'self%':>6}",
    ]
    for entry in ranked:
        lines.append(
            f"{entry['name']:<{width}}  {entry['count']:>6}  "
            f"{entry['self_s']:>9.4f}  {entry['total_s']:>9.4f}  "
            f"{entry['self_pct']:>6.1f}"
        )
    return "\n".join(lines)


def export_folded(spans: list[dict], obs=None) -> str:
    """The folded flamegraph text, under a ``profile.export`` span."""
    if obs is None:
        from repro.obs import NO_OBS

        obs = NO_OBS
    with obs.tracer.span("profile.export", format="folded") as span:
        text = render_folded(spans)
        span.set("lines", text.count("\n"))
    obs.metrics.inc("profile.exports", format="folded")
    return text


def export_profile(spans: list[dict], obs=None, top: int = 10) -> dict:
    """The profile dict, under a ``profile.export`` span (the live
    ``GET /profile`` endpoint routes through here)."""
    if obs is None:
        from repro.obs import NO_OBS

        obs = NO_OBS
    with obs.tracer.span("profile.export", format="json") as span:
        payload = profile_dict(spans, top=top)
        span.set("names", len(payload["names"]))
    obs.metrics.inc("profile.exports", format="json")
    return payload


def write_folded(path, spans: list[dict], obs=None) -> None:
    """Persist the folded export via the atomic-write helper."""
    # imported lazily: repro.storage imports repro.obs (see
    # Tracer.write_jsonl for the same cycle note)
    from repro.storage.atomic import atomic_write_text

    atomic_write_text(path, export_folded(spans, obs=obs))


def load_baseline(path) -> dict:
    """Parse a committed ``perf_baseline.json`` (the E24 gate input)."""
    return json.loads(path.read_text(encoding="utf-8"))


__all__ = [
    "UNIT_ATTRS",
    "aggregate",
    "annotate",
    "collapsed_stacks",
    "export_folded",
    "export_profile",
    "hotspots",
    "load_baseline",
    "profile_dict",
    "render_folded",
    "render_profile",
    "unit_costs",
    "write_folded",
]
