"""Online health engine: SLO evaluation, alerting and quarantine feedback.

The paper's scheduler only reboots *crashed* crawlers; a source that is
up but rotten -- timing out, serving empty pages, feeding the checker
garbage -- keeps burning worker time forever (a textbook *gray
failure*).  This module closes the observability loop the tracer and
metrics registry opened: it tails the span stream and the
:class:`~repro.obs.MetricsRegistry`, evaluates declarative SLO rules
over sliding windows, and feeds per-source verdicts back into crawler
policy.

Three layers:

* :class:`SlidingWindow` -- per-``(stream, key)`` event windows built
  from timestamps the system already read (span start/end), plus
  periodic counter samples.  No new clock reads are needed to
  aggregate, so virtual-clock runs yield byte-identical verdicts.
* :class:`HealthRule` + the rule evaluator -- declarative thresholds
  (error ratios, windowed p95 latencies, stalls) with hysteresis
  (``fire_after`` consecutive breaches to fire, ``resolve_after``
  clean evaluations to resolve) producing firing/resolved
  :class:`Alert` records.
* The per-source state machine -- ``healthy -> degraded ->
  quarantined``: degraded sources get multiplied rate-limit intervals,
  quarantined sources are skipped by the crawl engine and re-probed
  with exponential backoff through a canonical probe URL, so the probe
  fetch is identical no matter which worker performs it.

Determinism contract: evaluation for the window ending at deadline
``D`` uses only events with ``end < D``.  Under a virtual clock, time
only advances once every worker is parked, so by the time any thread
observes ``now() >= D`` every such event has been recorded -- the
evaluated set is exactly reproducible.  Verdicts take effect only for
admissions *strictly after* the evaluation instant, so two workers
racing at the same virtual instant always see the same policy.

See OBSERVABILITY.md ("Health and alerting") for the rule syntax, the
state machine and a worked brownout walkthrough.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import asdict, dataclass, field, replace

from repro.obs.metrics import DEFAULT_BUCKETS
from repro.runtime import Clock, named_lock

#: Source states, in escalation order.
HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"

_STATE_LEVEL = {HEALTHY: 0, DEGRADED: 1, QUARANTINED: 2}


def bucket_percentile(
    counts: list[int], bounds: tuple[float, ...], q: float
) -> float:
    """Percentile estimate from fixed-bucket counts (upper-bound rule).

    ``counts`` has one slot per bound plus the ``+Inf`` slot.  The
    estimate is the upper bound of the bucket containing the q-th
    sample (the last finite bound for the ``+Inf`` slot), mirroring how
    Prometheus-style fixed ladders are read.  Returns 0.0 when empty.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0
    for index, count in enumerate(counts):
        seen += count
        if seen >= rank and count:
            if index < len(bounds):
                return bounds[index]
            return bounds[-1] if bounds else float("inf")
    return bounds[-1] if bounds else float("inf")


@dataclass(frozen=True)
class HealthRule:
    """One declarative SLO rule.

    Attributes
    ----------
    name:
        Stable rule id (appears in alerts and the report).
    signal:
        What to measure: ``error_ratio`` (failed / total fetches per
        source), ``fetch_p95`` (windowed p95 fetch seconds per source),
        ``check_reject_ratio`` (checker rejections / checked reports,
        from the metrics registry), ``frontier_stall`` (seconds since
        the last fetch completed while a crawl is active) or
        ``commit_p95`` (windowed p95 storage-commit seconds).
    threshold:
        Breach when the signal exceeds this value.
    window:
        Sliding-window length in seconds.
    min_samples:
        Minimum events in the window before the rule may breach
        (ratio/percentile signals; prevents one bad fetch from firing).
    fire_after / resolve_after:
        Hysteresis: consecutive breaching evaluations before the alert
        fires, and consecutive clean ones before it resolves.
    per_source:
        Evaluate one series per crawl source (feeding the state
        machine) or a single system-wide series (alert only).
    severity:
        Recorded on the alert (``degraded`` rules drive escalation).
    """

    name: str
    signal: str
    threshold: float
    window: float = 60.0
    min_samples: int = 4
    fire_after: int = 1
    resolve_after: int = 2
    per_source: bool = True
    severity: str = DEGRADED

    def to_dict(self) -> dict:
        return dict(sorted(asdict(self).items()))


#: The default ruleset (override via ``SystemConfig.health_rules``).
DEFAULT_RULES: tuple[HealthRule, ...] = (
    HealthRule("source-error-ratio", "error_ratio", threshold=0.3,
               window=60.0, min_samples=4, fire_after=1, resolve_after=2),
    HealthRule("source-fetch-latency", "fetch_p95", threshold=5.0,
               window=60.0, min_samples=4, fire_after=2, resolve_after=2),
    HealthRule("checker-rejection-ratio", "check_reject_ratio",
               threshold=0.5, window=300.0, min_samples=4, fire_after=1,
               resolve_after=1, per_source=False),
    HealthRule("frontier-stall", "frontier_stall", threshold=30.0,
               window=60.0, min_samples=1, fire_after=1, resolve_after=1,
               per_source=False),
    HealthRule("storage-commit-latency", "commit_p95", threshold=2.5,
               window=300.0, min_samples=4, fire_after=1, resolve_after=1,
               per_source=False),
)

#: Reserved ``health_rules`` keys configuring the engine itself.
_ENGINE_KEYS = frozenset(
    {
        "interval",
        "quarantine_after",
        "probe_backoff_base",
        "probe_backoff_max",
        "probe_timeout",
        "degraded_rate_multiplier",
        "degraded_min_interval",
    }
)


def rules_from_config(
    overrides: dict | None, base: tuple[HealthRule, ...] = DEFAULT_RULES
) -> tuple[tuple[HealthRule, ...], dict]:
    """Apply dict overrides to the default ruleset.

    ``overrides`` maps rule name to a dict of :class:`HealthRule`
    fields (an unknown name with a ``signal`` key defines a new rule;
    ``{"enabled": false}`` drops a rule).  An optional ``"engine"``
    entry carries engine parameters (``interval``,
    ``quarantine_after``, ``probe_backoff_base``, ...) and is returned
    separately.  Raises ``ValueError`` for unknown names or fields.
    """
    rules = {rule.name: rule for rule in base}
    engine: dict = {}
    for name, fields in (overrides or {}).items():
        if name == "engine":
            unknown = set(fields) - _ENGINE_KEYS
            if unknown:
                raise ValueError(
                    f"unknown health engine keys: {sorted(unknown)}"
                )
            engine = dict(fields)
            continue
        if not isinstance(fields, dict):
            raise ValueError(f"override for rule {name!r} must be a dict")
        fields = dict(fields)
        if fields.pop("enabled", True) is False:
            rules.pop(name, None)
            continue
        if name in rules:
            known = set(HealthRule.__dataclass_fields__)
            unknown = set(fields) - known
            if unknown:
                raise ValueError(
                    f"unknown fields for rule {name!r}: {sorted(unknown)}"
                )
            rules[name] = replace(rules[name], **fields)
        elif "signal" in fields:
            rules[name] = HealthRule(name=name, **fields)
        else:
            raise ValueError(
                f"unknown health rule {name!r} (new rules need a 'signal')"
            )
    return tuple(rules[name] for name in sorted(rules)), engine


def load_rules_file(path) -> dict:
    """Read a rule-override mapping from a JSON or YAML file.

    YAML support is gated on an importable ``yaml`` module; JSON needs
    nothing.  Raises ``ValueError`` with a clear message otherwise.
    """
    from pathlib import Path

    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as error:
            raise ValueError(
                f"{path} is YAML but PyYAML is not installed; "
                "use a JSON rules file instead"
            ) from error
        data = yaml.safe_load(text)
    else:
        data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: health rules file must hold an object")
    return data


@dataclass
class Alert:
    """One firing (or resolved) rule violation."""

    rule: str
    source: str  # "" for system-wide rules
    severity: str
    fired_at: float
    value: float
    threshold: float
    resolved_at: float | None = None
    resolved_value: float | None = None

    @property
    def firing(self) -> bool:
        return self.resolved_at is None

    def to_dict(self) -> dict:
        return {
            "fired_at": self.fired_at,
            "firing": self.firing,
            "resolved_at": self.resolved_at,
            "resolved_value": self.resolved_value,
            "rule": self.rule,
            "severity": self.severity,
            "source": self.source,
            "threshold": self.threshold,
            "value": self.value,
        }


@dataclass
class Admission:
    """Crawl-policy decision for one URL of one source."""

    allow: bool
    state: str = HEALTHY
    probe: bool = False  # fetch the source's canonical probe URL instead
    rate_multiplier: float = 1.0
    min_interval: float = 0.0


class SlidingWindow:
    """Per-``(stream, key)`` event deques pruned to a fixed horizon.

    Events are ``(t, value, ok)`` tuples appended in arrival order and
    queried by half-open or closed time windows; aggregation is
    commutative, so arrival-order races at one virtual instant cannot
    change a verdict.
    """

    def __init__(self, horizon: float):
        self.horizon = horizon
        self._events: dict[tuple[str, str], deque] = {}
        self._last_event_at: float | None = None

    def add(self, stream: str, key: str, t: float, value: float, ok: bool) -> None:
        events = self._events.setdefault((stream, key), deque())
        events.append((t, value, ok))
        if self._last_event_at is None or t > self._last_event_at:
            self._last_event_at = t

    def prune(self, now: float) -> None:
        cutoff = now - self.horizon
        for events in self._events.values():
            while events and events[0][0] < cutoff:
                events.popleft()

    def drop_before(self, stream: str, key: str, t: float) -> None:
        """Forget one series' events older than ``t`` (re-admission)."""
        events = self._events.get((stream, key))
        if events is None:
            return
        while events and events[0][0] < t:
            events.popleft()

    def keys(self, stream: str) -> list[str]:
        return sorted(
            key for (name, key), events in self._events.items()
            if name == stream and events
        )

    def select(
        self, stream: str, key: str, since: float, until: float,
        inclusive: bool = False,
    ) -> list[tuple[float, float, bool]]:
        events = self._events.get((stream, key), ())
        if inclusive:
            return [e for e in events if since <= e[0] <= until]
        return [e for e in events if since <= e[0] < until]

    @property
    def last_event_at(self) -> float | None:
        return self._last_event_at


class _RuleSeries:
    """Hysteresis bookkeeping for one (rule, key) series."""

    __slots__ = ("breaches", "cleans", "alert")

    def __init__(self):
        self.breaches = 0
        self.cleans = 0
        self.alert: Alert | None = None

    @property
    def firing(self) -> bool:
        return self.alert is not None and self.alert.firing


class _SourceState:
    """Escalation state for one crawl source."""

    __slots__ = (
        "state", "since", "since_deadline", "breach_evals",
        "probe_backoff", "probe_at", "probe_pending", "probe_granted_at",
        "multiplier", "prev_multiplier",
    )

    def __init__(self):
        self.state = HEALTHY
        self.since = 0.0           # evaluation instant (grandfathering)
        self.since_deadline = 0.0  # evaluated deadline (reported)
        self.breach_evals = 0
        self.probe_backoff = 0.0
        self.probe_at: float | None = None
        self.probe_pending = False
        self.probe_granted_at: float | None = None
        self.multiplier = 1.0
        self.prev_multiplier = 1.0

    def effective_multiplier(self, now: float) -> float:
        """Multiplier as seen by admissions at instant ``now``.

        Transitions take effect strictly *after* the instant they were
        decided at, so racing admissions at that instant agree.
        """
        return self.multiplier if now > self.since else self.prev_multiplier

    def to_dict(self) -> dict:
        return {
            "probe_at": self.probe_at,
            "probe_backoff": self.probe_backoff,
            "rate_multiplier": self.multiplier,
            "since": self.since_deadline,
            "state": self.state,
        }


class HealthEngine:
    """Evaluate SLO rules over the span/metric stream; emit verdicts.

    Parameters
    ----------
    rules:
        The ruleset (default :data:`DEFAULT_RULES`).
    clock:
        The deployment clock; only used as the timestamp source for the
        offline/final evaluation paths -- online evaluation is driven
        by the admission times the crawl engine already knows.
    obs:
        Observability bundle; verdicts are traced as ``health.verdict``
        spans and counted in ``health.*`` metrics.  The metrics
        registry is also *read* (counter tail) for registry-backed
        signals such as the checker-rejection ratio.
    interval:
        Evaluation period in seconds.
    quarantine_after:
        Consecutive breaching evaluations while degraded before a
        source is quarantined.
    probe_backoff_base / probe_backoff_max:
        Exponential re-admission probe schedule for quarantined
        sources.
    probe_timeout:
        Seconds after a probe grant with no observed fetch before the
        probe is considered lost and re-armed.
    degraded_rate_multiplier / degraded_min_interval:
        Crawl-policy feedback for degraded (and probing) sources: the
        host's politeness interval is raised to at least
        ``degraded_min_interval`` and multiplied.
    """

    def __init__(
        self,
        rules: tuple[HealthRule, ...] = DEFAULT_RULES,
        *,
        clock: Clock | None = None,
        obs=None,
        interval: float = 5.0,
        quarantine_after: int = 3,
        probe_backoff_base: float = 30.0,
        probe_backoff_max: float = 480.0,
        probe_timeout: float = 60.0,
        degraded_rate_multiplier: float = 4.0,
        degraded_min_interval: float = 0.5,
        start: float | None = None,
    ):
        from repro.obs import NO_OBS  # local import: obs imports health

        self.rules = tuple(rules)
        self.clock = clock
        self.obs = obs if obs is not None else NO_OBS
        self.interval = float(interval)
        self.quarantine_after = int(quarantine_after)
        self.probe_backoff_base = float(probe_backoff_base)
        self.probe_backoff_max = float(probe_backoff_max)
        self.probe_timeout = float(probe_timeout)
        self.degraded_rate_multiplier = float(degraded_rate_multiplier)
        self.degraded_min_interval = float(degraded_min_interval)

        horizon = max((rule.window for rule in self.rules), default=60.0)
        self._window = SlidingWindow(horizon)
        self._counter_samples: deque = deque()  # (t, rejected, checked)
        self._series: dict[tuple[str, str], _RuleSeries] = {}
        self._sources: dict[str, _SourceState] = {}
        self._alerts: list[Alert] = []
        self._transitions: list[dict] = []
        self._signals: dict[str, dict[str, float]] = {}
        self._evaluations = 0
        # Anchor the deadline grid at the clock's epoch by default: a
        # real clock reads wall time, and a grid anchored at 0.0 would
        # make the first maybe_evaluate() step through decades of
        # deadlines one interval at a time.
        if start is None:
            start = clock.now() if clock is not None else 0.0
        self._next_deadline = float(start) + self.interval
        self._last_eval_at = float(start)
        self._crawls_active = 0
        self._parent_span = None
        self._listeners: list = []
        # Reentrant: a health.verdict span finishing inside evaluate()
        # re-enters observe_span through the tracer's on_finish hook.
        self._lock = named_lock("obs.health", reentrant=True)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_config(
        cls, overrides: dict | None = None, **kwargs
    ) -> "HealthEngine":
        """Build an engine from ``SystemConfig.health_rules`` overrides."""
        rules, engine_kwargs = rules_from_config(overrides)
        engine_kwargs.update(kwargs)
        return cls(rules, **engine_kwargs)

    # -- event intake ------------------------------------------------------

    @staticmethod
    def _record_fields(record) -> tuple[str, float, float, dict]:
        """(name, start, end, attrs) from a Span or an exported dict."""
        if isinstance(record, dict):
            return (
                record.get("name", ""),
                record.get("start", 0.0),
                record.get("end", 0.0),
                record.get("attrs", {}),
            )
        return record.name, record.start, record.end, record.attrs

    def observe_span(self, record) -> None:
        """Tail one finished span (tracer ``on_finish`` hook).

        Only ``crawl.fetch`` and ``storage.commit`` spans carry health
        signals; everything else returns after one name check.
        """
        name, start, end, attrs = self._record_fields(record)
        if name == "crawl.fetch":
            source = str(attrs.get("source", ""))
            outcome = str(attrs.get("outcome", ""))
            ok = outcome in ("ok", "denied")
            with self._lock:
                self._window.add(
                    "fetch", source, end, max(0.0, end - start), ok
                )
        elif name == "storage.commit":
            with self._lock:
                self._window.add(
                    "commit", "", end, max(0.0, end - start), True
                )

    def crawl_started(self) -> None:
        with self._lock:
            self._crawls_active += 1

    def crawl_finished(self) -> None:
        with self._lock:
            self._crawls_active -= 1

    def bind_parent(self, span):
        """Parent subsequent ``health.verdict`` spans under ``span``.

        Returns the previous parent so callers can restore it; explicit
        parenting keeps the span tree deterministic when evaluations
        trigger on arbitrary worker threads.
        """
        with self._lock:
            previous = self._parent_span
            self._parent_span = span
            return previous

    def on_transition(self, listener) -> None:
        """Register ``listener(source, old_state, new_state, at)``."""
        with self._lock:
            self._listeners.append(listener)

    # -- crawl policy ------------------------------------------------------

    def admit(self, source: str, now: float) -> Admission:
        """Policy decision for one URL of ``source`` at instant ``now``.

        Runs any due evaluations first, so policy is always current.
        Quarantined sources are denied; when their probe backoff has
        expired exactly one denial is upgraded to a probe of the
        source's canonical URL (``Admission.probe``).
        """
        with self._lock:
            self.maybe_evaluate(now)
            state = self._sources.get(source)
            if state is None:
                return Admission(True)
            multiplier = state.effective_multiplier(now)
            min_interval = (
                self.degraded_min_interval if multiplier > 1.0 else 0.0
            )
            if state.state != QUARANTINED or now <= state.since:
                # Transitions bind strictly after their instant, so
                # same-instant admissions agree regardless of order.
                return Admission(
                    True,
                    state=state.state,
                    rate_multiplier=multiplier,
                    min_interval=min_interval,
                )
            if (
                state.probe_at is not None
                and now >= state.probe_at
                and not state.probe_pending
            ):
                state.probe_pending = True
                state.probe_granted_at = now
                self.obs.metrics.inc("health.probes", source=source)
                # The host has been idle throughout quarantine, so the
                # probe runs at base politeness (floored, not multiplied).
                return Admission(
                    False,
                    state=QUARANTINED,
                    probe=True,
                    rate_multiplier=1.0,
                    min_interval=self.degraded_min_interval,
                )
            self.obs.metrics.inc("health.skipped_fetches", source=source)
            return Admission(False, state=QUARANTINED)

    # -- evaluation --------------------------------------------------------

    def sample_counters(self, t: float) -> None:
        """Tail the metrics registry for registry-backed signals."""
        metrics = self.obs.metrics
        rejected = metrics.counter_total("pipeline.reports_rejected")
        checked = (
            metrics.counter("pipeline.items", stage="check", outcome="ok")
            + metrics.counter(
                "pipeline.items", stage="check", outcome="filtered"
            )
        )
        with self._lock:
            self._counter_samples.append((t, rejected, checked))

    def maybe_evaluate(self, now: float) -> int:
        """Run every evaluation whose deadline has passed; returns count."""
        ran = 0
        with self._lock:
            while now >= self._next_deadline:
                self._evaluate(self._next_deadline, now, inclusive=False)
                self._next_deadline += self.interval
                ran += 1
        return ran

    def finalize(self, now: float) -> dict:
        """Evaluate once at ``now`` (closed window) and return the report.

        Called at the end of a run cycle: with no concurrent workers a
        closed window is safe and lets the evaluation see events whose
        timestamp is exactly ``now`` (virtual-clock commits).
        """
        with self._lock:
            self.sample_counters(now)
            self.maybe_evaluate(now)
            self._evaluate(now, now, inclusive=True)
            return self.report()

    def _evaluate(self, deadline: float, now: float, inclusive: bool) -> None:
        """One verdict for the window ending at ``deadline``.

        ``now`` is the instant the evaluation actually runs (>= the
        deadline when triggered lazily by an admission); state changes
        are stamped with it so same-instant admissions grandfather.
        """
        self.sample_counters(deadline if not inclusive else now)
        transitions_before = len(self._transitions)
        alerts_before = sum(1 for alert in self._alerts if alert.firing)
        self._evaluations += 1
        self._last_eval_at = deadline
        self._signals = {}
        breaching_sources: dict[str, list[str]] = {}
        for rule in self.rules:
            values = self._signal_values(rule, deadline, inclusive)
            self._signals[rule.name] = dict(sorted(values.items()))
            keys = set(values)
            # series already tracked keep evaluating even with no data
            keys.update(
                key for (name, key) in self._series if name == rule.name
            )
            for key in sorted(keys):
                value = values.get(key)
                firing = self._update_series(rule, key, value, deadline)
                if firing and rule.per_source:
                    breaching_sources.setdefault(key, []).append(rule.name)
        self._escalate(breaching_sources, deadline, now)
        self._window.prune(deadline - self.interval)
        while (
            self._counter_samples
            and self._counter_samples[0][0]
            < deadline - self._max_window("check_reject_ratio")
        ):
            self._counter_samples.popleft()

        metrics = self.obs.metrics
        metrics.inc("health.evaluations")
        counts = {HEALTHY: 0, DEGRADED: 0, QUARANTINED: 0}
        for state in self._sources.values():
            counts[state.state] += 1
        firing_now = sum(1 for alert in self._alerts if alert.firing)
        with self.obs.tracer.span(
            "health.verdict",
            parent=self._parent_span,
            at=deadline,
            evaluation=self._evaluations,
            firing=firing_now,
            degraded=counts[DEGRADED],
            quarantined=counts[QUARANTINED],
        ) as span:
            if len(self._transitions) > transitions_before:
                span.set(
                    "transitions", len(self._transitions) - transitions_before
                )
            if firing_now != alerts_before:
                span.set("alerts_delta", firing_now - alerts_before)

    def _max_window(self, signal: str) -> float:
        return max(
            (rule.window for rule in self.rules if rule.signal == signal),
            default=300.0,
        )

    def _signal_values(
        self, rule: HealthRule, deadline: float, inclusive: bool
    ) -> dict[str, float]:
        """Current value of ``rule``'s signal for every key with data."""
        since = deadline - rule.window
        if rule.signal == "error_ratio":
            values = {}
            for key in self._window.keys("fetch"):
                events = self._window.select(
                    "fetch", key, since, deadline, inclusive
                )
                if len(events) >= rule.min_samples:
                    errors = sum(1 for _t, _v, ok in events if not ok)
                    values[key] = errors / len(events)
            return values
        if rule.signal == "fetch_p95":
            values = {}
            for key in self._window.keys("fetch"):
                events = self._window.select(
                    "fetch", key, since, deadline, inclusive
                )
                if len(events) >= rule.min_samples:
                    values[key] = self._percentile(
                        [v for _t, v, _ok in events], 0.95
                    )
            return values
        if rule.signal == "commit_p95":
            events = self._window.select("commit", "", since, deadline, inclusive)
            if len(events) >= rule.min_samples:
                return {"": self._percentile([v for _t, v, _ok in events], 0.95)}
            return {}
        if rule.signal == "frontier_stall":
            if self._crawls_active <= 0:
                return {}
            last = self._window.last_event_at
            if last is None:
                return {}
            return {"": max(0.0, deadline - last)}
        if rule.signal == "check_reject_ratio":
            samples = [s for s in self._counter_samples if s[0] >= since]
            if not samples:
                return {}
            base_rejected, base_checked = 0, 0
            older = [s for s in self._counter_samples if s[0] < since]
            if older:
                _t, base_rejected, base_checked = older[-1]
            _t, rejected, checked = samples[-1]
            rejected -= base_rejected
            checked -= base_checked
            total = rejected + checked
            if total < rule.min_samples:
                return {}
            return {"": rejected / total}
        raise ValueError(f"unknown health signal {rule.signal!r}")

    @staticmethod
    def _percentile(values: list[float], q: float) -> float:
        counts = [0] * (len(DEFAULT_BUCKETS) + 1)
        for value in values:
            slot = len(DEFAULT_BUCKETS)
            for index, bound in enumerate(DEFAULT_BUCKETS):
                if value <= bound:
                    slot = index
                    break
            counts[slot] += 1
        return bucket_percentile(counts, DEFAULT_BUCKETS, q)

    def _update_series(
        self, rule: HealthRule, key: str, value: float | None, at: float
    ) -> bool:
        """Hysteresis update for one series; returns whether it fires."""
        series = self._series.setdefault((rule.name, key), _RuleSeries())
        if value is None:
            # No data: hold state (a quarantined source produces no
            # samples; silence must not read as recovery).
            return series.firing
        if value > rule.threshold:
            series.breaches += 1
            series.cleans = 0
            if not series.firing and series.breaches >= rule.fire_after:
                series.alert = Alert(
                    rule=rule.name,
                    source=key,
                    severity=rule.severity,
                    fired_at=at,
                    value=value,
                    threshold=rule.threshold,
                )
                self._alerts.append(series.alert)
                self.obs.metrics.inc(
                    "health.alerts_fired", rule=rule.name, source=key
                )
        else:
            series.cleans += 1
            series.breaches = 0
            if series.firing and series.cleans >= rule.resolve_after:
                series.alert.resolved_at = at
                series.alert.resolved_value = value
                self.obs.metrics.inc(
                    "health.alerts_resolved", rule=rule.name, source=key
                )
        return series.firing

    def _escalate(
        self, breaching: dict[str, list[str]], deadline: float, now: float
    ) -> None:
        """Advance every source's state machine after a rule sweep."""
        # Every source seen in the fetch stream is tracked, so a clean
        # run reports each one as healthy rather than an empty map.
        seen = (key for key in self._window.keys("fetch") if key)
        sources = set(breaching) | set(self._sources) | set(seen)
        for source in sorted(sources):
            state = self._sources.setdefault(source, _SourceState())
            firing = source in breaching
            if state.state == HEALTHY:
                if firing:
                    self._transition(
                        state, source, DEGRADED, deadline, now,
                        breaching[source],
                    )
            elif state.state == DEGRADED:
                if firing:
                    state.breach_evals += 1
                    if state.breach_evals >= self.quarantine_after:
                        self._transition(
                            state, source, QUARANTINED, deadline, now,
                            breaching[source],
                        )
                        state.probe_backoff = self.probe_backoff_base
                        state.probe_at = now + state.probe_backoff
                        state.probe_pending = False
                elif not self._any_firing(source):
                    self._transition(state, source, HEALTHY, deadline, now, [])
            elif state.state == QUARANTINED:
                self._probe_verdict(state, source, deadline, now)

    def _any_firing(self, source: str) -> bool:
        return any(
            series.firing
            for (rule_name, key), series in self._series.items()
            if key == source
        )

    def _probe_verdict(
        self, state: _SourceState, source: str, deadline: float, now: float
    ) -> None:
        """Judge an outstanding probe for a quarantined source."""
        if not state.probe_pending or state.probe_granted_at is None:
            return
        events = self._window.select(
            "fetch", source, state.probe_granted_at, deadline, inclusive=True
        )
        if not events:
            if deadline - state.probe_granted_at >= self.probe_timeout:
                # probe grant never produced a fetch (crawl ended);
                # re-arm so the next crawl can probe immediately
                state.probe_pending = False
                state.probe_at = now
            return
        ok = events[-1][2]
        state.probe_pending = False
        if ok:
            # Stale sick-era samples must not instantly re-quarantine a
            # recovered source: restart its windows at the probe grant.
            self._window.drop_before("fetch", source, state.probe_granted_at)
            for (rule_name, key), series in self._series.items():
                if key == source:
                    series.breaches = 0
                    if series.firing:
                        series.alert.resolved_at = deadline
                        series.alert.resolved_value = 0.0
                        self.obs.metrics.inc(
                            "health.alerts_resolved",
                            rule=rule_name,
                            source=source,
                        )
            self._transition(state, source, DEGRADED, deadline, now, [])
        else:
            state.probe_backoff = min(
                state.probe_backoff * 2.0, self.probe_backoff_max
            )
            state.probe_at = now + state.probe_backoff

    def _transition(
        self,
        state: _SourceState,
        source: str,
        new_state: str,
        deadline: float,
        now: float,
        rules: list[str],
    ) -> None:
        old = state.state
        state.prev_multiplier = state.multiplier
        state.state = new_state
        state.since = now
        state.since_deadline = deadline
        state.breach_evals = 0
        if new_state == HEALTHY:
            state.multiplier = 1.0
            state.probe_at = None
            state.probe_pending = False
        else:
            state.multiplier = self.degraded_rate_multiplier
        if new_state != QUARANTINED:
            state.probe_backoff = 0.0 if new_state == HEALTHY else state.probe_backoff
        self._transitions.append(
            {
                "at": deadline,
                "from": old,
                "rules": sorted(rules),
                "source": source,
                "to": new_state,
            }
        )
        self.obs.metrics.inc("health.transitions", source=source, to=new_state)
        self.obs.metrics.set_gauge(
            "health.source_state", _STATE_LEVEL[new_state], source=source
        )
        self.obs.metrics.set_gauge(
            "health.rate_multiplier", state.multiplier, source=source
        )
        for listener in self._listeners:
            listener(source, old, new_state, now)

    # -- readout -----------------------------------------------------------

    def states(self) -> dict[str, str]:
        """Current state per source (sources never seen are healthy)."""
        with self._lock:
            return {
                source: state.state
                for source, state in sorted(self._sources.items())
            }

    def report(self) -> dict:
        """Canonical JSON-safe health report (keys in sorted order)."""
        with self._lock:
            return {
                "alerts": [
                    alert.to_dict()
                    for alert in sorted(
                        self._alerts,
                        key=lambda a: (a.fired_at, a.rule, a.source),
                    )
                ],
                "at": self._last_eval_at,
                "enabled": True,
                "evaluations": self._evaluations,
                "interval": self.interval,
                "rules": [rule.to_dict() for rule in
                          sorted(self.rules, key=lambda r: r.name)],
                "signals": {
                    name: self._signals[name]
                    for name in sorted(self._signals)
                },
                "sources": {
                    source: state.to_dict()
                    for source, state in sorted(self._sources.items())
                },
                "transitions": list(self._transitions),
            }

    def report_json(self) -> str:
        """The report as canonical JSON text (sorted keys, one newline)."""
        return json.dumps(self.report(), indent=2, sort_keys=True) + "\n"

    def write_report(self, path) -> None:
        """Persist the report atomically (fsync'd write + rename)."""
        from repro.storage.atomic import atomic_write_text

        atomic_write_text(path, self.report_json())


def replay_trace(
    spans: list[dict],
    overrides: dict | None = None,
    interval: float | None = None,
) -> HealthEngine:
    """Offline health evaluation over an exported trace.

    Feeds the span records through a fresh engine and evaluates on the
    interval grid spanned by the trace, exactly as the online engine
    would have; returns the engine (call :meth:`HealthEngine.report`).
    """
    kwargs: dict = {}
    if interval is not None:
        kwargs["interval"] = interval
    engine = HealthEngine.from_config(overrides, **kwargs)
    for span in spans:
        engine.observe_span(span)
    if spans:
        end = max(span.get("end", 0.0) for span in spans)
        engine.crawl_started()  # frontier-stall rule sees an active crawl
        engine.maybe_evaluate(end)
        engine.crawl_finished()
        engine.finalize(end)
    return engine


def render_health(report: dict) -> str:
    """Human-readable rendering of a health report."""
    if not report.get("enabled"):
        return "health engine disabled (run with --health)"
    lines = [
        f"health @ {report['at']:.2f}s -- {report['evaluations']} "
        f"evaluation(s), every {report['interval']:g}s"
    ]
    sources = report.get("sources", {})
    if sources:
        width = max(len(name) for name in sources)
        lines.append(f"{'source':<{width}}  {'state':<12} {'since':>8}  detail")
        for name, state in sources.items():
            detail = ""
            if state["state"] == QUARANTINED and state["probe_at"] is not None:
                detail = (
                    f"probe at {state['probe_at']:.1f}s "
                    f"(backoff {state['probe_backoff']:.0f}s)"
                )
            elif state["rate_multiplier"] > 1.0:
                detail = f"rate x{state['rate_multiplier']:g}"
            lines.append(
                f"{name:<{width}}  {state['state']:<12} "
                f"{state['since']:>7.1f}s  {detail}".rstrip()
            )
    else:
        lines.append("no sources tracked (no crawl events observed)")
    firing = [a for a in report.get("alerts", []) if a["firing"]]
    resolved = [a for a in report.get("alerts", []) if not a["firing"]]
    lines.append(
        f"alerts: {len(firing)} firing, {len(resolved)} resolved"
    )
    for alert in firing:
        where = alert["source"] or "system"
        lines.append(
            f"  FIRING {alert['rule']} [{where}]: "
            f"{alert['value']:.3f} > {alert['threshold']:g} "
            f"since {alert['fired_at']:.1f}s"
        )
    for transition in report.get("transitions", []):
        lines.append(
            f"  {transition['at']:7.1f}s  {transition['source']}: "
            f"{transition['from']} -> {transition['to']}"
            + (f"  ({', '.join(transition['rules'])})"
               if transition["rules"] else "")
        )
    return "\n".join(lines)


__all__ = [
    "Admission",
    "Alert",
    "DEFAULT_RULES",
    "DEGRADED",
    "HEALTHY",
    "HealthEngine",
    "HealthRule",
    "QUARANTINED",
    "SlidingWindow",
    "bucket_percentile",
    "load_rules_file",
    "render_health",
    "replay_trace",
    "rules_from_config",
]
