"""Trace summarisation: ``python -m repro stats --from-trace``.

Reads the canonical JSONL written by ``run --trace``, aggregates spans
by name into a latency table, and renders per-report span trees so an
operator can follow one report end-to-end (fetch -> check -> parse ->
extract -> commit) without re-running anything.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.profile import annotate


def load_trace(path: str | Path) -> list[dict]:
    """Parse a trace JSONL file into span records (export order kept)."""
    spans = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            spans.append(json.loads(line))
    return spans


def summarize_dict(spans: list[dict]) -> dict:
    """The aggregate summary as a JSON-safe dict (``--json`` output).

    ``self_s`` is exclusive time (duration minus direct children, see
    :mod:`repro.obs.profile`) -- the column to rank hotspots by, since
    ``total_s`` double-counts children into every ancestor.
    """
    totals: dict[str, list[float]] = {}
    selfs: dict[str, float] = {}
    for span in annotate(spans):
        totals.setdefault(span["name"], []).append(span["total_s"])
        selfs[span["name"]] = selfs.get(span["name"], 0.0) + span["self_s"]
    return {
        "spans": len(spans),
        "names": {
            name: {
                "count": len(durations),
                "total_s": sum(durations),
                "self_s": selfs[name],
                "mean_s": sum(durations) / len(durations),
                "max_s": max(durations),
            }
            for name, durations in sorted(totals.items())
        },
    }


def summarize(spans: list[dict]) -> str:
    """Aggregate table: span name, count, total/self/mean/max duration."""
    if not spans:
        return "trace is empty"
    summary = summarize_dict(spans)["names"]
    width = max(len(name) for name in summary)
    lines = [
        f"{len(spans)} spans, {len(summary)} distinct names",
        f"{'span':<{width}}  {'count':>6}  {'total_s':>9}  {'self_s':>9}  "
        f"{'mean_s':>9}  {'max_s':>9}",
    ]
    for name, entry in summary.items():
        lines.append(
            f"{name:<{width}}  {entry['count']:>6}  {entry['total_s']:>9.4f}  "
            f"{entry['self_s']:>9.4f}  {entry['mean_s']:>9.4f}  "
            f"{entry['max_s']:>9.4f}"
        )
    return "\n".join(lines)


def partition_breakdown(spans: list[dict]) -> dict:
    """Per-partition aggregation of a sharded run's trace.

    Groups every span carrying a ``partition`` attribute (the
    ``store.shard`` worker spans of an N-partition deployment) and
    aggregates span counts, durations and the ``stored`` / ``skipped``
    totals the workers stamp on their spans.  Returns an empty dict for
    single-partition traces.
    """
    partitions: dict[str, dict] = {}
    for span in spans:
        attrs = span.get("attrs", {})
        if "partition" not in attrs:
            continue
        entry = partitions.setdefault(
            str(attrs["partition"]),
            {
                "spans": 0,
                "total_s": 0.0,
                "stored": 0,
                "skipped": 0,
                "names": {},
            },
        )
        entry["spans"] += 1
        entry["total_s"] += max(0.0, span["end"] - span["start"])
        entry["stored"] += int(attrs.get("stored", 0) or 0)
        entry["skipped"] += int(attrs.get("skipped", 0) or 0)
        entry["names"][span["name"]] = entry["names"].get(span["name"], 0) + 1
    return {
        key: partitions[key]
        for key in sorted(partitions, key=lambda k: (len(k), k))
    }


def render_partitions(spans: list[dict]) -> str:
    """Text table for ``stats --from-trace --by-partition``."""
    breakdown = partition_breakdown(spans)
    if not breakdown:
        return "no partition-labelled spans (single-partition trace?)"
    lines = [
        f"{'partition':>9}  {'spans':>6}  {'total_s':>9}  "
        f"{'stored':>6}  {'skipped':>7}"
    ]
    for key, entry in breakdown.items():
        lines.append(
            f"{key:>9}  {entry['spans']:>6}  {entry['total_s']:>9.4f}  "
            f"{entry['stored']:>6}  {entry['skipped']:>7}"
        )
    return "\n".join(lines)


def _matches(span: dict, needle: str) -> bool:
    return any(
        needle in str(value) for value in span.get("attrs", {}).values()
    )


def render_tree(spans: list[dict], root_id: int) -> str:
    """Render one span subtree with indentation and durations."""
    by_parent: dict[int | None, list[dict]] = {}
    by_id = {span["id"]: span for span in spans}
    for span in spans:
        by_parent.setdefault(span["parent"], []).append(span)
    lines: list[str] = []

    def visit(span: dict, depth: int) -> None:
        duration = max(0.0, span["end"] - span["start"])
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span["attrs"].items())
        )
        indent = "  " * depth
        lines.append(
            f"{indent}{span['name']}  [{duration:.4f}s]"
            + (f"  {attrs}" if attrs else "")
        )
        for child in by_parent.get(span["id"], []):
            visit(child, depth + 1)

    visit(by_id[root_id], 0)
    return "\n".join(lines)


def render_report_trees(spans: list[dict], needle: str) -> str:
    """Subtrees of every span matching ``needle``, with ancestor paths.

    A span matches when any attribute value contains the needle (report
    ids, URLs and source names are all attributes), so
    ``--report report-0007`` shows that report's full journey: its
    fetch under the crawl, its pipeline stages, its storage commit --
    each prefixed by the path from the trace root.
    """
    by_id = {span["id"]: span for span in spans}
    blocks: list[str] = []
    for span in spans:
        if not _matches(span, needle):
            continue
        path: list[str] = []
        walker = span
        while walker["parent"] is not None:
            walker = by_id[walker["parent"]]
            path.append(walker["name"])
        breadcrumb = " > ".join(reversed(path)) or "(root)"
        blocks.append(f"under {breadcrumb}:\n{render_tree(spans, span['id'])}")
    if not blocks:
        return f"no spans matching {needle!r}"
    return "\n\n".join(blocks)


__all__ = [
    "load_trace",
    "partition_breakdown",
    "render_partitions",
    "render_report_trees",
    "render_tree",
    "summarize",
    "summarize_dict",
]
