"""Deterministic observability: tracing, metrics, profiling hooks.

One :class:`Obs` bundle -- a tracer plus a metrics registry -- is
threaded through every layer of the system (crawl engine, fetcher,
pipeline, extractor, storage engine, connectors, fusion).  The default
is :data:`NO_OBS`, whose members are shared no-op singletons, so
instrumented hot paths cost a method call and an empty context-manager
round-trip when observability is off.

Build a live bundle with :func:`make_obs`, handing it the deployment's
clock so spans are timed on the same (possibly virtual) timeline as
the work they measure::

    from repro.obs import make_obs
    from repro.runtime import clock_from_name

    clock = clock_from_name("virtual")
    obs = make_obs(clock)
    system = SecurityKG(config, clock=clock, obs=obs)
    system.run_once()
    obs.tracer.write_jsonl("trace.jsonl")
    snapshot = obs.metrics.snapshot()

See ``OBSERVABILITY.md`` for the span taxonomy and metric catalogue.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    label_key,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
)
from repro.runtime import Clock


class Obs:
    """A tracer and a metrics registry travelling together."""

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: "Tracer | NullTracer",
        metrics: "MetricsRegistry | NullMetrics",
    ):
        self.tracer = tracer
        self.metrics = metrics

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled


#: The disabled bundle every component defaults to.
NO_OBS = Obs(NULL_TRACER, NULL_METRICS)


def make_obs(clock: Clock | None = None, ring: int = 8192) -> Obs:
    """A live observability bundle timed on ``clock``."""
    return Obs(Tracer(clock, ring=ring), MetricsRegistry())


# Re-exported after NO_OBS exists: repro.obs.profile lazily imports
# NO_OBS from this package inside its export helpers.
from repro.obs.profile import profile_dict, render_profile  # noqa: E402

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NO_OBS",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullMetrics",
    "NullSpan",
    "NullTracer",
    "Obs",
    "Span",
    "Tracer",
    "label_key",
    "make_obs",
    "profile_dict",
    "render_profile",
]
