"""Command-line interface.

Drives the whole system from a shell::

    python -m repro run --scenarios 12 --reports-per-site 4 --state ./kgdata
    python -m repro run --clock virtual --trace trace.jsonl --metrics
    python -m repro run --health --health-out health.json
    python -m repro stats --from-trace trace.jsonl [--report rpt-...] [--json]
    python -m repro health --from-trace trace.jsonl [--json]
    python -m repro search  --state ./kgdata "agent tesla"
    python -m repro cypher  --state ./kgdata 'MATCH (m:Malware) RETURN m.name'
    python -m repro cypher  --state ./kgdata --page-size 25 \
        'MATCH (m:Malware) RETURN m.name'
    python -m repro cypher  --state ./kgdata \
        'EXPLAIN MATCH (m:Malware {name: "agent tesla"}) RETURN m'
    python -m repro cypher  --state ./kgdata \
        'PROFILE MATCH (m:Malware) RETURN m.name ORDER BY m.name'
    python -m repro profile --from-trace trace.jsonl --flame out.folded
    python -m repro profile --from-trace trace.jsonl --json --top 15
    python -m repro stats   --state ./kgdata
    python -m repro fuse    --state ./kgdata
    python -m repro export  --state ./kgdata --out bundle.json
    python -m repro hunt    --state ./kgdata --attacks 3
    python -m repro serve   --state ./kgdata --port 8750
    python -m repro feed export --state ./kgdata --out-dir ./bundles
    python -m repro feed serve  --state ./kgdata --port 8750
    python -m repro config
    python -m repro lint

``--state DIR`` opens one unified :class:`~repro.storage.StorageEngine`
under DIR: the graph, the search index and the incremental-crawl state
share a single journal, every stored report is one atomic cross-store
commit, and a run killed mid-batch resumes exactly where it stopped
(already-committed reports are skipped, the rest re-ingest).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import threading
from pathlib import Path

from repro.core.config import SystemConfig
from repro.core.system import SecurityKG
from repro.storage.atomic import atomic_write_text
from repro.storage.faults import CRASH_POINTS, CrashInjector, InjectedCrash

#: exit code of a ``run`` killed by an injected crash (recovery tests)
EXIT_CRASHED = 3


def _wants_obs(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "trace", None)
        or getattr(args, "metrics", False)
        or getattr(args, "metrics_out", None)
        or getattr(args, "health", False)
        or getattr(args, "health_out", None)
    )


def _load_health_rules(path: str | None) -> dict | None:
    if not path:
        return None
    from repro.obs.health import load_rules_file

    return load_rules_file(path)


def build_system(args: argparse.Namespace) -> SecurityKG:
    config = SystemConfig(
        scenario_count=args.scenarios,
        reports_per_site=args.reports_per_site,
        seed=args.seed,
        storage_path=args.state,
        connectors=["graph", "search"],
        recognizer=getattr(args, "recognizer", "gazetteer"),
        clock=getattr(args, "clock", None) or "real",
        partitions=getattr(args, "partitions", None) or 1,
    )
    if args.config:
        config = SystemConfig.from_file(args.config)
        if args.state and not config.storage_path:
            config.storage_path = args.state
        if getattr(args, "clock", None):
            config.clock = args.clock
        if (getattr(args, "partitions", None) or 1) > 1:
            config.partitions = args.partitions
    if getattr(args, "health", False) or getattr(args, "health_out", None):
        config.health = True
        rules = _load_health_rules(getattr(args, "health_rules", None))
        if rules is not None:
            config.health_rules = rules
    faults = None
    crash_at = getattr(args, "crash_at", None)
    if crash_at:
        faults = CrashInjector(crash_at, at_hit=getattr(args, "crash_at_hit", 1))
    clock = None
    obs = None
    if _wants_obs(args):
        # Build the clock here so tracer timestamps share the system's
        # (possibly virtual) timeline.
        from repro.obs import make_obs
        from repro.runtime import clock_from_name

        clock = clock_from_name(config.clock)
        obs = make_obs(clock)
    return SecurityKG(config, clock=clock, faults=faults, obs=obs)


def _emit_observability(system: SecurityKG, args: argparse.Namespace, out) -> None:
    """Honour ``--trace`` / ``--metrics`` / ``--metrics-out``."""
    trace_path = getattr(args, "trace", None)
    if trace_path:
        system.obs.tracer.write_jsonl(Path(trace_path))
        spans = len(system.obs.tracer.export())
        print(f"wrote {spans} spans to {trace_path}", file=out)
    snapshot = None
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        snapshot = system.obs.metrics.snapshot()
        atomic_write_text(
            Path(metrics_out),
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
        )
        print(f"wrote metrics snapshot to {metrics_out}", file=out)
    if getattr(args, "metrics", False):
        snapshot = snapshot or system.obs.metrics.snapshot()
        print(json.dumps(snapshot, indent=2, sort_keys=True), file=out)
    health_out = getattr(args, "health_out", None)
    if health_out and system.health is not None:
        system.health.write_report(Path(health_out))
        print(f"wrote health report to {health_out}", file=out)
    if getattr(args, "health", False) and system.health is not None:
        from repro.obs.health import render_health

        print(render_health(system.health.report()), file=out)


def cmd_run(args: argparse.Namespace, out) -> int:
    system = build_system(args)
    try:
        report = system.run_once(max_articles=args.max_articles)
        print(report.describe(), file=out)
        if args.state:
            system.checkpoint()
            print(f"state saved under {args.state}", file=out)
    except InjectedCrash as crash:
        print(
            f"simulated crash at {crash.point!r}; "
            "rerun with the same --state to resume",
            file=out,
        )
        # the trace of a crashed run is exactly what an operator wants
        _emit_observability(system, args, out)
        return EXIT_CRASHED
    _emit_observability(system, args, out)
    system.close()
    return 0


def cmd_search(args: argparse.Namespace, out) -> int:
    system = build_system(args)
    hits = system.keyword_search(args.query, limit=args.limit)
    if not hits:
        print("no results", file=out)
        return 1
    for hit in hits:
        print(
            f"{hit.score:8.2f}  {hit.fields.get('title', '')}  "
            f"[{hit.fields.get('source', '')}]",
            file=out,
        )
    return 0


def cmd_cypher(args: argparse.Namespace, out) -> int:
    from repro.graphdb.cypher import CypherAnalysisError
    from repro.graphdb.store import Edge, Node

    system = build_system(args)
    strict = not getattr(args, "no_strict", False)
    page_size = getattr(args, "page_size", None)

    def render(value):
        if isinstance(value, Node):
            return f"({value.label} {value.properties.get('name', '')!r})"
        if isinstance(value, Edge):
            return f"-[{value.type}]->"
        return value

    def emit(rows) -> int:
        count = 0
        for row in rows:
            if set(row.values) == {"plan"}:
                # EXPLAIN output: one indented plan line per row.
                print(row.values["plan"], file=out)
            else:
                print(
                    "  ".join(f"{k}={render(v)}" for k, v in row.values.items()),
                    file=out,
                )
            count += 1
        return count

    try:
        if re.match(r"\s*PROFILE\b", args.query, re.IGNORECASE):
            # Instrumented execution: annotated operator tree first
            # (with per-partition sub-profiles when sharded), then the
            # data rows, which are identical to the unprofiled query's.
            prof = system.cypher_profile(args.query, strict=strict)
            for line in prof.lines():
                print(line, file=out)
            print(f"({emit(prof.rows)} row(s))", file=out)
            return 0
        if page_size is not None:
            # Preemptable path: fetch page by page, resuming each page
            # from the previous continuation, and mark page boundaries.
            total = 0
            pages = 0
            continuation = None
            while True:
                page = system.cypher_paginated(
                    args.query, page_size, continuation=continuation, strict=strict
                )
                total += emit(page.rows)
                pages += 1
                continuation = page.continuation
                if continuation is None:
                    break
                print(f"-- page {pages} --", file=out)
            print(f"({total} row(s) in {pages} page(s))", file=out)
            return 0
        rows = system.cypher(args.query, strict=strict)
    except CypherAnalysisError as error:
        # Positioned diagnostics: rule id plus a caret under the span.
        for diagnostic in error.diagnostics:
            print(diagnostic.format(error.source), file=out)
        return 2
    except ValueError as error:
        print(f"query error: {error}", file=out)
        return 2

    print(f"({emit(rows)} row(s))", file=out)
    return 0


def cmd_lint(args: argparse.Namespace, out) -> int:
    from repro.analysis.lint import main as lint_main

    return lint_main(args.lint_args, out)


def cmd_stats(args: argparse.Namespace, out) -> int:
    as_json = getattr(args, "json", False)
    if getattr(args, "from_trace", None):
        # Offline path: summarise a trace written by ``run --trace``
        # without opening any state directory.
        from repro.obs.summary import (
            load_trace,
            partition_breakdown,
            render_partitions,
            render_report_trees,
            summarize,
            summarize_dict,
        )

        spans = load_trace(Path(args.from_trace))
        if getattr(args, "by_partition", False):
            if as_json:
                print(
                    json.dumps(
                        partition_breakdown(spans), indent=2, sort_keys=True
                    ),
                    file=out,
                )
            else:
                print(render_partitions(spans), file=out)
        elif getattr(args, "report", None):
            print(render_report_trees(spans, args.report), file=out)
        elif as_json:
            print(
                json.dumps(summarize_dict(spans), indent=2, sort_keys=True),
                file=out,
            )
        else:
            print(summarize(spans), file=out)
        return 0
    from repro.apps.stats import compute_stats

    system = build_system(args)
    metrics = system.obs.metrics.snapshot() if system.obs.enabled else None
    stats = compute_stats(system.graph, metrics=metrics)
    if as_json:
        print(json.dumps(stats.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(stats.describe(), file=out)
    return 0


def cmd_profile(args: argparse.Namespace, out) -> int:
    """Offline self-time profile over a trace written by ``run --trace``.

    All output is a pure function of the canonical trace, so a seeded
    virtual-clock run produces byte-identical folded/JSON artifacts.
    """
    from repro.obs.profile import (
        profile_dict,
        render_profile,
        write_folded,
    )
    from repro.obs.summary import load_trace

    spans = load_trace(Path(args.from_trace))
    if getattr(args, "flame", None):
        write_folded(Path(args.flame), spans)
        print(f"wrote collapsed stacks to {args.flame}", file=out)
    if getattr(args, "json", False):
        print(
            json.dumps(
                profile_dict(spans, top=args.top), indent=2, sort_keys=True
            ),
            file=out,
        )
    elif not getattr(args, "flame", None):
        print(render_profile(spans, top=args.top), file=out)
    return 0


def cmd_health(args: argparse.Namespace, out) -> int:
    """Offline health evaluation over a trace written by ``run --trace``."""
    from repro.obs.health import render_health, replay_trace
    from repro.obs.summary import load_trace

    spans = load_trace(Path(args.from_trace))
    try:
        rules = _load_health_rules(getattr(args, "rules", None))
        engine = replay_trace(spans, rules, interval=args.interval)
    except ValueError as error:
        print(f"health rules error: {error}", file=out)
        return 2
    report = engine.report()
    if getattr(args, "out", None):
        engine.write_report(Path(args.out))
        print(f"wrote health report to {args.out}", file=out)
    if getattr(args, "json", False):
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
    elif not getattr(args, "out", None):
        print(render_health(report), file=out)
    return 0


def cmd_fuse(args: argparse.Namespace, out) -> int:
    system = build_system(args)
    report = system.run_fusion()
    print(
        f"fused {report.groups_merged} alias groups "
        f"({report.nodes_before} -> {report.nodes_after} nodes)",
        file=out,
    )
    for group in report.merged_groups:
        print("  " + " == ".join(group), file=out)
    if args.state:
        # fusion rewrites the graph in place; a checkpoint makes the
        # fused state the new durable generation
        system.checkpoint()
    system.close()
    return 0


def cmd_export(args: argparse.Namespace, out) -> int:
    from repro.ontology.stix import export_graph

    system = build_system(args)
    bundle = export_graph(system.graph)
    payload = bundle.to_json(indent=2)
    if args.out:
        atomic_write_text(Path(args.out), payload)
        print(f"wrote {len(bundle.objects)} STIX objects to {args.out}", file=out)
    else:
        print(payload, file=out)
    return 0


def cmd_hunt(args: argparse.Namespace, out) -> int:
    from repro.apps.threat_hunting import ThreatHunter
    from repro.audit import simulate

    system = build_system(args)
    if system.graph.node_count == 0:
        print("knowledge graph is empty; run `repro run` first", file=out)
        return 1
    log = simulate(
        system.web.scenarios,
        attacks=args.attacks,
        benign_events=args.benign_events,
    )
    incidents = ThreatHunter(system.graph).hunt(log.events)
    confirmed = [i for i in incidents if i.confirmed]
    for incident in confirmed:
        print(incident.summary(), file=out)
        print(file=out)
    print(
        f"{len(confirmed)} confirmed incident(s), "
        f"{len(incidents) - len(confirmed)} unconfirmed suspicion(s) over "
        f"{len(log.entries)} audit events",
        file=out,
    )
    return 0


def cmd_serve(args: argparse.Namespace, out) -> int:
    from repro.ui.server import ExplorerAPI, ExplorerServer

    system = build_system(args)
    server = ExplorerServer(ExplorerAPI(system), port=args.port).start()
    host, port = server.address
    print(f"explorer API listening on http://{host}:{port}", file=out)
    if args.once:  # test hook: start, report, stop
        server.stop()
        return 0
    try:  # pragma: no cover - interactive loop
        # Park on the injected clock (never-set event) instead of a raw
        # time.sleep, so the serve loop is virtual-clock clean.
        shutdown = threading.Event()
        while not shutdown.is_set():
            system.clock.wait_for(shutdown, 3600.0)
    except KeyboardInterrupt:  # pragma: no cover
        server.stop()
    return 0


def cmd_feed(args: argparse.Namespace, out) -> int:
    """``feed export``: write one sanitized bundle file per tier;
    ``feed serve``: serve the ``/feeds/*`` endpoints (the same routes
    ``serve`` exposes, with a dissemination-oriented banner)."""
    from repro.feeds import TIERS

    system = build_system(args)
    if args.feed_command == "export":
        tiers = [args.tier] if args.tier else list(TIERS)
        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for tier in tiers:
            bundle, etag = system.feeds.full_bundle(tier)
            path = out_dir / f"feed-{tier}.json"
            atomic_write_text(
                path, json.dumps(bundle, indent=2, sort_keys=True) + "\n"
            )
            print(
                f"{tier}: {len(bundle['objects'])} objects -> {path} "
                f"(etag {etag})",
                file=out,
            )
        system.close()
        return 0
    from repro.ui.server import ExplorerAPI, ExplorerServer

    server = ExplorerServer(ExplorerAPI(system), port=args.port).start()
    host, port = server.address
    print(
        f"feeds at http://{host}:{port}/feeds "
        f"(tiers: {', '.join(TIERS)}; see DISSEMINATION.md)",
        file=out,
    )
    if args.once:  # test hook: start, report, stop
        server.stop()
        return 0
    try:  # pragma: no cover - interactive loop
        shutdown = threading.Event()
        while not shutdown.is_set():
            system.clock.wait_for(shutdown, 3600.0)
    except KeyboardInterrupt:  # pragma: no cover
        server.stop()
    return 0


def cmd_config(args: argparse.Namespace, out) -> int:
    print(SystemConfig().to_json(), file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SecurityKG: automated OSCTI gathering and management",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--state", help="directory for persistent graph + index")
        p.add_argument("--config", help="JSON configuration file")
        p.add_argument("--scenarios", type=int, default=12,
                       help="simulated-world scenario count")
        p.add_argument("--reports-per-site", type=int, default=4)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument(
            "--clock",
            choices=("real", "virtual"),
            default=None,
            help="runtime clock: wall time (default) or discrete-event "
            "virtual time (instant, deterministic crawls)",
        )
        p.add_argument(
            "--partitions",
            type=int,
            default=1,
            help="storage shard count: 1 (default) is the classic "
            "single-engine deployment; N > 1 hash-partitions the "
            "stores across N engines with scatter-gather queries",
        )

    def obs_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace",
            help="write a span trace (JSONL) of the run; with --clock "
            "virtual the file is byte-identical across identical runs",
        )
        p.add_argument(
            "--metrics",
            action="store_true",
            help="print the metrics snapshot as JSON after the run",
        )
        p.add_argument(
            "--metrics-out",
            help="write the metrics snapshot to a JSON file",
        )
        p.add_argument(
            "--health",
            action="store_true",
            help="run the online health engine (SLO rules, per-source "
            "quarantine feedback) and print its verdicts after the run",
        )
        p.add_argument(
            "--health-out",
            help="write the canonical health report JSON to a file "
            "(implies the health engine)",
        )
        p.add_argument(
            "--health-rules",
            help="JSON (or YAML, when available) file of health rule "
            "overrides; see OBSERVABILITY.md",
        )

    p = sub.add_parser("run", help="one collect-process-store cycle")
    common(p)
    obs_flags(p)
    p.add_argument("--max-articles", type=int, default=None)
    p.add_argument("--recognizer", choices=("gazetteer", "regex", "crf"),
                   default="gazetteer")
    # fault-injection hooks for recovery tests: die at a storage-engine
    # crash point (optionally its n-th occurrence), exit code 3
    p.add_argument("--crash-at", choices=CRASH_POINTS, default=None,
                   help=argparse.SUPPRESS)
    p.add_argument("--crash-at-hit", type=int, default=1,
                   help=argparse.SUPPRESS)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("search", help="keyword search over collected reports")
    common(p)
    p.add_argument("query")
    p.add_argument("--limit", type=int, default=10)
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("cypher", help="Cypher query over the knowledge graph")
    common(p)
    p.add_argument("query")
    p.add_argument(
        "--no-strict",
        action="store_true",
        help="skip semantic analysis (exploratory queries)",
    )
    p.add_argument(
        "--page-size",
        dest="page_size",
        type=int,
        default=None,
        help="run preemptably, fetching this many rows per page and "
        "resuming from a continuation between pages; prefix the query "
        "with EXPLAIN to print the physical plan instead",
    )
    p.set_defaults(func=cmd_cypher)

    p = sub.add_parser("stats", help="knowledge-graph statistics")
    common(p)
    p.add_argument(
        "--from-trace",
        dest="from_trace",
        help="summarise a trace JSONL written by `run --trace` "
        "instead of querying a graph",
    )
    p.add_argument(
        "--report",
        help="with --from-trace: show the span trees of spans whose "
        "attributes match this substring (report id, URL, source)",
    )
    p.add_argument(
        "--by-partition",
        dest="by_partition",
        action="store_true",
        help="with --from-trace: per-partition drill-down of a "
        "sharded run (span counts, durations, stored/skipped)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the text table",
    )
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "health",
        help="offline health evaluation over a trace from `run --trace`",
    )
    p.add_argument(
        "--from-trace",
        dest="from_trace",
        required=True,
        help="trace JSONL written by `run --trace`",
    )
    p.add_argument(
        "--rules",
        help="JSON (or YAML, when available) file of rule overrides",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=None,
        help="evaluation interval in seconds (default 5)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical report JSON instead of the text view",
    )
    p.add_argument("--out", help="also write the report JSON to a file")
    p.set_defaults(func=cmd_health)

    p = sub.add_parser(
        "profile",
        help="self-time hotspot profile over a trace from `run --trace`",
    )
    p.add_argument(
        "--from-trace",
        dest="from_trace",
        required=True,
        help="trace JSONL written by `run --trace`",
    )
    p.add_argument(
        "--flame",
        help="write canonical collapsed-stack flamegraph lines "
        "(self time in integer microseconds) to this file",
    )
    p.add_argument(
        "--top",
        type=int,
        default=10,
        help="hotspot table size (default 10)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the full profile (per-name aggregates, unit costs, "
        "hotspots) as JSON instead of the text table",
    )
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("fuse", help="run the knowledge-fusion stage")
    common(p)
    p.set_defaults(func=cmd_fuse)

    p = sub.add_parser("export", help="export the graph as a STIX bundle")
    common(p)
    p.add_argument("--out", help="output file (stdout when omitted)")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("hunt", help="knowledge-enhanced hunt over a simulated audit log")
    common(p)
    p.add_argument("--attacks", type=int, default=3)
    p.add_argument("--benign-events", type=int, default=400)
    p.set_defaults(func=cmd_hunt)

    p = sub.add_parser("serve", help="serve the explorer JSON API")
    common(p)
    p.add_argument("--port", type=int, default=8750)
    p.add_argument("--once", action="store_true", help=argparse.SUPPRESS)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "feed", help="TLP-tiered STIX dissemination feeds (see DISSEMINATION.md)"
    )
    feed_sub = p.add_subparsers(dest="feed_command", required=True)
    fp = feed_sub.add_parser(
        "export", help="write one sanitized STIX bundle file per tier"
    )
    common(fp)
    fp.add_argument(
        "--out-dir",
        dest="out_dir",
        required=True,
        help="directory receiving feed-<tier>.json bundle files",
    )
    fp.add_argument(
        "--tier",
        choices=("public", "partner", "internal"),
        default=None,
        help="export a single tier (default: all three)",
    )
    fp.set_defaults(func=cmd_feed)
    fp = feed_sub.add_parser(
        "serve", help="serve the /feeds endpoints over HTTP"
    )
    common(fp)
    fp.add_argument("--port", type=int, default=8750)
    fp.add_argument("--once", action="store_true", help=argparse.SUPPRESS)
    fp.set_defaults(func=cmd_feed)

    p = sub.add_parser("config", help="print the default configuration")
    p.set_defaults(func=cmd_config)

    p = sub.add_parser(
        "lint",
        help="static lint of the repro determinism/concurrency invariants",
        add_help=False,
    )
    p.add_argument("lint_args", nargs=argparse.REMAINDER)
    p.set_defaults(func=cmd_lint)

    return parser


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "lint":
        # Delegate before argparse: the lint CLI owns its own flags,
        # which REMAINDER would otherwise swallow inconsistently.
        from repro.analysis.lint import main as lint_main

        return lint_main(argv[1:], out)
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
