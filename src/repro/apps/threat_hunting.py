"""Knowledge-enhanced threat hunting (the paper's future work).

"In future work, we plan to connect SecurityKG to our system-auditing-
based threat protection systems [17, 23, 24] to achieve knowledge-
enhanced threat protection."  This module is that connection: it hunts
through audit logs using the knowledge graph, and demonstrates what
the *graph* buys over a flat indicator feed:

* **matching** -- events whose artifact equals a KG IOC raise alerts
  (a flat IOC list does this equally well);
* **attribution** -- each alert walks the graph from the matched IOC
  node to the malware/actor it is associated with, so an alert says
  *what* hit you, not just that something did;
* **correlation** -- alerts on one host are grouped into incidents;
  an incident is confirmed only when multiple *distinct IOC kinds*
  tie to the *same* threat neighbourhood.  Isolated coincidental
  matches (an address some CDN reused) stay below the threshold,
  which is precisely the false-positive suppression a flat list
  cannot express;
* **enrichment** -- a confirmed incident carries the threat's known
  techniques, tools and remaining infrastructure from the graph: the
  hunt-forward list.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.audit.events import AuditEvent
from repro.graphdb.store import Node, PropertyGraph
from repro.ontology.entities import EntityType, canonical_name

#: node labels that count as "threat identity" for attribution
_THREAT_LABELS = (EntityType.MALWARE.value, EntityType.THREAT_ACTOR.value)


@dataclass
class Alert:
    """One audit event that matched threat intelligence."""

    event: AuditEvent
    ioc_value: str
    ioc_kind: str
    attributed_to: list[str] = field(default_factory=list)  # threat names


@dataclass
class Incident:
    """Correlated alerts on one host attributed to one threat."""

    host: str
    threat: str
    alerts: list[Alert] = field(default_factory=list)
    ioc_kinds: set[str] = field(default_factory=set)
    confirmed: bool = False
    techniques: list[str] = field(default_factory=list)
    tools: list[str] = field(default_factory=list)
    related_iocs: list[str] = field(default_factory=list)

    @property
    def evidence_count(self) -> int:
        return len(self.alerts)

    def to_dict(self) -> dict:
        """JSON-ready incident record (SIEM/API consumption)."""
        return {
            "host": self.host,
            "threat": self.threat,
            "confirmed": self.confirmed,
            "evidence": [
                {
                    "event_id": alert.event.event_id,
                    "event_type": alert.event.event_type.value,
                    "process": alert.event.process,
                    "ioc_kind": alert.ioc_kind,
                    "ioc_value": alert.ioc_value,
                }
                for alert in self.alerts
            ],
            "ioc_kinds": sorted(self.ioc_kinds),
            "techniques": list(self.techniques),
            "tools": list(self.tools),
            "hunt_forward": list(self.related_iocs),
        }

    def summary(self) -> str:
        status = "CONFIRMED" if self.confirmed else "suspected"
        lines = [
            f"[{status}] {self.threat!r} on {self.host}: "
            f"{self.evidence_count} matching events across "
            f"{len(self.ioc_kinds)} IOC kinds ({', '.join(sorted(self.ioc_kinds))})"
        ]
        if self.techniques:
            lines.append(f"  known techniques: {', '.join(self.techniques[:4])}")
        if self.tools:
            lines.append(f"  known tooling: {', '.join(self.tools[:4])}")
        if self.related_iocs:
            lines.append(
                f"  hunt forward for: {', '.join(self.related_iocs[:4])}"
            )
        return "\n".join(lines)


class IocFeedHunter:
    """Baseline: a flat indicator feed with no graph behind it.

    Raises the same alerts as the knowledge-driven hunter but can
    neither attribute them nor correlate them into incidents -- every
    match is its own undifferentiated finding.
    """

    def __init__(self, indicators: dict[str, str]):
        #: canonical IOC value -> kind
        self.indicators = dict(indicators)

    @classmethod
    def from_graph(cls, graph: PropertyGraph) -> "IocFeedHunter":
        """Flatten a knowledge graph into a bare indicator feed."""
        indicators = {}
        for node in graph.nodes():
            try:
                entity_type = EntityType(node.label)
            except ValueError:
                continue
            if entity_type.is_ioc:
                value = canonical_name(str(node.properties.get("name", "")))
                indicators[value] = node.label
        return cls(indicators)

    def scan(self, events: list[AuditEvent]) -> list[Alert]:
        alerts = []
        for event in events:
            kind = self.indicators.get(canonical_name(event.object_value))
            if kind is not None:
                alerts.append(
                    Alert(event=event, ioc_value=event.object_value, ioc_kind=kind)
                )
        return alerts


class ThreatHunter:
    """Knowledge-graph-driven hunter.

    Parameters
    ----------
    graph:
        A populated security knowledge graph.
    min_corroborating_kinds:
        Distinct IOC kinds (pointing at the same threat, on the same
        host) required to confirm an incident.
    """

    def __init__(self, graph: PropertyGraph, min_corroborating_kinds: int = 2):
        self.graph = graph
        self.min_corroborating_kinds = min_corroborating_kinds
        self._ioc_index: dict[str, Node] = {}
        self._threats_by_ioc: dict[int, list[Node]] = {}
        self._build_index()

    # -- index ------------------------------------------------------------

    def _build_index(self) -> None:
        for node in self.graph.nodes():
            try:
                entity_type = EntityType(node.label)
            except ValueError:
                continue
            if not entity_type.is_ioc:
                continue
            value = canonical_name(str(node.properties.get("name", "")))
            self._ioc_index[value] = node
            self._threats_by_ioc[node.node_id] = self._attribute(node)

    def _attribute(self, ioc_node: Node) -> list[Node]:
        """Threat nodes associated with an IOC.

        Direct behavioural edges win (malware -> CONNECTS_TO -> ip);
        otherwise co-mention: threats described by the same reports
        that mention the IOC.
        """
        direct = [
            n
            for n in self.graph.neighbors(ioc_node.node_id, direction="in")
            if n.label in _THREAT_LABELS
        ]
        if direct:
            return direct
        threats: dict[int, Node] = {}
        for report in self.graph.neighbors(
            ioc_node.node_id, edge_type="MENTIONS", direction="in"
        ):
            for other in self.graph.neighbors(
                report.node_id, edge_type="MENTIONS", direction="out"
            ):
                if other.label in _THREAT_LABELS:
                    threats[other.node_id] = other
        return list(threats.values())

    # -- hunting --------------------------------------------------------------

    def scan(self, events: list[AuditEvent]) -> list[Alert]:
        """Alerts for every event matching a KG indicator, attributed."""
        alerts: list[Alert] = []
        for event in events:
            node = self._ioc_index.get(canonical_name(event.object_value))
            if node is None:
                continue
            threats = self._threats_by_ioc.get(node.node_id, [])
            alerts.append(
                Alert(
                    event=event,
                    ioc_value=event.object_value,
                    ioc_kind=node.label,
                    attributed_to=sorted(
                        str(t.properties.get("name", "")) for t in threats
                    ),
                )
            )
        return alerts

    def correlate(self, alerts: list[Alert]) -> list[Incident]:
        """Group alerts into per-host, per-threat incidents.

        Confirmation requires ``min_corroborating_kinds`` distinct IOC
        kinds tied to the same threat on the same host; everything else
        stays a suspected incident.
        """
        grouped: dict[tuple[str, str], Incident] = {}
        for alert in alerts:
            for threat in alert.attributed_to or ["(unattributed)"]:
                key = (alert.event.host, threat)
                incident = grouped.setdefault(
                    key, Incident(host=alert.event.host, threat=threat)
                )
                incident.alerts.append(alert)
                incident.ioc_kinds.add(alert.ioc_kind)
        incidents = list(grouped.values())
        for incident in incidents:
            incident.confirmed = (
                len(incident.ioc_kinds) >= self.min_corroborating_kinds
            )
            if incident.confirmed:
                self._enrich(incident)
        incidents.sort(key=lambda i: (-int(i.confirmed), -i.evidence_count))
        return incidents

    def hunt(self, events: list[AuditEvent]) -> list[Incident]:
        """scan + correlate in one call."""
        return self.correlate(self.scan(events))

    # -- enrichment -----------------------------------------------------------------

    def _enrich(self, incident: Incident) -> None:
        threat_node = None
        for node in self.graph.nodes():
            if (
                node.label in _THREAT_LABELS
                and str(node.properties.get("name", "")) == incident.threat
            ):
                threat_node = node
                break
        if threat_node is None:
            return
        techniques, tools = set(), set()
        for neighbor in self.graph.neighbors(threat_node.node_id):
            if neighbor.label == EntityType.TECHNIQUE.value:
                techniques.add(str(neighbor.properties.get("name", "")))
            elif neighbor.label == EntityType.TOOL.value:
                tools.add(str(neighbor.properties.get("name", "")))
        seen_values = {canonical_name(a.ioc_value) for a in incident.alerts}
        related = []
        for node_id, threats in self._threats_by_ioc.items():
            if any(t.node_id == threat_node.node_id for t in threats):
                ioc = self.graph.node(node_id)
                value = str(ioc.properties.get("name", ""))
                if canonical_name(value) not in seen_values:
                    related.append(value)
        incident.techniques = sorted(techniques)
        incident.tools = sorted(tools)
        incident.related_iocs = sorted(related)


__all__ = ["Alert", "Incident", "IocFeedHunter", "ThreatHunter"]
