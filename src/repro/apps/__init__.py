"""Applications over the security knowledge graph."""

from repro.apps.stats import GraphStats, GrowthTracker, compute_stats
from repro.apps.threat_hunting import Alert, Incident, IocFeedHunter, ThreatHunter
from repro.apps.threat_search import Investigation, ThreatSearchApp

__all__ = [
    "Alert",
    "GraphStats",
    "GrowthTracker",
    "Incident",
    "Investigation",
    "IocFeedHunter",
    "ThreatHunter",
    "ThreatSearchApp",
    "compute_stats",
]
