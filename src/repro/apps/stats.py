"""Knowledge-graph statistics application.

Applications are "built by accessing the security knowledge graph
stored in the databases" (paper section 2).  This one answers the
operational questions the demo narrates while the database fills up:
how the graph grows as reports are ingested, which entities are most
connected, and how ontology coverage looks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphdb.store import PropertyGraph


@dataclass
class GrowthPoint:
    """Graph size after some number of ingested reports."""

    reports: int
    nodes: int
    edges: int


@dataclass
class GraphStats:
    """One-shot statistics snapshot."""

    nodes: int
    edges: int
    labels: dict[str, int]
    edge_types: dict[str, int]
    top_entities: list[tuple[str, str, int]]  # (label, name, degree)
    degree_histogram: dict[int, int]

    def to_dict(self) -> dict:
        """JSON-safe form for ``stats --json`` and machine consumers."""
        return {
            "degree_histogram": {
                str(degree): count
                for degree, count in self.degree_histogram.items()
            },
            "edge_types": dict(sorted(self.edge_types.items())),
            "edges": self.edges,
            "labels": dict(sorted(self.labels.items())),
            "nodes": self.nodes,
            "top_entities": [
                {"degree": degree, "label": label, "name": name}
                for label, name, degree in self.top_entities
            ],
        }

    def describe(self) -> str:
        lines = [
            f"knowledge graph: {self.nodes} nodes, {self.edges} edges",
            "nodes by type: "
            + ", ".join(f"{label}={count}" for label, count in self.labels.items()),
            "top entities by degree:",
        ]
        for label, name, degree in self.top_entities[:10]:
            lines.append(f"  {degree:>4}  {label:<18} {name}")
        return "\n".join(lines)


def _gauge_labels(series: dict[str, float]) -> dict[str, int]:
    """``{"label=Malware": 12.0}`` -> ``{"Malware": 12}``."""
    return {
        key.split("=", 1)[1]: int(value) for key, value in series.items()
    }


def compute_stats(
    graph: PropertyGraph, top_k: int = 10, metrics: dict | None = None
) -> GraphStats:
    """Compute the statistics snapshot for a graph.

    When a metrics snapshot (``SystemReport.metrics`` or the
    ``/metrics`` endpoint payload) carries the ``graph.*`` gauges, the
    size/label/edge-type tallies are read from it instead of being
    recomputed; only the degree rankings still walk the graph.
    """
    degrees = [
        (node.label, str(node.properties.get("name", "")), graph.degree(node.node_id))
        for node in graph.nodes()
    ]
    degrees.sort(key=lambda item: (-item[2], item[0], item[1]))
    histogram: dict[int, int] = {}
    for _label, _name, degree in degrees:
        histogram[degree] = histogram.get(degree, 0) + 1
    gauges = (metrics or {}).get("gauges", {})
    if "graph.nodes" in gauges:
        nodes = int(gauges["graph.nodes"].get("", 0))
        edges = int(gauges.get("graph.edges", {}).get("", 0))
        labels = _gauge_labels(gauges.get("graph.nodes_by_label", {}))
        edge_types = _gauge_labels(gauges.get("graph.edges_by_type", {}))
    else:
        nodes = graph.node_count
        edges = graph.edge_count
        labels = graph.label_counts()
        edge_types = graph.edge_type_counts()
    return GraphStats(
        nodes=nodes,
        edges=edges,
        labels=labels,
        edge_types=edge_types,
        top_entities=degrees[:top_k],
        degree_histogram=dict(sorted(histogram.items())),
    )


@dataclass
class GrowthTracker:
    """Record graph size as ingestion proceeds (benchmark E15)."""

    graph: PropertyGraph
    points: list[GrowthPoint] = field(default_factory=list)
    _reports: int = 0

    def record(self, new_reports: int) -> GrowthPoint:
        self._reports += new_reports
        point = GrowthPoint(
            reports=self._reports,
            nodes=self.graph.node_count,
            edges=self.graph.edge_count,
        )
        self.points.append(point)
        return point

    def series(self) -> list[tuple[int, int, int]]:
        return [(p.reports, p.nodes, p.edges) for p in self.points]


__all__ = ["GraphStats", "GrowthPoint", "GrowthTracker", "compute_stats"]
