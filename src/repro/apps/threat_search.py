"""Threat search application (paper section 3 demo scenarios).

Implements the investigations the demonstration walks through:
keyword search for a threat ("wannacry") that focuses the relevant
subgraph, actor technique profiling ("cozyduke") including other
actors sharing the same techniques, and Cypher search returning the
same node the keyword path finds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.system import SecurityKG
from repro.graphdb.store import Node
from repro.graphdb.traversal import k_hop_subgraph
from repro.ontology.entities import EntityType
from repro.search.index import SearchHit


@dataclass
class Investigation:
    """Everything a keyword investigation surfaces for one threat."""

    query: str
    focus: Node | None
    reports: list[SearchHit] = field(default_factory=list)
    related: dict[str, list[str]] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [f"Investigation: {self.query!r}"]
        if self.focus is not None:
            lines.append(
                f"  focus node: {self.focus.label} "
                f"'{self.focus.properties.get('name', '')}'"
            )
        lines.append(f"  supporting reports: {len(self.reports)}")
        for kind, names in sorted(self.related.items()):
            shown = ", ".join(names[:5])
            more = f" (+{len(names) - 5})" if len(names) > 5 else ""
            lines.append(f"  {kind}: {shown}{more}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """An analyst-shareable investigation report."""
        lines = [f"# Investigation: {self.query}", ""]
        if self.focus is not None:
            name = self.focus.properties.get("name", "")
            lines.append(f"**Focus:** {self.focus.label} `{name}`")
            aliases = self.focus.properties.get("aliases") or []
            if aliases:
                lines.append(
                    "**Also known as:** "
                    + ", ".join(f"`{alias}`" for alias in aliases)
                )
            lines.append("")
        if self.reports:
            lines.append("## Supporting reports")
            lines.append("")
            for hit in self.reports:
                title = hit.fields.get("title", hit.doc_id)
                source = hit.fields.get("source", "")
                lines.append(f"- {title} *({source}, score {hit.score:.1f})*")
            lines.append("")
        if self.related:
            lines.append("## Related entities")
            lines.append("")
            lines.append("| type | entities |")
            lines.append("|---|---|")
            for kind, names in sorted(self.related.items()):
                joined = ", ".join(f"`{name}`" for name in names)
                lines.append(f"| {kind} | {joined} |")
            lines.append("")
        return "\n".join(lines)


class ThreatSearchApp:
    """Application layer over the knowledge graph + search index."""

    def __init__(self, system: SecurityKG):
        self.system = system

    # -- node lookup ------------------------------------------------------

    def find_node(self, name: str, label: str | None = None) -> Node | None:
        """The graph node whose name (or alias) matches ``name``."""
        needle = name.strip().lower()
        best: Node | None = None
        for node in self.system.graph.nodes(label):
            node_name = str(node.properties.get("name", "")).lower()
            aliases = [
                str(alias).lower()
                for alias in node.properties.get("aliases", [])
            ]
            if node_name == needle or needle in aliases:
                return node
            if best is None and needle in node_name:
                best = node
        return best

    # -- demo scenario 1: keyword search ------------------------------------

    def investigate(self, query: str, hops: int = 1) -> Investigation:
        """Keyword search a threat and collect its neighbourhood."""
        reports = self.system.keyword_search(query, limit=10)
        focus = self.find_node(query)
        related: dict[str, list[str]] = {}
        if focus is not None:
            subgraph = k_hop_subgraph(self.system.graph, focus.node_id, hops=hops)
            for node in subgraph.nodes:
                if node.node_id == focus.node_id:
                    continue
                related.setdefault(node.label, []).append(
                    str(node.properties.get("name", ""))
                )
            for names in related.values():
                names.sort()
        return Investigation(query=query, focus=focus, reports=reports, related=related)

    # -- demo scenario 2: actor technique profiling -----------------------------

    def techniques_of(self, actor_name: str) -> list[str]:
        """Techniques an actor uses (via USES edges)."""
        actor = self.find_node(actor_name, EntityType.THREAT_ACTOR.value)
        if actor is None:
            return []
        names = {
            str(node.properties.get("name", ""))
            for node in self.system.graph.neighbors(
                actor.node_id, edge_type="USES", direction="out"
            )
            if node.label == EntityType.TECHNIQUE.value
        }
        return sorted(names)

    def actors_sharing_techniques(self, actor_name: str) -> list[tuple[str, int]]:
        """Other actors using the same techniques, with overlap counts."""
        actor = self.find_node(actor_name, EntityType.THREAT_ACTOR.value)
        if actor is None:
            return []
        overlap: dict[str, int] = {}
        for technique in self.system.graph.neighbors(
            actor.node_id, edge_type="USES", direction="out"
        ):
            if technique.label != EntityType.TECHNIQUE.value:
                continue
            for other in self.system.graph.neighbors(
                technique.node_id, edge_type="USES", direction="in"
            ):
                if other.node_id == actor.node_id:
                    continue
                if other.label != EntityType.THREAT_ACTOR.value:
                    continue
                name = str(other.properties.get("name", ""))
                overlap[name] = overlap.get(name, 0) + 1
        return sorted(overlap.items(), key=lambda kv: (-kv[1], kv[0]))

    # -- demo scenario 3: Cypher equivalence ---------------------------------------

    def cypher_lookup(self, name: str) -> Node | None:
        """The paper's Cypher query; must return the same node as
        keyword search."""
        escaped = name.replace('"', '\\"')
        rows = self.system.cypher(
            f'match (n) where n.merge_key = "{escaped.lower()}" return n'
        )
        if rows:
            return rows[0]["n"]
        rows = self.system.cypher(
            f'match (n) where n.name = "{escaped}" return n'
        )
        return rows[0]["n"] if rows else None


__all__ = ["Investigation", "ThreatSearchApp"]
