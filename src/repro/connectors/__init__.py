"""Storage connectors (paper Figure 1, storage stage).

All connectors share the :class:`~repro.connectors.base.Connector`
interface and the registry that the configuration layer uses to pick
backends: ``graph`` (default, Neo4j-like), ``sql`` (sqlite RDBMS) and
``search`` (full-text index).
"""

from repro.connectors.base import Connector, ConnectorRegistry, IngestStats, registry
from repro.connectors.graph import GraphConnector
from repro.connectors.searchconn import SearchConnector
from repro.connectors.sql import SQLConnector

__all__ = [
    "Connector",
    "ConnectorRegistry",
    "GraphConnector",
    "IngestStats",
    "SQLConnector",
    "SearchConnector",
    "registry",
]
