"""SQL connector (the RDBMS alternative of paper section 2.1).

"If the user cares less about multi-hop relations, he may switch to a
RDBMS using a SQL connector."  This connector materialises the same
ontology into three sqlite tables -- ``entities``, ``relations``,
``reports`` -- with the identical exact-description merge semantics as
the graph connector, so the two backends stay row/node-comparable
(benchmark E14).
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path

from repro.connectors.base import Connector, IngestStats, registry
from repro.ontology.entities import Entity, canonical_name, merge_key_for
from repro.ontology.intermediate import CTIRecord
from repro.ontology.refactor import refactor_record

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entities (
    id INTEGER PRIMARY KEY,
    label TEXT NOT NULL,
    merge_key TEXT NOT NULL,
    name TEXT NOT NULL,
    attributes TEXT NOT NULL DEFAULT '{}',
    UNIQUE (label, merge_key)
);
CREATE TABLE IF NOT EXISTS relations (
    id INTEGER PRIMARY KEY,
    head INTEGER NOT NULL REFERENCES entities(id),
    type TEXT NOT NULL,
    tail INTEGER NOT NULL REFERENCES entities(id),
    weight INTEGER NOT NULL DEFAULT 1,
    attributes TEXT NOT NULL DEFAULT '{}',
    UNIQUE (head, type, tail)
);
CREATE TABLE IF NOT EXISTS reports (
    report_id TEXT PRIMARY KEY,
    source TEXT NOT NULL,
    url TEXT NOT NULL,
    title TEXT NOT NULL,
    category TEXT NOT NULL,
    published TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_entities_label ON entities(label);
CREATE INDEX IF NOT EXISTS idx_relations_type ON relations(type);
"""


@registry.register
class SQLConnector(Connector):
    """Merge intermediate CTI representations into sqlite."""

    name = "sql"

    def __init__(self, path: str | Path | None = None):
        super().__init__()
        self._db_path = str(path) if path is not None else ":memory:"
        self._conn = sqlite3.connect(self._db_path, check_same_thread=False)
        self._conn.executescript(_SCHEMA)
        self._lock = threading.Lock()

    @property
    def connection(self) -> sqlite3.Connection:
        return self._conn

    def _merge_entity(
        self, cursor: sqlite3.Cursor, entity: Entity, stats: IngestStats
    ) -> int:
        merge_key = merge_key_for(entity)
        row = cursor.execute(
            "SELECT id, attributes FROM entities WHERE label = ? AND merge_key = ?",
            (entity.type.value, merge_key),
        ).fetchone()
        if row is not None:
            entity_id, attributes_json = row
            if entity.attributes:
                attributes = json.loads(attributes_json)
                changed = False
                for key, value in entity.attributes.items():
                    if key not in attributes:
                        attributes[key] = value
                        changed = True
                if changed:
                    cursor.execute(
                        "UPDATE entities SET attributes = ? WHERE id = ?",
                        (json.dumps(attributes), entity_id),
                    )
            stats.entities_merged += 1
            return int(entity_id)
        cursor.execute(
            "INSERT INTO entities (label, merge_key, name, attributes) "
            "VALUES (?, ?, ?, ?)",
            (
                entity.type.value,
                merge_key,
                entity.name,
                json.dumps(entity.attributes),
            ),
        )
        stats.entities_created += 1
        return int(cursor.lastrowid)

    def ingest(self, records: list[CTIRecord]) -> IngestStats:
        stats = IngestStats(records=len(records))
        with self._lock:
            cursor = self._conn.cursor()
            for record in records:
                cursor.execute(
                    "INSERT OR IGNORE INTO reports "
                    "(report_id, source, url, title, category, published) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        record.report_id,
                        record.source,
                        record.url,
                        record.title,
                        record.report_category,
                        record.published,
                    ),
                )
                delta = refactor_record(record)
                ids: dict[tuple[str, str], int] = {}
                for entity in delta.entities:
                    ids[entity.key] = self._merge_entity(cursor, entity, stats)
                for relation in delta.relations:
                    head, tail = ids[relation.head.key], ids[relation.tail.key]
                    existing = cursor.execute(
                        "SELECT id, weight FROM relations "
                        "WHERE head = ? AND type = ? AND tail = ?",
                        (head, relation.type.value, tail),
                    ).fetchone()
                    if existing is not None:
                        cursor.execute(
                            "UPDATE relations SET weight = ? WHERE id = ?",
                            (int(existing[1]) + 1, int(existing[0])),
                        )
                        stats.relations_merged += 1
                    else:
                        cursor.execute(
                            "INSERT INTO relations (head, type, tail, attributes) "
                            "VALUES (?, ?, ?, ?)",
                            (
                                head,
                                relation.type.value,
                                tail,
                                json.dumps(relation.attributes),
                            ),
                        )
                        stats.relations_created += 1
            self._conn.commit()
        self.total += stats
        return stats

    # -- reading -------------------------------------------------------

    def entity_count(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM entities").fetchone()[0])

    def relation_count(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM relations").fetchone()[0])

    def label_counts(self) -> dict[str, int]:
        rows = self._conn.execute(
            "SELECT label, COUNT(*) FROM entities GROUP BY label ORDER BY label"
        ).fetchall()
        return {label: int(count) for label, count in rows}

    def find_entity(self, label: str, name: str) -> tuple[int, str] | None:
        row = self._conn.execute(
            "SELECT id, name FROM entities WHERE label = ? AND merge_key = ?",
            (label, canonical_name(name)),
        ).fetchone()
        return (int(row[0]), str(row[1])) if row else None

    def close(self) -> None:
        self._conn.close()


__all__ = ["SQLConnector"]
