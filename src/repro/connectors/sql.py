"""SQL connector (the RDBMS alternative of paper section 2.1).

"If the user cares less about multi-hop relations, he may switch to a
RDBMS using a SQL connector."  This connector materialises the same
ontology into three sqlite tables -- ``entities``, ``relations``,
``reports`` -- with the identical exact-description merge semantics as
the graph connector, so the two backends stay row/node-comparable
(benchmark E14).

Attached to a :class:`~repro.storage.StorageEngine`, the database lives
in memory and durability comes from the engine's journal: each record's
ingest is one journal op replayed on recovery, with snapshots carrying
a full SQL dump.  Standalone, sqlite's own file commits apply as before.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path

from repro.connectors.base import Connector, IngestStats, registry
from repro.ontology.entities import Entity, canonical_name, merge_key_for
from repro.ontology.intermediate import CTIRecord
from repro.ontology.refactor import refactor_record
from repro.runtime import named_lock
from repro.storage.engine import StorageEngine

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entities (
    id INTEGER PRIMARY KEY,
    label TEXT NOT NULL,
    merge_key TEXT NOT NULL,
    name TEXT NOT NULL,
    attributes TEXT NOT NULL DEFAULT '{}',
    UNIQUE (label, merge_key)
);
CREATE TABLE IF NOT EXISTS relations (
    id INTEGER PRIMARY KEY,
    head INTEGER NOT NULL REFERENCES entities(id),
    type TEXT NOT NULL,
    tail INTEGER NOT NULL REFERENCES entities(id),
    weight INTEGER NOT NULL DEFAULT 1,
    attributes TEXT NOT NULL DEFAULT '{}',
    UNIQUE (head, type, tail)
);
CREATE TABLE IF NOT EXISTS reports (
    report_id TEXT PRIMARY KEY,
    source TEXT NOT NULL,
    url TEXT NOT NULL,
    title TEXT NOT NULL,
    category TEXT NOT NULL,
    published TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_entities_label ON entities(label);
CREATE INDEX IF NOT EXISTS idx_relations_type ON relations(type);
"""


def _merge_entity(
    cursor: sqlite3.Cursor, entity: Entity, stats: IngestStats
) -> int:
    """Find-or-create an entity row by (label, merge_key)."""
    merge_key = merge_key_for(entity)
    row = cursor.execute(
        "SELECT id, attributes FROM entities WHERE label = ? AND merge_key = ?",
        (entity.type.value, merge_key),
    ).fetchone()
    if row is not None:
        entity_id, attributes_json = row
        if entity.attributes:
            attributes = json.loads(attributes_json)
            changed = False
            for key, value in entity.attributes.items():
                if key not in attributes:
                    attributes[key] = value
                    changed = True
            if changed:
                cursor.execute(
                    "UPDATE entities SET attributes = ? WHERE id = ?",
                    (json.dumps(attributes), entity_id),
                )
        stats.entities_merged += 1
        return int(entity_id)
    cursor.execute(
        "INSERT INTO entities (label, merge_key, name, attributes) "
        "VALUES (?, ?, ?, ?)",
        (
            entity.type.value,
            merge_key,
            entity.name,
            json.dumps(entity.attributes),
        ),
    )
    stats.entities_created += 1
    return int(cursor.lastrowid)


def _ingest_record(
    cursor: sqlite3.Cursor, record: CTIRecord, stats: IngestStats
) -> None:
    """Merge one record into the three tables (shared with the participant)."""
    cursor.execute(
        "INSERT OR IGNORE INTO reports "
        "(report_id, source, url, title, category, published) "
        "VALUES (?, ?, ?, ?, ?, ?)",
        (
            record.report_id,
            record.source,
            record.url,
            record.title,
            record.report_category,
            record.published,
        ),
    )
    delta = refactor_record(record)
    ids: dict[tuple[str, str], int] = {}
    for entity in delta.entities:
        ids[entity.key] = _merge_entity(cursor, entity, stats)
    for relation in delta.relations:
        head, tail = ids[relation.head.key], ids[relation.tail.key]
        existing = cursor.execute(
            "SELECT id, weight FROM relations "
            "WHERE head = ? AND type = ? AND tail = ?",
            (head, relation.type.value, tail),
        ).fetchone()
        if existing is not None:
            cursor.execute(
                "UPDATE relations SET weight = ? WHERE id = ?",
                (int(existing[1]) + 1, int(existing[0])),
            )
            stats.relations_merged += 1
        else:
            cursor.execute(
                "INSERT INTO relations (head, type, tail, attributes) "
                "VALUES (?, ?, ?, ?)",
                (
                    head,
                    relation.type.value,
                    tail,
                    json.dumps(relation.attributes),
                ),
            )
            stats.relations_created += 1


class SQLParticipant:
    """The SQL mirror's storage-engine adapter.

    The sqlite database is in-memory; the engine's journal is its
    durability.  Ops carry the full serialised record
    (``{"op": "ingest", "record": <CTIRecord dict>}``) so replay re-runs
    the identical merge; snapshots are a full ``iterdump`` script.
    """

    name = "sql"

    def __init__(self) -> None:
        self.connection = sqlite3.connect(":memory:", check_same_thread=False)
        self.connection.executescript(_SCHEMA)

    def apply(self, ops: list[dict]) -> IngestStats:
        stats = IngestStats(records=len(ops))
        cursor = self.connection.cursor()
        for op in ops:
            if op["op"] != "ingest":  # pragma: no cover - corrupted journal
                raise ValueError(f"unknown sql operation {op['op']!r}")
            _ingest_record(cursor, CTIRecord.from_dict(op["record"]), stats)
        self.connection.commit()
        return stats

    def snapshot_data(self) -> str:
        return "\n".join(self.connection.iterdump())

    def load_snapshot(self, data: str) -> None:
        self.reset(schema=False)
        self.connection.executescript(data)
        self.connection.commit()

    def reset(self, schema: bool = True) -> None:
        self.connection.close()
        self.connection = sqlite3.connect(":memory:", check_same_thread=False)
        if schema:
            self.connection.executescript(_SCHEMA)


@registry.register
class SQLConnector(Connector):
    """Merge intermediate CTI representations into sqlite."""

    name = "sql"

    def __init__(
        self,
        path: str | Path | None = None,
        engine: StorageEngine | None = None,
    ):
        super().__init__()
        self.engine = engine
        if engine is not None:
            if path is not None:
                raise ValueError("pass either path or engine, not both")
            self._participant = engine.participant(SQLParticipant.name)
            self._lock = engine.lock
        else:
            self._participant = None
            db_path = str(path) if path is not None else ":memory:"
            self._conn = sqlite3.connect(db_path, check_same_thread=False)
            self._conn.executescript(_SCHEMA)
            self._lock = named_lock("connectors.sql")

    @property
    def connection(self) -> sqlite3.Connection:
        if self._participant is not None:
            return self._participant.connection
        return self._conn

    def ingest(self, records: list[CTIRecord]) -> IngestStats:
        if self.engine is not None:
            ops = [{"op": "ingest", "record": r.to_dict()} for r in records]
            stats = self.engine.log(SQLParticipant.name, ops)
        else:
            stats = IngestStats(records=len(records))
            with self._lock:
                cursor = self._conn.cursor()
                for record in records:
                    _ingest_record(cursor, record, stats)
                self._conn.commit()
        self.total += stats
        return stats

    # -- reading -------------------------------------------------------

    def entity_count(self) -> int:
        with self._lock:
            return int(
                self.connection.execute("SELECT COUNT(*) FROM entities").fetchone()[0]
            )

    def relation_count(self) -> int:
        with self._lock:
            return int(
                self.connection.execute("SELECT COUNT(*) FROM relations").fetchone()[0]
            )

    def label_counts(self) -> dict[str, int]:
        with self._lock:
            rows = self.connection.execute(
                "SELECT label, COUNT(*) FROM entities GROUP BY label ORDER BY label"
            ).fetchall()
        return {label: int(count) for label, count in rows}

    def find_entity(self, label: str, name: str) -> tuple[int, str] | None:
        with self._lock:
            row = self.connection.execute(
                "SELECT id, name FROM entities WHERE label = ? AND merge_key = ?",
                (label, canonical_name(name)),
            ).fetchone()
        return (int(row[0]), str(row[1])) if row else None

    def close(self) -> None:
        if self._participant is None:
            self._conn.close()


__all__ = ["SQLConnector", "SQLParticipant"]
