"""Connector interface.

Connectors terminate the pipeline (paper Figure 1): they take the
extractor-refined intermediate CTI representations, refactor them to
the ontology and merge them into a backend store.  All connectors share
one interface so the configuration layer can swap them (Neo4j-like
graph by default, SQL when multi-hop queries are not needed, search
index for the keyword path).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.obs import NO_OBS
from repro.ontology.intermediate import CTIRecord


@dataclass
class IngestStats:
    """What one ingest batch did to the store."""

    records: int = 0
    entities_created: int = 0
    entities_merged: int = 0
    relations_created: int = 0
    relations_merged: int = 0

    def __iadd__(self, other: "IngestStats") -> "IngestStats":
        self.records += other.records
        self.entities_created += other.entities_created
        self.entities_merged += other.entities_merged
        self.relations_created += other.relations_created
        self.relations_merged += other.relations_merged
        return self


class Connector(abc.ABC):
    """Base class for storage connectors."""

    #: registry name used in configuration files
    name: str = "base"

    def __init__(self):
        self.total = IngestStats()
        #: observability bundle; the owning system replaces this with
        #: its own so per-record ingests are traced and counted
        self.obs = NO_OBS

    @abc.abstractmethod
    def ingest(self, records: list[CTIRecord]) -> IngestStats:
        """Merge a batch of records into the backend store."""

    def ingest_one(self, record: CTIRecord) -> IngestStats:
        with self.obs.tracer.span(
            "store.ingest", connector=self.name, report=record.report_id
        ):
            stats = self.ingest([record])
        metrics = self.obs.metrics
        metrics.inc(
            "store.entities", stats.entities_created,
            connector=self.name, op="created",
        )
        metrics.inc(
            "store.entities", stats.entities_merged,
            connector=self.name, op="merged",
        )
        metrics.inc(
            "store.relations", stats.relations_created,
            connector=self.name, op="created",
        )
        metrics.inc(
            "store.relations", stats.relations_merged,
            connector=self.name, op="merged",
        )
        return stats

    def flush(self) -> None:
        """Make all ingested data durable (no-op by default)."""


@dataclass
class ConnectorRegistry:
    """Named connector factories for the configuration layer."""

    factories: dict[str, type] = field(default_factory=dict)

    def register(self, connector_class: type) -> type:
        self.factories[connector_class.name] = connector_class
        return connector_class

    def create(self, name: str, **kwargs) -> Connector:
        try:
            return self.factories[name](**kwargs)
        except KeyError:
            raise KeyError(
                f"unknown connector {name!r}; known: {sorted(self.factories)}"
            ) from None


registry = ConnectorRegistry()

__all__ = ["Connector", "ConnectorRegistry", "IngestStats", "registry"]
