"""Graph connector (the default, Neo4j-like path).

Implements the storage-stage merge semantics of paper section 2.5:
nodes are merged only when their *description text matches exactly*
(after whitespace/case folding -- the ``merge_key``); anything subtler
(same malware under different vendor naming conventions) is left for
the separate knowledge-fusion stage so that no information is deleted
early.  Parallel edges of the same type between the same endpoints are
collapsed into one edge whose ``weight`` counts observations and whose
``reports`` accumulates provenance.
"""

from __future__ import annotations

from repro.connectors.base import Connector, IngestStats, registry
from repro.graphdb.wal import GraphDatabase
from repro.ontology.entities import Entity, merge_key_for
from repro.ontology.intermediate import CTIRecord
from repro.ontology.refactor import refactor_record


@registry.register
class GraphConnector(Connector):
    """Merge intermediate CTI representations into the property graph.

    All mutations go through the :class:`GraphDatabase` (not the raw
    store) so the WAL records them and the graph survives restarts.
    """

    name = "graph"

    def __init__(self, database: GraphDatabase | None = None):
        super().__init__()
        self.database = database or GraphDatabase()

    @property
    def graph(self):
        return self.database.graph

    def _merge_entity(self, entity: Entity, stats: IngestStats) -> int:
        """Find-or-create a node by (label, merge_key)."""
        merge_key = merge_key_for(entity)
        existing = self.graph.find_node(entity.type.value, merge_key=merge_key)
        if existing is not None:
            new_attributes = {
                key: value
                for key, value in entity.attributes.items()
                if key not in existing.properties
            }
            if new_attributes:
                self.database.set_node_properties(existing.node_id, new_attributes)
            stats.entities_merged += 1
            return existing.node_id
        properties = dict(entity.attributes)
        properties["name"] = entity.name
        properties["merge_key"] = merge_key
        node = self.database.create_node(entity.type.value, properties)
        stats.entities_created += 1
        return node.node_id

    def ingest(self, records: list[CTIRecord]) -> IngestStats:
        stats = IngestStats(records=len(records))
        for record in records:
            delta = refactor_record(record)
            node_ids: dict[tuple[str, str], int] = {}
            for entity in delta.entities:
                node_ids[entity.key] = self._merge_entity(entity, stats)
            for relation in delta.relations:
                src = node_ids[relation.head.key]
                dst = node_ids[relation.tail.key]
                existing = [
                    edge
                    for edge in self.graph.out_edges(src, relation.type.value)
                    if edge.dst == dst
                ]
                report_id = str(relation.provenance.get("report_id", ""))
                if existing:
                    edge = existing[0]
                    reports = list(edge.properties.get("reports", []))
                    if report_id and report_id not in reports:
                        reports.append(report_id)
                    self.database.set_edge_properties(
                        edge.edge_id,
                        {
                            "weight": int(edge.properties.get("weight", 1)) + 1,
                            "reports": reports,
                        },
                    )
                    stats.relations_merged += 1
                else:
                    properties = dict(relation.attributes)
                    properties["weight"] = 1
                    properties["reports"] = [report_id] if report_id else []
                    if relation.provenance.get("sentence"):
                        properties["sentence"] = relation.provenance["sentence"]
                    self.database.create_edge(
                        src, relation.type.value, dst, properties
                    )
                    stats.relations_created += 1
        self.total += stats
        return stats

    def flush(self) -> None:
        self.database.snapshot()


__all__ = ["GraphConnector"]
