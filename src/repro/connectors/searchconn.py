"""Search connector: feeds the keyword-search path.

The UI's keyword search runs through the full-text index (the
Elasticsearch role in paper section 2.6).  This connector indexes each
report's title, body, source and extracted entity names, so a query
like "wannacry" surfaces the relevant reports and, through their
entity fields, the graph nodes to focus.

Attached to a :class:`~repro.storage.StorageEngine`, every document it
indexes becomes an incremental ``add`` journal op in the engine's
shared commit -- replacing the old save-the-whole-index-at-exit
persistence with per-batch durability.
"""

from __future__ import annotations

from repro.connectors.base import Connector, IngestStats, registry
from repro.ontology.intermediate import CTIRecord
from repro.search.index import SearchIndex, SearchIndexParticipant
from repro.storage.engine import StorageEngine

_DEFAULT_BOOSTS = {"title": 3.0, "entities": 2.0, "body": 1.0}


@registry.register
class SearchConnector(Connector):
    """Index intermediate CTI representations for keyword search."""

    name = "search"

    def __init__(
        self,
        index: SearchIndex | None = None,
        engine: StorageEngine | None = None,
    ):
        super().__init__()
        self.engine = engine
        if engine is not None:
            if index is not None:
                raise ValueError("pass either index or engine, not both")
            participant = engine.participant(SearchIndexParticipant.name)
            self.index = participant.index
            self.index.field_boosts = dict(_DEFAULT_BOOSTS)
        else:
            self.index = index or SearchIndex(field_boosts=_DEFAULT_BOOSTS)

    def ingest(self, records: list[CTIRecord]) -> IngestStats:
        stats = IngestStats(records=len(records))
        ops: list[dict] = []
        for record in records:
            entity_names = " ".join(
                sorted({mention.text for mention in record.mentions})
            )
            ioc_values = " ".join(
                value for values in record.iocs.values() for value in values
            )
            fields = {
                "title": record.title,
                "body": record.text,
                "entities": f"{entity_names} {ioc_values}".strip(),
                "source": record.source,
                "url": record.url,
                "category": record.report_category,
            }
            if self.engine is not None:
                ops.append(
                    {"op": "add", "doc_id": record.report_id, "fields": fields}
                )
            else:
                self.index.add(record.report_id, fields)
            stats.entities_created += 1
        if ops:
            self.engine.log(SearchIndexParticipant.name, ops)
        self.total += stats
        return stats


__all__ = ["SearchConnector"]
