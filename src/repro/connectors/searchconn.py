"""Search connector: feeds the keyword-search path.

The UI's keyword search runs through the full-text index (the
Elasticsearch role in paper section 2.6).  This connector indexes each
report's title, body, source and extracted entity names, so a query
like "wannacry" surfaces the relevant reports and, through their
entity fields, the graph nodes to focus.
"""

from __future__ import annotations

from repro.connectors.base import Connector, IngestStats, registry
from repro.ontology.intermediate import CTIRecord
from repro.search.index import SearchIndex


@registry.register
class SearchConnector(Connector):
    """Index intermediate CTI representations for keyword search."""

    name = "search"

    def __init__(self, index: SearchIndex | None = None):
        super().__init__()
        self.index = index or SearchIndex(
            field_boosts={"title": 3.0, "entities": 2.0, "body": 1.0}
        )

    def ingest(self, records: list[CTIRecord]) -> IngestStats:
        stats = IngestStats(records=len(records))
        for record in records:
            entity_names = " ".join(
                sorted({mention.text for mention in record.mentions})
            )
            ioc_values = " ".join(
                value for values in record.iocs.values() for value in values
            )
            self.index.add(
                record.report_id,
                {
                    "title": record.title,
                    "body": record.text,
                    "entities": f"{entity_names} {ioc_values}".strip(),
                    "source": record.source,
                    "url": record.url,
                    "category": record.report_category,
                },
            )
            stats.entities_created += 1
        self.total += stats
        return stats


__all__ = ["SearchConnector"]
