"""Hash partitioning of entities and reports across N shards.

The :class:`ShardRouter` is the single placement authority of the
sharded deployment (ROADMAP item 1): every layer that must decide
"which partition owns this?" -- the store stage, the crawl-state
facade, CREATE routing in the scatter-gather Cypher engine -- asks the
router, so placement stays consistent across layers and across runs.

Placement is a pure function of the key and the partition count:

* keys are hashed with ``blake2b`` (not :func:`hash`, which is salted
  per process by ``PYTHONHASHSEED``), so the same key lands on the same
  partition in every process, every run, and every insertion order;
* records are routed by their *anchor entity* -- the lexicographically
  smallest entity key among the record's mentions -- so reports about
  the same primary entity co-locate and the graph connector can merge
  them instead of duplicating the entity across partitions.  Records
  with no mentions fall back to their report id.
"""

from __future__ import annotations

import hashlib

from repro.ontology.entities import canonical_name
from repro.ontology.intermediate import CTIRecord

#: Separator between the label and name halves of an entity key; a
#: control character so it cannot collide with report text.
_KEY_SEP = "\x1f"


class ShardRouter:
    """Deterministic hash placement of keys over ``partitions`` shards."""

    def __init__(self, partitions: int):
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        self.partitions = int(partitions)

    def partition_for(self, key: str) -> int:
        """The owning partition of an opaque string key."""
        if self.partitions == 1:
            return 0
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.partitions

    # -- entity and record placement ----------------------------------

    def entity_key(self, label: str, name: str) -> str:
        """Canonical placement key of one entity (label + folded name)."""
        return f"{label}{_KEY_SEP}{canonical_name(name)}"

    def partition_for_entity(self, label: str, name: str) -> int:
        return self.partition_for(self.entity_key(label, name))

    def anchor_key(self, record: CTIRecord) -> str:
        """The record's placement key: its lexicographically smallest
        entity key (stable no matter the order mentions were extracted
        in), falling back to the report id for mention-less records."""
        candidates = [
            self.entity_key(mention.type.value, mention.text)
            for mention in record.mentions
        ]
        if candidates:
            return min(candidates)
        return f"report{_KEY_SEP}{record.report_id}"

    def partition_for_record(self, record: CTIRecord) -> int:
        return self.partition_for(self.anchor_key(record))

    def group_records(
        self, records: list[CTIRecord]
    ) -> dict[int, list[CTIRecord]]:
        """Split a batch into per-partition sublists (original order
        preserved within each partition; every partition present)."""
        groups: dict[int, list[CTIRecord]] = {
            index: [] for index in range(self.partitions)
        }
        for record in records:
            groups[self.partition_for_record(record)].append(record)
        return groups


__all__ = ["ShardRouter"]
