"""N independent storage partitions behind one store/search/fusion facade.

Each :class:`ShardPartition` is a complete vertical slice of the
storage stage: its own :class:`~repro.storage.engine.StorageEngine`
(journal, snapshot/manifest generations, checkpoint cycle, ingest
markers, crash points) with its own graph / search-index / crawl-state
(and optionally SQL) participants, connectors and per-partition Cypher
engine.  The :class:`ShardSet` owns N of them plus the
:class:`~repro.sharding.router.ShardRouter` that decides placement, and
exposes the scatter-gather operations every facade layer builds on:

* ``store()`` fans a record batch out to one worker thread per
  partition; each worker commits its records to *its* engine only, so a
  crash injected on one partition loses in-flight work on that shard
  alone while the others run to completion (the E21 isolation claim);
* ``search()`` / ``fuse()`` / ``stats()`` scan every partition and
  merge with a canonical ordering, so seeded virtual-clock runs stay
  byte-identical no matter how the OS scheduled the workers.

Graph ids are globally unique: partition ``i`` hands out ids from
``i * 2**40 + 1``, so merged query results never need renumbering.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.connectors.base import Connector, IngestStats
from repro.connectors.graph import GraphConnector
from repro.connectors.searchconn import SearchConnector
from repro.connectors.sql import SQLConnector, SQLParticipant
from repro.crawlers.state import CrawlParticipant, CrawlState
from repro.fusion.fuse import FusionReport, KnowledgeFusion
from repro.graphdb.cypher.executor import CypherEngine
from repro.graphdb.store import PropertyGraph
from repro.graphdb.wal import GraphDatabase, GraphParticipant
from repro.obs import NO_OBS, Obs
from repro.ontology.intermediate import CTIRecord
from repro.runtime import Clock, clock_from_name, named_lock
from repro.search.index import SearchHit, SearchIndexParticipant
from repro.sharding.router import ShardRouter
from repro.storage.engine import StorageEngine
from repro.storage.faults import InjectedCrash

#: Id-range stride between partitions (2**40 ids each -- effectively
#: inexhaustible per shard, and the partition of an id is ``id >> 40``).
ID_STRIDE = 1 << 40


class ShardWorkerStats:
    """Per-partition ingest counters behind that partition's own lock.

    The ``shard.<n>.stats`` locks are the per-partition tier of the
    lock hierarchy: the analyzer records the family as the single
    canonical name ``shard.*.stats``, and the runtime witness allows
    same-family nesting only in ascending instance order.
    """

    def __init__(self, index: int):
        self.index = index
        self._lock = named_lock(f"shard.{index}.stats")
        self.stored = 0
        self.skipped = 0

    def record(self, stored: int = 0, skipped: int = 0) -> None:
        with self._lock:
            self.stored += stored
            self.skipped += skipped

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {"stored": self.stored, "skipped": self.skipped}


@dataclass
class ShardStoreOutcome:
    """What one (possibly partial) store fan-out accomplished."""

    ingest: dict[str, IngestStats] = field(default_factory=dict)
    stored: int = 0
    skipped: int = 0


class ShardPartition:
    """One shard: engine + participants + connectors + query engine."""

    def __init__(
        self,
        index: int,
        path: str | Path | None,
        connector_names: list[str],
        faults=None,
        obs: Obs = NO_OBS,
        fsync: bool = True,
        clock: Clock | None = None,
    ):
        self.index = index
        participants = [
            GraphParticipant(id_base=index * ID_STRIDE),
            SearchIndexParticipant(),
            CrawlParticipant(),
        ]
        if "sql" in connector_names:
            participants.append(SQLParticipant())
        self.engine = StorageEngine(
            path, participants, faults=faults, fsync=fsync, obs=obs
        )
        self.database = GraphDatabase(engine=self.engine)
        self.state = CrawlState(engine=self.engine)
        self.connectors: dict[str, Connector] = {}
        for name in connector_names:
            connector = self._build_connector(name)
            connector.obs = obs
            self.connectors[name] = connector
        self.cypher = CypherEngine(self.database.graph, obs=obs, clock=clock)
        self.stats = ShardWorkerStats(index)

    def _build_connector(self, name: str) -> Connector:
        if name == "graph":
            return GraphConnector(self.database)
        if name == "search":
            return SearchConnector(engine=self.engine)
        if name == "sql":
            return SQLConnector(engine=self.engine)
        from repro.connectors.base import registry

        return registry.create(name)

    @property
    def graph(self) -> PropertyGraph:
        return self.database.graph

    @property
    def search_index(self):
        return self.engine.participant(SearchIndexParticipant.name).index


class ShardSet:
    """N partitions plus the scatter-gather operations over them.

    Parameters
    ----------
    partitions:
        Number of shards (>= 1).
    root:
        Directory holding one ``partition-<i>`` engine directory per
        shard; ``None`` keeps every partition in memory.
    connectors:
        Connector names each partition instantiates (same vocabulary as
        ``SystemConfig.connectors``).
    faults:
        Optional :class:`~repro.storage.CrashInjector`, armed on
        partition 0 only -- the deterministic "kill one shard" story
        the E21 isolation benchmark measures.
    clock:
        Runtime clock; store workers register with it so a virtual
        clock advances through modelled commit latency deterministically.
    """

    def __init__(
        self,
        partitions: int,
        root: str | Path | None = None,
        connectors: list[str] | None = None,
        faults=None,
        obs: Obs | None = None,
        clock: Clock | None = None,
        fsync: bool = True,
    ):
        self.obs = obs if obs is not None else NO_OBS
        self.clock = clock if clock is not None else clock_from_name("real")
        self.router = ShardRouter(partitions)
        self.connector_names = list(
            connectors if connectors is not None else ["graph", "search"]
        )
        self.partitions: list[ShardPartition] = [
            ShardPartition(
                index,
                None if root is None else Path(root) / f"partition-{index}",
                self.connector_names,
                faults=faults if index == 0 else None,
                obs=self.obs,
                fsync=fsync,
                clock=self.clock,
            )
            for index in range(partitions)
        ]

    # -- the store fan-out ---------------------------------------------

    def store(
        self,
        records: list[CTIRecord],
        parent_span=None,
        commit_latency: float = 0.0,
    ) -> ShardStoreOutcome:
        """Commit a batch: one worker thread per partition, each writing
        only to its own engine.

        Exactly-once semantics carry over per partition: each engine
        keeps its own ingest markers, so a replayed batch skips records
        its partition already owns.  ``commit_latency`` models per-commit
        I/O time on the injected clock (slept *outside* every lock).  An
        :class:`InjectedCrash` on any partition is re-raised after all
        workers finish -- the surviving partitions' commits are already
        durable, but the batch flush is skipped, exactly like a killed
        single-engine run.
        """
        groups = self.router.group_records(list(records))
        results: list[ShardStoreOutcome | None] = [None] * len(self.partitions)
        crashes: list[InjectedCrash | None] = [None] * len(self.partitions)
        barrier = threading.Barrier(len(self.partitions))
        threads = [
            threading.Thread(
                target=self._store_worker,
                args=(
                    partition, groups[partition.index], parent_span, barrier,
                    commit_latency, results, crashes,
                ),
                name=f"shard-worker-{partition.index}",
                daemon=True,
            )
            for partition in self.partitions
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for crash in crashes:
            if crash is not None:
                raise crash
        for partition in self.partitions:
            partition.engine.flush()
        merged = ShardStoreOutcome(
            ingest={name: IngestStats() for name in self.connector_names}
        )
        for result in results:
            if result is None:
                continue
            for name, stats in result.ingest.items():
                merged.ingest[name] += stats
            merged.stored += result.stored
            merged.skipped += result.skipped
        return merged

    def _store_worker(
        self, partition, records, parent, barrier, commit_latency,
        results, crashes,
    ) -> None:
        index = partition.index
        totals = {name: IngestStats() for name in partition.connectors}
        stored = skipped = 0
        try:
            with self.clock.worker():
                # every worker must be registered before any of them
                # sleeps, or the virtual clock would advance early
                barrier.wait()
                with self.obs.tracer.span(
                    "store.shard", parent=parent, partition=index
                ) as span:
                    for record in records:
                        if partition.engine.is_ingested(record.report_id):
                            skipped += 1
                            continue
                        with partition.engine.transaction() as tx:
                            for name, connector in partition.connectors.items():
                                totals[name] += connector.ingest_one(record)
                            tx.adopt_staged(CrawlParticipant.name, [record.url])
                            tx.mark_ingested(record.report_id)
                        stored += 1
                        if commit_latency > 0.0:
                            self.clock.sleep(commit_latency)
                    span.set("stored", stored)
                    span.set("skipped", skipped)
        except InjectedCrash as crash:
            crashes[index] = crash
        partition.stats.record(stored=stored, skipped=skipped)
        self.obs.metrics.inc("shard.reports_stored", stored, partition=str(index))
        self.obs.metrics.inc("shard.reports_skipped", skipped, partition=str(index))
        results[index] = ShardStoreOutcome(
            ingest=totals, stored=stored, skipped=skipped
        )

    # -- scatter-gather reads ------------------------------------------

    def search(self, query: str, limit: int = 10) -> list[SearchHit]:
        """Keyword search over every partition's index, merged by
        ``(-score, doc_id)``.

        BM25 statistics (document frequencies, average lengths) are
        per-partition, so scores are a local approximation of the
        single-index ranking -- the standard distributed-search
        trade-off.  The merge order itself is canonical.
        """
        hits: list[SearchHit] = []
        for partition in self.partitions:
            hits.extend(partition.search_index.search(query, limit=limit))
        hits.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return hits[:limit]

    def fuse(self, fusion: KnowledgeFusion | None = None) -> FusionReport:
        """Knowledge fusion partition by partition (entities co-locate
        by anchor hash, so merge candidates are overwhelmingly local);
        the per-partition reports are summed and group lists sorted for
        a canonical merged report."""
        fusion = fusion if fusion is not None else KnowledgeFusion()
        merged = FusionReport()
        groups: list[list[str]] = []
        for partition in self.partitions:
            report = fusion.run(partition.graph)
            merged.nodes_before += report.nodes_before
            merged.nodes_after += report.nodes_after
            merged.groups_merged += report.groups_merged
            merged.aliases_resolved += report.aliases_resolved
            groups.extend(report.merged_groups)
        merged.merged_groups = sorted(groups)
        return merged

    def stats(self) -> dict[str, object]:
        """Aggregate graph statistics plus a per-partition breakdown."""
        labels: dict[str, int] = {}
        edge_types: dict[str, int] = {}
        nodes = edges = 0
        per_partition: list[dict[str, object]] = []
        for partition in self.partitions:
            graph = partition.graph
            nodes += graph.node_count
            edges += graph.edge_count
            for label, count in graph.label_counts().items():
                labels[label] = labels.get(label, 0) + count
            for edge_type, count in graph.edge_type_counts().items():
                edge_types[edge_type] = edge_types.get(edge_type, 0) + count
            per_partition.append(
                {
                    "partition": partition.index,
                    "nodes": graph.node_count,
                    "edges": graph.edge_count,
                    "reports_ingested": partition.engine.ingested_count,
                }
            )
        return {
            "nodes": nodes,
            "edges": edges,
            "labels": dict(sorted(labels.items())),
            "edge_types": dict(sorted(edge_types.items())),
            "partitions": per_partition,
        }

    def sql_stats(self) -> dict[str, object]:
        """Aggregated SQL-mirror counts (scatter-gather over each
        partition's :class:`SQLConnector`)."""
        if "sql" not in self.connector_names:
            raise RuntimeError("the 'sql' connector is not configured")
        entities = relations = 0
        labels: dict[str, int] = {}
        for partition in self.partitions:
            connector = partition.connectors["sql"]
            entities += connector.entity_count()
            relations += connector.relation_count()
            for label, count in connector.label_counts().items():
                labels[label] = labels.get(label, 0) + count
        return {
            "entities": entities,
            "relations": relations,
            "labels": dict(sorted(labels.items())),
        }

    def merged_graph(self) -> PropertyGraph:
        """One union graph for whole-graph consumers (export, hunting,
        offline stats).  Node ids are preserved verbatim -- the
        per-partition id ranges are disjoint -- but the result is a
        detached copy: mutations do not write back to any partition."""
        merged = PropertyGraph()
        for partition in self.partitions:
            graph = partition.graph
            for node in graph.nodes():
                merged.restore_node(node.node_id, node.label, node.properties)
            for edge in graph.edges():
                merged.create_edge(edge.src, edge.type, edge.dst, edge.properties)
        return merged

    def feed_stamp(self) -> tuple[tuple[int, int, int], ...]:
        """Cheap per-partition change stamp for the feed publisher:
        ``(last_seq, node_count, edge_count)`` per shard, in partition
        order.  Deterministic for seeded runs, so the sharded gather of
        feed deltas is too."""
        return tuple(
            (
                partition.engine.last_seq,
                partition.graph.node_count,
                partition.graph.edge_count,
            )
            for partition in self.partitions
        )

    # -- ingest markers -------------------------------------------------

    def is_ingested(self, report_id: str) -> bool:
        return any(p.engine.is_ingested(report_id) for p in self.partitions)

    @property
    def ingested_count(self) -> int:
        return sum(p.engine.ingested_count for p in self.partitions)

    def ingested_ids(self) -> list[str]:
        ids: set[str] = set()
        for partition in self.partitions:
            ids.update(partition.engine.ingested_ids())
        return sorted(ids)

    # -- lifecycle ------------------------------------------------------

    def checkpoint(self) -> None:
        for partition in self.partitions:
            partition.engine.checkpoint()

    def close(self) -> None:
        for partition in self.partitions:
            partition.engine.close()


class ShardedCrawlState:
    """One logical crawl state over N partition-attached states.

    URLs and sources are routed by hash; a URL's partition may differ
    from its eventual report's record partition (records route by
    anchor *entity*), in which case the staged seen-delta becomes
    durable with the batch flush instead of the report's own commit --
    a crash in between simply re-crawls that report, and the ingest
    marker on the owning partition keeps the replay exactly-once.
    """

    def __init__(self, shards: ShardSet):
        self._shards = shards
        self._router = shards.router

    def _state_for(self, key: str) -> CrawlState:
        return self._shards.partitions[self._router.partition_for(key)].state

    def is_seen(self, url: str) -> bool:
        return self._state_for(url).is_seen(url)

    def mark_seen(self, url: str) -> bool:
        return self._state_for(url).mark_seen(url)

    def unmark(self, url: str) -> None:
        self._state_for(url).unmark(url)

    def record_crawl(self, source: str, timestamp: float) -> None:
        self._state_for(source).record_crawl(source, timestamp)

    def last_crawl(self, source: str) -> float | None:
        return self._state_for(source).last_crawl(source)

    @property
    def seen_count(self) -> int:
        return sum(p.state.seen_count for p in self._shards.partitions)

    def save(self) -> None:
        for partition in self._shards.partitions:
            partition.state.save()


__all__ = [
    "ID_STRIDE",
    "ShardPartition",
    "ShardSet",
    "ShardStoreOutcome",
    "ShardWorkerStats",
    "ShardedCrawlState",
]
