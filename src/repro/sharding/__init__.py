"""Multi-partition sharding: hash placement, N engines, scatter-gather.

See :mod:`repro.sharding.router` for placement,
:mod:`repro.sharding.shards` for the partition set and the store
fan-out, and :mod:`repro.sharding.query` for scatter-gather Cypher.
"""

from repro.sharding.query import ShardedCypherEngine
from repro.sharding.router import ShardRouter
from repro.sharding.shards import (
    ID_STRIDE,
    ShardPartition,
    ShardSet,
    ShardStoreOutcome,
    ShardWorkerStats,
    ShardedCrawlState,
)

__all__ = [
    "ID_STRIDE",
    "ShardPartition",
    "ShardRouter",
    "ShardSet",
    "ShardStoreOutcome",
    "ShardWorkerStats",
    "ShardedCrawlState",
    "ShardedCypherEngine",
]
