"""Scatter-gather Cypher execution over N graph partitions.

The :class:`ShardedCypherEngine` keeps the single-engine contract --
``run(query, strict=None)`` returning :class:`ResultRow` lists with the
same DISTINCT / ORDER BY / SKIP / LIMIT semantics -- but executes in
three phases:

1. **Analyze once** against the *union* schema of every partition (plus
   the ontology), so strict mode sees the same vocabulary a
   single-partition deployment would.
2. **Scatter**: the parsed query runs on every partition with the
   gather-owned clauses stripped (ORDER BY / DISTINCT / SKIP; LIMIT is
   pushed down only when no reordering can change which rows survive).
   Aggregates are rewritten into mergeable per-partition partials:
   counts and sums stay as-is (they sum), ``avg`` becomes a
   (sum, count) partial pair, ``min``/``max`` merge directly, and
   DISTINCT aggregates -- ``count(DISTINCT ...)``, ``avg(DISTINCT
   ...)`` etc. -- ship their ``collect(DISTINCT ...)`` value sets so
   the gather side can dedupe across partitions before reducing.
3. **Gather** with canonical ordering: partition results concatenate in
   partition order, aggregate partials merge by group key and are
   finalized back to the requested aliases, then ORDER BY / DISTINCT /
   SKIP / LIMIT apply once, globally.  Seeded virtual-clock runs
   therefore produce byte-identical results.

Cross-partition entity identity: the same logical entity (one
``merge_key``) may exist on several partitions when relations pulled it
into records anchored elsewhere.  Gather-side grouping and DISTINCT
treat nodes with equal ``(label, merge_key)`` as the same value, so
entity-keyed results match the single-partition answer.

Pagination (:meth:`ShardedCypherEngine.run_paginated`) serves
streaming queries (no aggregate / ORDER BY / DISTINCT) partition by
partition with each partition's scan suspended via its preemptable
:class:`~repro.graphdb.cypher.executor.QueryTask` continuation;
blocking queries fall back to a gather-then-offset continuation.
"""

from __future__ import annotations

from dataclasses import replace

from repro.graphdb.cypher import ast
from repro.graphdb.cypher.executor import (
    CypherAnalysisError,
    CypherEngine,
    CypherPage,
    CypherRuntimeError,
    QueryProfile,
    QueryTask,
    ResultRow,
    _contains_count,
    _sort_key,
    reduce_numeric,
)
from repro.graphdb.cypher.parser import parse
from repro.graphdb.store import Edge, Node
from repro.sharding.router import ShardRouter


def _gather_key(value: object) -> object:
    """Partition-independent identity for gather-side grouping.

    Nodes compare by ``(label, merge_key)`` when a merge key exists (the
    connector stamps one on every entity node), falling back to the
    globally-unique node id; everything else matches the single-engine
    ``_hashable`` semantics.
    """
    if isinstance(value, Node):
        merge = value.properties.get("merge_key")
        if isinstance(merge, str):
            return ("__node__", value.label, merge)
        return ("__node__", value.node_id)
    if isinstance(value, Edge):
        return ("__edge__", value.edge_id)
    if isinstance(value, list):
        return tuple(_gather_key(v) for v in value)
    return value


def _dedupe(values: list[object]) -> list[object]:
    """Order-preserving dedup by gather key (collect(DISTINCT ...))."""
    seen: list[object] = []
    out: list[object] = []
    for value in values:
        key = _gather_key(value)
        if key in seen:
            continue
        seen.append(key)
        out.append(value)
    return out


def _localize_returns(
    returns: list[ast.ReturnItem],
) -> tuple[list[ast.ReturnItem], list[tuple[str, ast.ReturnItem, list[tuple[str, str]]]]]:
    """Rewrite RETURN items into mergeable per-partition partials.

    Returns ``(local_items, specs)``: the items each partition
    evaluates, and per original item a ``(kind, item, partials)`` spec
    where ``partials`` lists ``(local_alias, merge_op)`` pairs driving
    the gather-side merge.  Partial-only aliases are ``#``-prefixed so
    they can never collide with parsed aliases.
    """
    local_items: list[ast.ReturnItem] = []
    specs: list[tuple[str, ast.ReturnItem, list[tuple[str, str]]]] = []
    for item in returns:
        expr = item.expr
        if not _contains_count(expr):
            local_items.append(item)
            specs.append(("group", item, []))
        elif isinstance(expr, ast.Count) and expr.distinct and expr.operand is not None:
            # partitions may have seen overlapping values: ship the
            # distinct value sets and dedupe across partitions
            local_items.append(
                ast.ReturnItem(ast.Collect(expr.operand, distinct=True), item.alias)
            )
            specs.append(("count_distinct", item, [(item.alias, "concat")]))
        elif isinstance(expr, ast.Count):
            local_items.append(item)
            specs.append(("passthrough", item, [(item.alias, "sum")]))
        elif isinstance(expr, ast.Collect):
            local_items.append(item)
            specs.append(("collect", item, [(item.alias, "concat")]))
        elif isinstance(expr, ast.NumAgg) and expr.distinct:
            local_items.append(
                ast.ReturnItem(ast.Collect(expr.operand, distinct=True), item.alias)
            )
            specs.append(("numagg_distinct", item, [(item.alias, "concat")]))
        elif isinstance(expr, ast.NumAgg) and expr.func == "avg":
            sum_alias = f"#{item.alias}#sum"
            n_alias = f"#{item.alias}#n"
            local_items.append(
                ast.ReturnItem(ast.NumAgg("sum", expr.operand), sum_alias)
            )
            local_items.append(ast.ReturnItem(ast.Count(expr.operand), n_alias))
            specs.append(("avg", item, [(sum_alias, "sum"), (n_alias, "sum")]))
        elif isinstance(expr, ast.NumAgg) and expr.func in ("min", "max"):
            local_items.append(item)
            specs.append(("passthrough", item, [(item.alias, expr.func)]))
        elif isinstance(expr, ast.NumAgg) and expr.func == "sum":
            local_items.append(item)
            specs.append(("passthrough", item, [(item.alias, "sum")]))
        else:
            raise CypherRuntimeError(f"unsupported aggregate expression: {expr}")
    return local_items, specs


class ShardedCypherEngine:
    """The Cypher facade of a sharded deployment.

    Holds one per-partition :class:`CypherEngine` (strictness disabled
    on the partitions -- analysis happens once here, against the union
    schema).  With a single partition it delegates wholesale, so N=1
    behaviour is exactly the single-engine behaviour.
    """

    def __init__(self, engines: list[CypherEngine], strict: bool = True):
        if not engines:
            raise ValueError("at least one partition engine is required")
        self._engines = list(engines)
        self.strict = strict
        self._schema_cache: tuple[tuple, object] | None = None

    # -- analysis ------------------------------------------------------

    def analyze(self, query: str | ast.Query, source: str = ""):
        """Diagnostics against the union of every partition's schema."""
        from repro.analysis.cypher_check import (
            CypherAnalyzer,
            graph_schema,
            ontology_schema,
        )

        key = tuple(
            (engine.graph.node_count, engine.graph.edge_count)
            for engine in self._engines
        )
        if self._schema_cache is None or self._schema_cache[0] != key:
            schema = ontology_schema()
            for engine in self._engines:
                schema = schema.merged_with(graph_schema(engine.graph))
            self._schema_cache = (key, schema)
        return CypherAnalyzer(self._schema_cache[1]).analyze(query, source)

    def _check(self, parsed: ast.Query, source: str) -> None:
        from repro.analysis.diagnostics import errors

        failures = errors(self.analyze(parsed, source))
        if failures:
            raise CypherAnalysisError(failures, source)

    # -- execution -----------------------------------------------------

    def run(self, query: str, strict: bool | None = None) -> list[ResultRow]:
        parsed = parse(query)
        if self.strict if strict is None else strict:
            self._check(parsed, query)
        if isinstance(parsed, ast.CreateQuery):
            if len(self._engines) == 1:
                return self._engines[0].execute(parsed)
            return self._engines[self._create_target(parsed)].execute(parsed)
        if parsed.explain:
            # plan shapes agree across partitions (estimates may not);
            # partition 0's plan stands for the scatter
            return self._engines[0].explain_rows(parsed)
        if parsed.profile:
            return self._profile_parsed(parsed).rows
        if len(self._engines) == 1:
            return self._engines[0].execute(parsed)
        return self._scatter_match(parsed)

    def profile(
        self,
        query: str,
        strict: bool | None = None,
        step_cost: float = 0.0,
    ) -> QueryProfile:
        """Profile a MATCH query across every partition.

        N=1 delegates to the single engine.  Otherwise each partition
        executes its localized query under per-operator instrumentation
        (the per-partition operator trees land in
        :attr:`QueryProfile.partitions`) and the gather side reports as
        a synthetic ``Gather`` root whose self time is the merge /
        sort / dedup work done here.
        """
        parsed = parse(query)
        if self.strict if strict is None else strict:
            self._check(parsed, query)
        if not isinstance(parsed, ast.MatchQuery):
            raise CypherRuntimeError("PROFILE applies to MATCH queries only")
        return self._profile_parsed(parsed, step_cost=step_cost)

    def _profile_parsed(
        self, parsed: ast.MatchQuery, step_cost: float = 0.0
    ) -> QueryProfile:
        if len(self._engines) == 1:
            return self._engines[0].profile_parsed(parsed, step_cost=step_cost)
        subprofiles: dict[str, list[dict]] = {}

        def profiled_execute(index, engine, local):
            sub = engine.profile_parsed(local, step_cost=step_cost)
            subprofiles[str(index)] = sub.operators
            return sub.rows

        clock = self._engines[0].clock
        started = clock.now()
        rows = self._scatter_match(parsed, execute=profiled_execute)
        elapsed = max(0.0, clock.now() - started)
        scatter_s = sum(
            ops[0]["cumulative_s"] for ops in subprofiles.values() if ops
        )
        gather = {
            "operator": "Gather",
            "detail": f"{len(self._engines)} partitions",
            "rows": len(rows),
            "calls": len(self._engines),
            "cumulative_s": elapsed,
            "self_s": max(0.0, elapsed - scatter_s),
        }
        return QueryProfile(
            rows=rows, operators=[gather], partitions=subprofiles
        )

    def run_paginated(
        self,
        query: str,
        page_size: int,
        continuation: dict | None = None,
        strict: bool | None = None,
    ) -> CypherPage:
        """Preemptable, paged execution across every partition.

        Streaming queries (no aggregate, ORDER BY or DISTINCT) are
        served partition by partition: the active partition's scan is a
        :class:`QueryTask` whose save/load continuation rides inside
        this engine's continuation, so no partition scans past the
        requested page.  Blocking queries gather once per page and
        resume by offset.
        """
        if page_size < 1:
            raise CypherRuntimeError("page_size must be >= 1")
        parsed = parse(query)
        if self.strict if strict is None else strict:
            self._check(parsed, query)
        if isinstance(parsed, ast.CreateQuery):
            if len(self._engines) == 1:
                self._engines[0].execute(parsed)
            else:
                self._engines[self._create_target(parsed)].execute(parsed)
            return CypherPage(rows=[])
        if parsed.explain:
            return CypherPage(rows=self._engines[0].explain_rows(parsed))
        if parsed.profile:
            # like EXPLAIN: one full response, no continuation
            return CypherPage(rows=self._profile_parsed(parsed).rows)
        if len(self._engines) == 1:
            return self._engines[0].run_paginated(
                query, page_size, continuation=continuation, strict=False
            )
        has_aggregate = any(
            _contains_count(item.expr) for item in parsed.returns
        )
        if has_aggregate or parsed.order_by or parsed.distinct:
            return self._paginate_blocking(parsed, page_size, continuation)
        return self._paginate_streaming(parsed, page_size, continuation)

    def _paginate_blocking(
        self, parsed: ast.MatchQuery, page_size: int, continuation: dict | None
    ) -> CypherPage:
        state = continuation or {"mode": "offset", "offset": 0}
        if state.get("mode") != "offset":
            raise CypherRuntimeError(
                "continuation does not match this query's execution mode"
            )
        offset = int(state["offset"])
        rows = self._scatter_match(parsed)
        page = rows[offset : offset + page_size]
        end = offset + len(page)
        return CypherPage(
            rows=page,
            continuation=(
                {"mode": "offset", "offset": end} if end < len(rows) else None
            ),
        )

    def _paginate_streaming(
        self, parsed: ast.MatchQuery, page_size: int, continuation: dict | None
    ) -> CypherPage:
        from repro.graphdb.cypher.iterators import ExecutionContext

        state = continuation or {
            "mode": "scan", "part": 0, "cont": None, "skipped": 0, "emitted": 0,
        }
        if state.get("mode") != "scan":
            raise CypherRuntimeError(
                "continuation does not match this query's execution mode"
            )
        # SKIP/LIMIT are global: strip them from the per-partition scan
        # and account across partitions via continuation counters.
        local = replace(
            parsed, skip=None, limit=None, explain=False, profile=False
        )
        part = int(state["part"])
        cont = state["cont"]
        skipped = int(state["skipped"])
        emitted = int(state["emitted"])
        to_skip = max((parsed.skip or 0) - skipped, 0)
        rows: list[ResultRow] = []
        while part < len(self._engines) and len(rows) < page_size:
            if parsed.limit is not None and emitted >= parsed.limit:
                break
            want = page_size - len(rows)
            if parsed.limit is not None:
                want = min(want, parsed.limit - emitted)
            task = QueryTask(self._engines[part], local, ExecutionContext())
            if cont is not None:
                task.load(cont)
            fetched = task.fetch(want + to_skip)
            if to_skip:
                dropped = min(to_skip, len(fetched))
                fetched = fetched[dropped:]
                to_skip -= dropped
                skipped += dropped
            rows.extend(fetched)
            emitted += len(fetched)
            cont = task.save()
            if cont is None:
                part += 1
        done = part >= len(self._engines) or (
            parsed.limit is not None and emitted >= parsed.limit
        )
        return CypherPage(
            rows=rows,
            continuation=None if done else {
                "mode": "scan",
                "part": part,
                "cont": cont,
                "skipped": skipped,
                "emitted": emitted,
            },
        )

    def _create_target(self, parsed: ast.CreateQuery) -> int:
        """Route a CREATE to the partition owning its first node's
        entity key (deterministic; partition 0 when nameless)."""
        router = ShardRouter(len(self._engines))
        first = parsed.paths[0].nodes[0]
        props = dict(first.properties)
        name = props.get("name") or props.get("merge_key")
        if isinstance(name, str) and name:
            return router.partition_for_entity(first.label or "Node", name)
        return 0

    def _scatter_match(
        self, query: ast.MatchQuery, execute=None
    ) -> list[ResultRow]:
        """Scatter ``query`` and gather with canonical ordering.

        ``execute(index, engine, local)`` runs the localized query on
        one partition; the default is plain eager execution, and the
        PROFILE path injects an instrumented executor that also
        collects per-partition operator counters.
        """
        if execute is None:
            def execute(_index, engine, local):
                return engine.execute(local)
        has_aggregate = any(_contains_count(item.expr) for item in query.returns)
        local_limit = None
        if (
            not has_aggregate
            and not query.order_by
            and not query.distinct
            and query.limit is not None
        ):
            # no reordering/dedup downstream: each partition can stop
            # after the rows that could possibly survive skip+limit
            local_limit = (query.skip or 0) + query.limit
        if has_aggregate:
            local_returns, specs = _localize_returns(query.returns)
            local = replace(
                query,
                returns=local_returns,
                distinct=False,
                order_by=[],
                skip=None,
                limit=None,
                profile=False,
            )
            per_partition = [
                execute(index, engine, local)
                for index, engine in enumerate(self._engines)
            ]
            rows = self._merge_aggregates(specs, per_partition)
        else:
            local = replace(
                query,
                distinct=False,
                order_by=[],
                skip=None,
                limit=local_limit,
                profile=False,
            )
            per_partition = [
                execute(index, engine, local)
                for index, engine in enumerate(self._engines)
            ]
            rows = [row for partial in per_partition for row in partial]

        for expr, ascending in reversed(query.order_by):
            # gather-side ordering resolves against projected values
            # only (per-partition bindings are gone); _eval_projected
            # raises the canonical "must reference returned values"
            # error otherwise
            rows.sort(
                key=lambda row: _sort_key(
                    self._engines[0]._eval_projected(expr, row)
                ),
                reverse=not ascending,
            )
        if query.distinct:
            rows = self._distinct(rows)
        if query.skip:
            rows = rows[query.skip :]
        if query.limit is not None:
            rows = rows[: query.limit]
        return rows

    def _merge_aggregates(
        self,
        specs: list[tuple[str, ast.ReturnItem, list[tuple[str, str]]]],
        per_partition: list[list[ResultRow]],
    ) -> list[ResultRow]:
        """Merge per-partition aggregate partials by group key.

        Counts and sums add (a source row contributes to exactly one
        partition's partial), min/max fold, collects concatenate in
        partition order, and group values keep the first partition's
        representative.  DISTINCT aggregates arrive as per-partition
        distinct value lists; finalization dedupes them across
        partitions by gather key before reducing.
        """
        group_aliases = [
            item.alias for kind, item, _p in specs if kind == "group"
        ]
        mergers = [
            (alias, op) for _kind, _item, partials in specs
            for alias, op in partials
        ]
        merged: dict[tuple, dict] = {}
        for partial in per_partition:
            for row in partial:
                key = tuple(
                    _gather_key(row.values[alias]) for alias in group_aliases
                )
                base = merged.get(key)
                if base is None:
                    merged[key] = dict(row.values)
                    continue
                for alias, op in mergers:
                    if op == "sum":
                        base[alias] = (base[alias] or 0) + (
                            row.values[alias] or 0
                        )
                    elif op == "concat":
                        base[alias] = list(base[alias]) + list(
                            row.values[alias]
                        )
                    else:  # min / max, None-skipping
                        folded = [
                            v
                            for v in (base[alias], row.values[alias])
                            if v is not None
                        ]
                        base[alias] = (
                            (min(folded) if op == "min" else max(folded))
                            if folded
                            else None
                        )
        return [self._finalize(values, specs) for values in merged.values()]

    @staticmethod
    def _finalize(
        values: dict,
        specs: list[tuple[str, ast.ReturnItem, list[tuple[str, str]]]],
    ) -> ResultRow:
        """Merged partials back to the requested aliases, in order."""
        out: dict[str, object] = {}
        for kind, item, partials in specs:
            alias = item.alias
            if kind in ("group", "passthrough"):
                out[alias] = values[alias]
            elif kind == "count_distinct":
                out[alias] = len(_dedupe(values[alias]))
            elif kind == "collect":
                merged = values[alias]
                out[alias] = (
                    _dedupe(merged) if item.expr.distinct else merged
                )
            elif kind == "numagg_distinct":
                out[alias] = reduce_numeric(
                    item.expr.func, _dedupe(values[alias]), False
                )
            else:  # avg: sum partial / count partial
                total = values[partials[0][0]]
                count = values[partials[1][0]]
                out[alias] = (total / count) if count else None
        return ResultRow(out)

    @staticmethod
    def _distinct(rows: list[ResultRow]) -> list[ResultRow]:
        seen: list[object] = []
        out: list[ResultRow] = []
        for row in rows:
            key = tuple(
                sorted((k, _gather_key(v)) for k, v in row.values.items())
            )
            if key in seen:
                continue
            seen.append(key)
            out.append(row)
        return out


__all__ = ["ShardedCypherEngine"]
