"""Scatter-gather Cypher execution over N graph partitions.

The :class:`ShardedCypherEngine` keeps the single-engine contract --
``run(query, strict=None)`` returning :class:`ResultRow` lists with the
same DISTINCT / ORDER BY / SKIP / LIMIT semantics -- but executes in
three phases:

1. **Analyze once** against the *union* schema of every partition (plus
   the ontology), so strict mode sees the same vocabulary a
   single-partition deployment would.
2. **Scatter**: the parsed query runs on every partition with the
   gather-owned clauses stripped (ORDER BY / DISTINCT / SKIP; LIMIT is
   pushed down only when no reordering can change which rows survive).
   Aggregates run as per-partition partials.
3. **Gather** with canonical ordering: partition results concatenate in
   partition order, aggregate partials merge by group key, then ORDER
   BY / DISTINCT / SKIP / LIMIT apply once, globally.  Seeded
   virtual-clock runs therefore produce byte-identical results.

Cross-partition entity identity: the same logical entity (one
``merge_key``) may exist on several partitions when relations pulled it
into records anchored elsewhere.  Gather-side grouping and DISTINCT
treat nodes with equal ``(label, merge_key)`` as the same value, so
entity-keyed results match the single-partition answer.

Known limitation: ``count(DISTINCT ...)`` cannot be merged from
per-partition partials (partitions may have seen overlapping values)
and raises a clear :class:`CypherRuntimeError` when N > 1.
"""

from __future__ import annotations

from dataclasses import replace

from repro.graphdb.cypher import ast
from repro.graphdb.cypher.executor import (
    CypherAnalysisError,
    CypherEngine,
    CypherRuntimeError,
    ResultRow,
    _contains_count,
    _sort_key,
)
from repro.graphdb.cypher.parser import parse
from repro.graphdb.store import Edge, Node
from repro.sharding.router import ShardRouter


def _gather_key(value: object) -> object:
    """Partition-independent identity for gather-side grouping.

    Nodes compare by ``(label, merge_key)`` when a merge key exists (the
    connector stamps one on every entity node), falling back to the
    globally-unique node id; everything else matches the single-engine
    ``_hashable`` semantics.
    """
    if isinstance(value, Node):
        merge = value.properties.get("merge_key")
        if isinstance(merge, str):
            return ("__node__", value.label, merge)
        return ("__node__", value.node_id)
    if isinstance(value, Edge):
        return ("__edge__", value.edge_id)
    if isinstance(value, list):
        return tuple(_gather_key(v) for v in value)
    return value


def _dedupe(values: list[object]) -> list[object]:
    """Order-preserving dedup by gather key (collect(DISTINCT ...))."""
    seen: list[object] = []
    out: list[object] = []
    for value in values:
        key = _gather_key(value)
        if key in seen:
            continue
        seen.append(key)
        out.append(value)
    return out


def _has_count_distinct(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Count):
        return expr.distinct
    if isinstance(expr, (ast.And, ast.Or)):
        return _has_count_distinct(expr.left) or _has_count_distinct(expr.right)
    if isinstance(expr, ast.Not):
        return _has_count_distinct(expr.operand)
    if isinstance(expr, ast.Compare):
        return _has_count_distinct(expr.left) or (
            expr.right is not None and _has_count_distinct(expr.right)
        )
    return False


class ShardedCypherEngine:
    """The Cypher facade of a sharded deployment.

    Holds one per-partition :class:`CypherEngine` (strictness disabled
    on the partitions -- analysis happens once here, against the union
    schema).  With a single partition it delegates wholesale, so N=1
    behaviour is exactly the single-engine behaviour.
    """

    def __init__(self, engines: list[CypherEngine], strict: bool = True):
        if not engines:
            raise ValueError("at least one partition engine is required")
        self._engines = list(engines)
        self.strict = strict
        self._schema_cache: tuple[tuple, object] | None = None

    # -- analysis ------------------------------------------------------

    def analyze(self, query: str | ast.Query, source: str = ""):
        """Diagnostics against the union of every partition's schema."""
        from repro.analysis.cypher_check import (
            CypherAnalyzer,
            graph_schema,
            ontology_schema,
        )

        key = tuple(
            (engine.graph.node_count, engine.graph.edge_count)
            for engine in self._engines
        )
        if self._schema_cache is None or self._schema_cache[0] != key:
            schema = ontology_schema()
            for engine in self._engines:
                schema = schema.merged_with(graph_schema(engine.graph))
            self._schema_cache = (key, schema)
        return CypherAnalyzer(self._schema_cache[1]).analyze(query, source)

    def _check(self, parsed: ast.Query, source: str) -> None:
        from repro.analysis.diagnostics import errors

        failures = errors(self.analyze(parsed, source))
        if failures:
            raise CypherAnalysisError(failures, source)

    # -- execution -----------------------------------------------------

    def run(self, query: str, strict: bool | None = None) -> list[ResultRow]:
        parsed = parse(query)
        if self.strict if strict is None else strict:
            self._check(parsed, query)
        if len(self._engines) == 1:
            return self._engines[0].execute(parsed)
        if isinstance(parsed, ast.CreateQuery):
            return self._engines[self._create_target(parsed)].execute(parsed)
        return self._scatter_match(parsed)

    def _create_target(self, parsed: ast.CreateQuery) -> int:
        """Route a CREATE to the partition owning its first node's
        entity key (deterministic; partition 0 when nameless)."""
        router = ShardRouter(len(self._engines))
        first = parsed.paths[0].nodes[0]
        props = dict(first.properties)
        name = props.get("name") or props.get("merge_key")
        if isinstance(name, str) and name:
            return router.partition_for_entity(first.label or "Node", name)
        return 0

    def _scatter_match(self, query: ast.MatchQuery) -> list[ResultRow]:
        has_aggregate = any(_contains_count(item.expr) for item in query.returns)
        if has_aggregate:
            for item in query.returns:
                if _has_count_distinct(item.expr):
                    raise CypherRuntimeError(
                        "count(DISTINCT ...) cannot be merged across "
                        "partitions; collect(DISTINCT ...) and plain "
                        "count(...) are supported"
                    )
        local_limit = None
        if (
            not has_aggregate
            and not query.order_by
            and not query.distinct
            and query.limit is not None
        ):
            # no reordering/dedup downstream: each partition can stop
            # after the rows that could possibly survive skip+limit
            local_limit = (query.skip or 0) + query.limit
        local = replace(
            query, distinct=False, order_by=[], skip=None, limit=local_limit
        )
        per_partition = [engine.execute(local) for engine in self._engines]

        if has_aggregate:
            rows = self._merge_aggregates(query, per_partition)
        else:
            rows = [row for partial in per_partition for row in partial]

        for expr, ascending in reversed(query.order_by):
            # gather-side ordering resolves against projected values
            # only (per-partition bindings are gone); _eval_projected
            # raises the canonical "must reference returned values"
            # error otherwise
            rows.sort(
                key=lambda row: _sort_key(
                    self._engines[0]._eval_projected(expr, row)
                ),
                reverse=not ascending,
            )
        if query.distinct:
            rows = self._distinct(rows)
        if query.skip:
            rows = rows[query.skip :]
        if query.limit is not None:
            rows = rows[: query.limit]
        return rows

    def _merge_aggregates(
        self,
        query: ast.MatchQuery,
        per_partition: list[list[ResultRow]],
    ) -> list[ResultRow]:
        """Merge per-partition aggregate partials by group key.

        Counts sum (a row contributes to exactly one partition's
        partial), collects concatenate in partition order (DISTINCT
        collects dedupe across partitions), and group values keep the
        first partition's representative.
        """
        group_aliases = [
            item.alias for item in query.returns if not _contains_count(item.expr)
        ]
        agg_items = [
            item for item in query.returns if _contains_count(item.expr)
        ]
        merged: dict[tuple, ResultRow] = {}
        for partial in per_partition:
            for row in partial:
                key = tuple(
                    _gather_key(row.values[alias]) for alias in group_aliases
                )
                base = merged.get(key)
                if base is None:
                    merged[key] = ResultRow(dict(row.values))
                    continue
                for item in agg_items:
                    alias = item.alias
                    if isinstance(item.expr, ast.Count):
                        base.values[alias] = (base.values[alias] or 0) + (
                            row.values[alias] or 0
                        )
                    elif isinstance(item.expr, ast.Collect):
                        base.values[alias] = list(base.values[alias]) + list(
                            row.values[alias]
                        )
        rows = list(merged.values())
        for item in agg_items:
            if isinstance(item.expr, ast.Collect) and item.expr.distinct:
                for row in rows:
                    row.values[item.alias] = _dedupe(row.values[item.alias])
        return rows

    @staticmethod
    def _distinct(rows: list[ResultRow]) -> list[ResultRow]:
        seen: list[object] = []
        out: list[ResultRow] = []
        for row in rows:
            key = tuple(
                sorted((k, _gather_key(v)) for k, v in row.values.items())
            )
            if key in seen:
                continue
            seen.append(key)
            out.append(row)
        return out


__all__ = ["ShardedCypherEngine"]
