"""Security entity vocabulary.

The ontology (paper Figure 2) categorises OSCTI reports into malware,
vulnerability and attack reports, and models the concepts those reports
mention: CTI vendors, threat actors, techniques, tools, software,
malware, vulnerabilities, and the low-level Indicators of Compromise
(file name, file path, IP, URL, email, domain, registry key, hashes).

Every node in the knowledge graph carries one :class:`EntityType`, a
canonical ``name`` (the description text the storage stage merges on),
and free-form key/value ``attributes``.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class EntityType(str, enum.Enum):
    """Node types of the security knowledge ontology (Figure 2)."""

    # Report entities -- one per collected OSCTI report.
    MALWARE_REPORT = "MalwareReport"
    VULNERABILITY_REPORT = "VulnerabilityReport"
    ATTACK_REPORT = "AttackReport"

    # High-level concepts.
    VENDOR = "Vendor"
    THREAT_ACTOR = "ThreatActor"
    TECHNIQUE = "Technique"
    TOOL = "Tool"
    SOFTWARE = "Software"
    MALWARE = "Malware"
    VULNERABILITY = "Vulnerability"
    CAMPAIGN = "Campaign"

    # Indicators of Compromise.
    FILE_NAME = "FileName"
    FILE_PATH = "FilePath"
    IP = "IP"
    URL = "URL"
    EMAIL = "Email"
    DOMAIN = "Domain"
    REGISTRY = "Registry"
    HASH = "Hash"

    @property
    def is_report(self) -> bool:
        """True for the three per-report entity types."""
        return self in _REPORT_TYPES

    @property
    def is_ioc(self) -> bool:
        """True for low-level Indicator-of-Compromise types."""
        return self in IOC_TYPES

    @property
    def is_concept(self) -> bool:
        """True for high-level (non-report, non-IOC) concept types."""
        return not self.is_report and not self.is_ioc


_REPORT_TYPES = frozenset(
    {
        EntityType.MALWARE_REPORT,
        EntityType.VULNERABILITY_REPORT,
        EntityType.ATTACK_REPORT,
    }
)

#: The IOC entity types, in the order the paper lists them.
IOC_TYPES: frozenset[EntityType] = frozenset(
    {
        EntityType.FILE_NAME,
        EntityType.FILE_PATH,
        EntityType.IP,
        EntityType.URL,
        EntityType.EMAIL,
        EntityType.DOMAIN,
        EntityType.REGISTRY,
        EntityType.HASH,
    }
)

#: Concept types extracted by the CRF entity recogniser (as opposed to
#: the regex-recognised IOC types and the report/vendor bookkeeping
#: types created by parsers).
CRF_ENTITY_TYPES: tuple[EntityType, ...] = (
    EntityType.MALWARE,
    EntityType.THREAT_ACTOR,
    EntityType.TECHNIQUE,
    EntityType.TOOL,
    EntityType.SOFTWARE,
    EntityType.VULNERABILITY,
)

#: Report category -> report entity type.
REPORT_TYPE_BY_CATEGORY: dict[str, EntityType] = {
    "malware": EntityType.MALWARE_REPORT,
    "vulnerability": EntityType.VULNERABILITY_REPORT,
    "attack": EntityType.ATTACK_REPORT,
}


def canonical_name(text: str) -> str:
    """Normalise an entity description for exact-match merging.

    The storage stage merges nodes "with exactly the same description
    text" (paper section 2.5).  Exact match is taken after trimming
    surrounding whitespace and lower-casing, so that the same name
    rendered with different capitalisation by one source still counts
    as the same description.  Anything stronger (alias resolution) is
    deferred to the fusion stage.
    """
    return " ".join(text.strip().split()).lower()


def merge_key_for(entity: "Entity") -> str:
    """The storage-merge key of an entity.

    Concept and IOC nodes merge on their canonical description text.
    Report nodes never merge with each other: two reports may share a
    title, so their key is the (globally unique) report id.
    """
    if entity.type.is_report:
        report_id = entity.attributes.get("report_id")
        if report_id:
            return f"report:{report_id}"
    return canonical_name(entity.name)


@dataclass
class Entity:
    """A typed node of the security knowledge graph.

    Parameters
    ----------
    type:
        The ontology type of the node.
    name:
        Human-readable description text.  Two entities of the same type
        whose :func:`canonical_name` match are merged at storage time.
    attributes:
        Free-form key/value pairs (e.g. a report's source and URL, a
        hash's algorithm).
    """

    type: EntityType
    name: str
    attributes: dict[str, object] = field(default_factory=dict)

    @property
    def key(self) -> tuple[str, str]:
        """Merge key used by the storage connectors."""
        return (self.type.value, canonical_name(self.name))

    def stable_id(self) -> str:
        """A deterministic identifier derived from the merge key."""
        digest = hashlib.sha1(
            f"{self.type.value}\x00{canonical_name(self.name)}".encode()
        ).hexdigest()
        return f"{self.type.value.lower()}-{digest[:12]}"

    def to_dict(self) -> dict[str, object]:
        """Serialise to a JSON-compatible dict."""
        return {
            "type": self.type.value,
            "name": self.name,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Entity":
        """Inverse of :meth:`to_dict`."""
        return cls(
            type=EntityType(str(data["type"])),
            name=str(data["name"]),
            attributes=dict(data.get("attributes", {})),  # type: ignore[arg-type]
        )

    def merged_with(self, other: "Entity") -> "Entity":
        """Return a copy whose attributes are the union of both nodes.

        ``other`` wins ties; used when the connector re-encounters an
        existing node and augments it with new attributes.
        """
        if self.key != other.key:
            raise ValueError(
                f"cannot merge entities with different keys: {self.key} != {other.key}"
            )
        merged = dict(self.attributes)
        merged.update(other.attributes)
        return Entity(type=self.type, name=self.name, attributes=merged)


__all__ = [
    "Entity",
    "merge_key_for",
    "EntityType",
    "IOC_TYPES",
    "CRF_ENTITY_TYPES",
    "REPORT_TYPE_BY_CATEGORY",
    "canonical_name",
]
