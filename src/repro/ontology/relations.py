"""Security relation vocabulary.

Relations connect two entities of the ontology, e.g.
``<MALWARE_A, DROP, FILE_A>`` (paper section 2.3).  The relation
extractor produces raw verbs from dependency paths; those verbs are
normalised onto this closed vocabulary via :func:`normalize_verb` so
that graphs built from heterogeneous sources stay queryable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ontology.entities import Entity


class RelationType(str, enum.Enum):
    """Edge types of the security knowledge ontology."""

    # Report bookkeeping.
    CREATED_BY = "CREATED_BY"  # report -> vendor
    DESCRIBES = "DESCRIBES"  # report -> malware/vulnerability/campaign
    MENTIONS = "MENTIONS"  # report -> any entity found in it

    # Behavioural relations between concepts / IOCs.
    USES = "USES"  # actor/malware -> technique/tool/software
    DROPS = "DROPS"  # malware -> file
    EXECUTES = "EXECUTES"  # malware/actor -> file/tool
    CONNECTS_TO = "CONNECTS_TO"  # malware -> ip/domain/url
    COMMUNICATES_WITH = "COMMUNICATES_WITH"  # malware -> domain/ip (C2)
    DOWNLOADS = "DOWNLOADS"  # malware -> url/file
    EXPLOITS = "EXPLOITS"  # malware/actor -> vulnerability
    TARGETS = "TARGETS"  # actor/malware -> software/sector
    MODIFIES = "MODIFIES"  # malware -> registry/file
    CREATES = "CREATES"  # malware -> file/registry
    DELETES = "DELETES"  # malware -> file
    ENCRYPTS = "ENCRYPTS"  # malware -> file
    SENDS = "SENDS"  # malware -> email
    SPREADS_VIA = "SPREADS_VIA"  # malware -> technique/email
    ATTRIBUTED_TO = "ATTRIBUTED_TO"  # campaign/malware -> actor
    INDICATES = "INDICATES"  # ioc -> malware
    VARIANT_OF = "VARIANT_OF"  # malware -> malware
    AFFECTS = "AFFECTS"  # vulnerability -> software
    RELATED_TO = "RELATED_TO"  # generic fallback


#: Verb lemma -> relation type.  Relation extraction emits raw verbs;
#: this table folds surface variation onto the closed edge vocabulary.
VERB_TO_RELATION: dict[str, RelationType] = {
    "use": RelationType.USES,
    "employ": RelationType.USES,
    "leverage": RelationType.USES,
    "utilize": RelationType.USES,
    "deploy": RelationType.USES,
    "drop": RelationType.DROPS,
    "write": RelationType.CREATES,
    "install": RelationType.CREATES,
    "create": RelationType.CREATES,
    "plant": RelationType.DROPS,
    "execute": RelationType.EXECUTES,
    "run": RelationType.EXECUTES,
    "launch": RelationType.EXECUTES,
    "spawn": RelationType.EXECUTES,
    "invoke": RelationType.EXECUTES,
    "connect": RelationType.CONNECTS_TO,
    "beacon": RelationType.COMMUNICATES_WITH,
    "communicate": RelationType.COMMUNICATES_WITH,
    "contact": RelationType.COMMUNICATES_WITH,
    "download": RelationType.DOWNLOADS,
    "fetch": RelationType.DOWNLOADS,
    "retrieve": RelationType.DOWNLOADS,
    "exploit": RelationType.EXPLOITS,
    "abuse": RelationType.EXPLOITS,
    "weaponize": RelationType.EXPLOITS,
    "target": RelationType.TARGETS,
    "attack": RelationType.TARGETS,
    "compromise": RelationType.TARGETS,
    "infect": RelationType.TARGETS,
    "modify": RelationType.MODIFIES,
    "alter": RelationType.MODIFIES,
    "change": RelationType.MODIFIES,
    "tamper": RelationType.MODIFIES,
    "set": RelationType.MODIFIES,
    "delete": RelationType.DELETES,
    "remove": RelationType.DELETES,
    "erase": RelationType.DELETES,
    "wipe": RelationType.DELETES,
    "encrypt": RelationType.ENCRYPTS,
    "lock": RelationType.ENCRYPTS,
    "ransom": RelationType.ENCRYPTS,
    "send": RelationType.SENDS,
    "exfiltrate": RelationType.SENDS,
    "spread": RelationType.SPREADS_VIA,
    "propagate": RelationType.SPREADS_VIA,
    "distribute": RelationType.SPREADS_VIA,
    "attribute": RelationType.ATTRIBUTED_TO,
    "link": RelationType.ATTRIBUTED_TO,
    "indicate": RelationType.INDICATES,
    "affect": RelationType.AFFECTS,
    "impact": RelationType.AFFECTS,
    "describe": RelationType.DESCRIBES,
    "analyze": RelationType.DESCRIBES,
    "relate": RelationType.RELATED_TO,
}


def normalize_verb(verb: str) -> RelationType:
    """Map a (possibly inflected) relation verb onto the vocabulary.

    Unknown verbs fall back to :attr:`RelationType.RELATED_TO` rather
    than being dropped -- the fusion/application layers can still use
    the raw verb, which is preserved in the relation attributes.
    """
    lemma = verb.strip().lower()
    if lemma in VERB_TO_RELATION:
        return VERB_TO_RELATION[lemma]
    for suffix in ("ing", "ied", "ies", "ed", "es", "s"):
        if not lemma.endswith(suffix) or len(lemma) <= len(suffix) + 1:
            continue
        base = lemma[: -len(suffix)]
        candidates = [base, base + "e"]
        if suffix in ("ied", "ies"):
            candidates.append(base + "y")  # modified -> modify
        if len(base) >= 2 and base[-1] == base[-2]:
            candidates.append(base[:-1])  # dropped -> drop
        for candidate in candidates:
            if candidate in VERB_TO_RELATION:
                return VERB_TO_RELATION[candidate]
    return RelationType.RELATED_TO


@dataclass
class Relation:
    """A typed, attributed edge between two entities.

    ``provenance`` records where the triplet came from (report id and,
    when extracted from text, the evidence sentence), which the fusion
    stage and the UI both surface.
    """

    head: Entity
    type: RelationType
    tail: Entity
    attributes: dict[str, object] = field(default_factory=dict)
    provenance: dict[str, object] = field(default_factory=dict)

    @property
    def key(self) -> tuple[tuple[str, str], str, tuple[str, str]]:
        """Merge key: (head key, relation type, tail key)."""
        return (self.head.key, self.type.value, self.tail.key)

    def to_dict(self) -> dict[str, object]:
        """Serialise to a JSON-compatible dict."""
        return {
            "head": self.head.to_dict(),
            "type": self.type.value,
            "tail": self.tail.to_dict(),
            "attributes": dict(self.attributes),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Relation":
        """Inverse of :meth:`to_dict`."""
        return cls(
            head=Entity.from_dict(data["head"]),  # type: ignore[arg-type]
            type=RelationType(str(data["type"])),
            tail=Entity.from_dict(data["tail"]),  # type: ignore[arg-type]
            attributes=dict(data.get("attributes", {})),  # type: ignore[arg-type]
            provenance=dict(data.get("provenance", {})),  # type: ignore[arg-type]
        )


__all__ = ["Relation", "RelationType", "VERB_TO_RELATION", "normalize_verb"]
