"""Security knowledge ontology and intermediate representations.

Implements paper Figure 2 (entity/relation vocabulary and schema) and
the two serialisable pipeline representations of sections 2.1/2.4: the
intermediate report representation (:class:`ReportRecord`) and the
intermediate CTI representation (:class:`CTIRecord`).
"""

from repro.ontology.entities import (
    CRF_ENTITY_TYPES,
    merge_key_for,
    IOC_TYPES,
    REPORT_TYPE_BY_CATEGORY,
    Entity,
    EntityType,
    canonical_name,
)
from repro.ontology.intermediate import CTIRecord, Mention, RelationMention, ReportRecord
from repro.ontology.refactor import GraphDelta, refactor_record, refactor_records
from repro.ontology.relations import (
    VERB_TO_RELATION,
    Relation,
    RelationType,
    normalize_verb,
)
from repro.ontology.schema import (
    SCHEMA,
    SchemaViolation,
    allowed_tail_types,
    check_relation,
    validate_relation,
)

__all__ = [
    "CRF_ENTITY_TYPES",
    "CTIRecord",
    "Entity",
    "EntityType",
    "GraphDelta",
    "IOC_TYPES",
    "Mention",
    "REPORT_TYPE_BY_CATEGORY",
    "Relation",
    "RelationMention",
    "RelationType",
    "ReportRecord",
    "SCHEMA",
    "SchemaViolation",
    "VERB_TO_RELATION",
    "allowed_tail_types",
    "canonical_name",
    "merge_key_for",
    "check_relation",
    "normalize_verb",
    "refactor_record",
    "refactor_records",
    "validate_relation",
]
