"""Intermediate pipeline representations.

The processing stage passes two serialisable record types between steps
(paper sections 2.1 and 2.4):

* :class:`ReportRecord` -- the *intermediate report representation*
  produced by porters: raw page content plus bookkeeping metadata
  (id, source, title, original location, timestamps), with multi-page
  reports grouped into one record.
* :class:`CTIRecord` -- the *intermediate CTI representation*: a unified
  schema that "covers relevant and potentially useful information in
  all data sources".  Source-dependent parsers fill the structured
  fields; source-independent extractors refine the unstructured text
  into entity and relation mentions.

Both types round-trip through JSON so that pipeline steps can hand off
work across process or host boundaries (the scalability design of
section 2.1).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.ontology.entities import EntityType


@dataclass
class ReportRecord:
    """Intermediate report representation (porter output).

    ``pages`` holds the raw HTML of each page of a multi-page report in
    order; porters group continuation pages under the first page's id.
    """

    report_id: str
    source: str
    url: str
    title: str = ""
    pages: list[str] = field(default_factory=list)
    content_type: str = "text/html"
    fetched_at: float = 0.0
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def html(self) -> str:
        """All pages concatenated, for single-document parsing."""
        return "\n".join(self.pages)

    def to_dict(self) -> dict[str, object]:
        return {
            "report_id": self.report_id,
            "source": self.source,
            "url": self.url,
            "title": self.title,
            "pages": list(self.pages),
            "content_type": self.content_type,
            "fetched_at": self.fetched_at,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "ReportRecord":
        return cls(
            report_id=str(data["report_id"]),
            source=str(data["source"]),
            url=str(data["url"]),
            title=str(data.get("title", "")),
            pages=[str(p) for p in data.get("pages", [])],  # type: ignore[union-attr]
            content_type=str(data.get("content_type", "text/html")),
            fetched_at=float(data.get("fetched_at", 0.0)),  # type: ignore[arg-type]
            metadata=dict(data.get("metadata", {})),  # type: ignore[arg-type]
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "ReportRecord":
        return cls.from_dict(json.loads(payload))


@dataclass
class Mention:
    """One recognised entity mention in a report's text.

    ``method`` records which extractor produced the mention (``"crf"``,
    ``"regex"``, ``"gazetteer"``, ``"parser"``) for downstream auditing.
    """

    text: str
    type: EntityType
    sentence_index: int = 0
    start: int = 0
    end: int = 0
    confidence: float = 1.0
    method: str = "crf"

    def to_dict(self) -> dict[str, object]:
        return {
            "text": self.text,
            "type": self.type.value,
            "sentence_index": self.sentence_index,
            "start": self.start,
            "end": self.end,
            "confidence": self.confidence,
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Mention":
        return cls(
            text=str(data["text"]),
            type=EntityType(str(data["type"])),
            sentence_index=int(data.get("sentence_index", 0)),  # type: ignore[arg-type]
            start=int(data.get("start", 0)),  # type: ignore[arg-type]
            end=int(data.get("end", 0)),  # type: ignore[arg-type]
            confidence=float(data.get("confidence", 1.0)),  # type: ignore[arg-type]
            method=str(data.get("method", "crf")),
        )


@dataclass
class RelationMention:
    """One extracted <head, verb, tail> triple with its evidence."""

    head_text: str
    head_type: EntityType
    verb: str
    tail_text: str
    tail_type: EntityType
    sentence: str = ""
    sentence_index: int = 0
    confidence: float = 1.0

    def to_dict(self) -> dict[str, object]:
        return {
            "head_text": self.head_text,
            "head_type": self.head_type.value,
            "verb": self.verb,
            "tail_text": self.tail_text,
            "tail_type": self.tail_type.value,
            "sentence": self.sentence,
            "sentence_index": self.sentence_index,
            "confidence": self.confidence,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "RelationMention":
        return cls(
            head_text=str(data["head_text"]),
            head_type=EntityType(str(data["head_type"])),
            verb=str(data["verb"]),
            tail_text=str(data["tail_text"]),
            tail_type=EntityType(str(data["tail_type"])),
            sentence=str(data.get("sentence", "")),
            sentence_index=int(data.get("sentence_index", 0)),  # type: ignore[arg-type]
            confidence=float(data.get("confidence", 1.0)),  # type: ignore[arg-type]
        )


@dataclass
class CTIRecord:
    """Intermediate CTI representation (parser output, extractor-refined).

    Attributes
    ----------
    report_category:
        ``"malware"``, ``"vulnerability"``, ``"attack"`` or ``""`` when
        the parser could not classify the report.
    structured_fields:
        Key/value pairs parsed from the source's structured HTML
        (tables, definition lists) -- e.g. ``{"Type": "Ransomware"}``.
    sections:
        ``(heading, text)`` pairs of the report body in order.
    iocs:
        IOC kind name (``EntityType.value``) -> list of raw IOC strings.
    mentions / relations:
        Filled by the source-independent extractors.
    """

    report_id: str
    source: str
    url: str
    title: str = ""
    vendor: str = ""
    published: str = ""
    report_category: str = ""
    summary: str = ""
    structured_fields: dict[str, str] = field(default_factory=dict)
    sections: list[tuple[str, str]] = field(default_factory=list)
    iocs: dict[str, list[str]] = field(default_factory=dict)
    mentions: list[Mention] = field(default_factory=list)
    relations: list[RelationMention] = field(default_factory=list)
    tags: list[str] = field(default_factory=list)
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def text(self) -> str:
        """The unstructured body text: summary plus all sections."""
        parts = [self.summary] if self.summary else []
        parts.extend(text for _heading, text in self.sections)
        return "\n".join(parts)

    def add_ioc(self, kind: EntityType, value: str) -> None:
        """Record one IOC value under its kind, deduplicating."""
        bucket = self.iocs.setdefault(kind.value, [])
        if value not in bucket:
            bucket.append(value)

    def ioc_values(self, kind: EntityType) -> list[str]:
        """All IOC values of a kind (empty list when none)."""
        return list(self.iocs.get(kind.value, []))

    def to_dict(self) -> dict[str, object]:
        return {
            "report_id": self.report_id,
            "source": self.source,
            "url": self.url,
            "title": self.title,
            "vendor": self.vendor,
            "published": self.published,
            "report_category": self.report_category,
            "summary": self.summary,
            "structured_fields": dict(self.structured_fields),
            "sections": [[heading, text] for heading, text in self.sections],
            "iocs": {kind: list(values) for kind, values in self.iocs.items()},
            "mentions": [mention.to_dict() for mention in self.mentions],
            "relations": [relation.to_dict() for relation in self.relations],
            "tags": list(self.tags),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "CTIRecord":
        return cls(
            report_id=str(data["report_id"]),
            source=str(data["source"]),
            url=str(data["url"]),
            title=str(data.get("title", "")),
            vendor=str(data.get("vendor", "")),
            published=str(data.get("published", "")),
            report_category=str(data.get("report_category", "")),
            summary=str(data.get("summary", "")),
            structured_fields={
                str(k): str(v)
                for k, v in dict(data.get("structured_fields", {})).items()  # type: ignore[arg-type]
            },
            sections=[
                (str(heading), str(text))
                for heading, text in data.get("sections", [])  # type: ignore[union-attr]
            ],
            iocs={
                str(kind): [str(v) for v in values]
                for kind, values in dict(data.get("iocs", {})).items()  # type: ignore[arg-type]
            },
            mentions=[
                Mention.from_dict(m) for m in data.get("mentions", [])  # type: ignore[union-attr]
            ],
            relations=[
                RelationMention.from_dict(r)
                for r in data.get("relations", [])  # type: ignore[union-attr]
            ],
            tags=[str(t) for t in data.get("tags", [])],  # type: ignore[union-attr]
            metadata=dict(data.get("metadata", {})),  # type: ignore[arg-type]
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "CTIRecord":
        return cls.from_dict(json.loads(payload))


__all__ = ["CTIRecord", "Mention", "RelationMention", "ReportRecord"]
