"""STIX-style interchange for the knowledge graph.

The paper situates its ontology against STIX [15]; real CTI platforms
interoperate by exchanging STIX bundles.  This module maps the
SecurityKG ontology onto STIX 2.1-shaped objects (SDO types for
concepts, indicators with STIX patterns for IOCs, ``relationship``
objects for edges, a ``report`` SDO per report node) and back, so a
populated graph can be exported to any STIX consumer and re-imported
losslessly at the granularity the mapping covers.

Object ids are deterministic (UUIDv5 over the merge key), so repeated
exports of the same graph produce identical bundles.

Dissemination support (``repro.feeds``) layers on top: exports can
carry TLP (Traffic Light Protocol) ``object_marking_refs`` using the
canonical STIX 2.1 marking-definition ids, and :func:`filter_bundle`
derives the tier-appropriate view of a bundle -- objects above a TLP
ceiling are dropped, relationships to dropped objects go with them,
report ``object_refs`` are pruned to survivors, and the ``public``
sanitization strips sourcing fields.
"""

from __future__ import annotations

import json
import uuid
from dataclasses import dataclass, field

from repro.graphdb.store import PropertyGraph
from repro.ontology.entities import EntityType

#: UUID namespace for deterministic STIX ids.
_NAMESPACE = uuid.UUID("8c4f4e42-97b1-4d37-9e68-1a1f9c6b2a11")

#: TLP levels in increasing sensitivity order.
TLP_LEVELS: tuple[str, ...] = ("white", "green", "amber", "red")

#: Canonical STIX 2.1 TLP marking-definition ids (spec-defined UUIDs,
#: so exported bundles interoperate with real STIX consumers).
TLP_MARKING_IDS: dict[str, str] = {
    "white": "marking-definition--613f2e26-407d-48c7-9eca-b8e91df99dc9",
    "green": "marking-definition--34098fce-860f-48ae-8e50-ebd3cc5e41da",
    "amber": "marking-definition--f88d31f6-486f-44da-b317-01333bde0b82",
    "red": "marking-definition--5e57c739-391a-4eb3-b6be-7d15ca92d5ed",
}

#: Reverse lookup: marking-definition id -> TLP level.
TLP_BY_MARKING_ID: dict[str, str] = {v: k for k, v in TLP_MARKING_IDS.items()}

_TLP_ORDER = {level: index for index, level in enumerate(TLP_LEVELS)}

#: Default classification per STIX object type when a node carries no
#: explicit ``tlp`` property: reports expose sourcing context
#: (need-to-know), indicators are community-shareable detection
#: content, and bare concept/identity objects are public vocabulary.
_DEFAULT_TLP_BY_TYPE: dict[str, str] = {
    "report": "amber",
    "indicator": "green",
}

#: Report fields stripped by ``public``-grade sanitization (they reveal
#: where and how the intelligence was collected).
_SANITIZED_FIELDS: tuple[str, ...] = ("x_source", "x_url")

#: Ontology node label -> STIX object type.
STIX_TYPE_BY_LABEL: dict[str, str] = {
    EntityType.MALWARE.value: "malware",
    EntityType.THREAT_ACTOR.value: "intrusion-set",
    EntityType.CAMPAIGN.value: "campaign",
    EntityType.TECHNIQUE.value: "attack-pattern",
    EntityType.TOOL.value: "tool",
    EntityType.SOFTWARE.value: "software",
    EntityType.VULNERABILITY.value: "vulnerability",
    EntityType.VENDOR.value: "identity",
    EntityType.MALWARE_REPORT.value: "report",
    EntityType.VULNERABILITY_REPORT.value: "report",
    EntityType.ATTACK_REPORT.value: "report",
}

#: IOC label -> (STIX pattern object path).
_PATTERN_BY_LABEL: dict[str, str] = {
    EntityType.IP.value: "ipv4-addr:value",
    EntityType.DOMAIN.value: "domain-name:value",
    EntityType.URL.value: "url:value",
    EntityType.EMAIL.value: "email-addr:value",
    EntityType.FILE_NAME.value: "file:name",
    EntityType.FILE_PATH.value: "file:parent_directory_ref.path",
    EntityType.REGISTRY.value: "windows-registry-key:key",
    EntityType.HASH.value: "file:hashes.'SHA-256'",
}

#: Edge type -> STIX relationship_type.
STIX_RELATIONSHIP_BY_EDGE: dict[str, str] = {
    "USES": "uses",
    "DROPS": "drops",
    "EXECUTES": "uses",
    "CONNECTS_TO": "communicates-with",
    "COMMUNICATES_WITH": "communicates-with",
    "DOWNLOADS": "downloads",
    "EXPLOITS": "exploits",
    "TARGETS": "targets",
    "MODIFIES": "targets",
    "CREATES": "creates",
    "DELETES": "targets",
    "ENCRYPTS": "targets",
    "SENDS": "exfiltrates-to",
    "SPREADS_VIA": "uses",
    "ATTRIBUTED_TO": "attributed-to",
    "INDICATES": "indicates",
    "VARIANT_OF": "variant-of",
    "AFFECTS": "targets",
    "RELATED_TO": "related-to",
    "MENTIONS": "object-ref",  # folded into report object_refs instead
    "CREATED_BY": "created-by",  # becomes created_by_ref on the report
    "DESCRIBES": "related-to",
}


class StixMappingError(ValueError):
    """A graph object cannot be represented in the mapping."""


def stix_id(stix_type: str, key: str) -> str:
    """Deterministic ``type--uuid5`` identifier."""
    return f"{stix_type}--{uuid.uuid5(_NAMESPACE, f'{stix_type}|{key}')}"


def tlp_order(level: str) -> int:
    """Position of a TLP level in the sensitivity order."""
    try:
        return _TLP_ORDER[level]
    except KeyError:
        raise ValueError(
            f"unknown TLP level {level!r}; known: {list(TLP_LEVELS)}"
        ) from None


def max_tlp(levels: list[str] | tuple[str, ...]) -> str:
    """The most sensitive of several TLP levels (``white`` when empty)."""
    best = "white"
    for level in levels:
        if tlp_order(level) > tlp_order(best):
            best = level
    return best


def tlp_of_object(stix_object: dict) -> str:
    """TLP level of a STIX object: its TLP marking ref when present,
    otherwise the default for its object type (``white`` for concepts)."""
    for ref in stix_object.get("object_marking_refs", []):
        level = TLP_BY_MARKING_ID.get(ref)
        if level is not None:
            return level
    return _DEFAULT_TLP_BY_TYPE.get(stix_object.get("type", ""), "white")


def tlp_marking_object(level: str) -> dict:
    """The STIX marking-definition object for a TLP level."""
    return {
        "type": "marking-definition",
        "id": TLP_MARKING_IDS[level],
        "definition_type": "tlp",
        "definition": {"tlp": level},
        "name": f"TLP:{level.upper()}",
    }


@dataclass
class StixBundle:
    """A STIX-shaped bundle: ``{type, id, objects}``."""

    objects: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "type": "bundle",
            "id": stix_id("bundle", str(len(self.objects))),
            "objects": list(self.objects),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def by_type(self, stix_type: str) -> list[dict]:
        return [o for o in self.objects if o.get("type") == stix_type]


def _node_key(node) -> str:
    return str(node.properties.get("merge_key") or node.properties.get("name", ""))


def export_graph(graph: PropertyGraph, markings: bool = False) -> StixBundle:
    """Export a knowledge graph to a STIX-shaped bundle.

    * concept nodes become their SDO type with ``name`` (+ ``aliases``);
    * IOC nodes become ``indicator`` objects carrying a STIX pattern;
    * report nodes become ``report`` objects whose ``object_refs`` are
      the entities the report MENTIONS and whose ``created_by_ref`` is
      the vendor identity (DESCRIBES stays a relationship so the edge
      round-trips);
    * every other edge becomes a ``relationship`` object.

    With ``markings=True`` every object additionally carries a TLP
    ``object_marking_refs`` entry -- an explicit node ``tlp`` property
    wins, otherwise the object type's default classification applies,
    and a relationship inherits the most sensitive of its endpoints --
    and the referenced TLP marking-definition objects are appended to
    the bundle (the dissemination path, see ``repro.feeds``).
    """
    bundle = StixBundle()
    id_by_node: dict[int, str] = {}
    tlp_by_id: dict[str, str] = {}

    for node in graph.nodes():
        label = node.label
        key = _node_key(node)
        if label in _PATTERN_BY_LABEL:
            object_id = stix_id("indicator", f"{label}|{key}")
            value = str(node.properties.get("name", "")).replace("'", "\\'")
            stix_object = {
                "type": "indicator",
                "id": object_id,
                "name": node.properties.get("name", ""),
                "pattern_type": "stix",
                "pattern": f"[{_PATTERN_BY_LABEL[label]} = '{value}']",
                "x_securitykg_kind": label,
            }
        elif label in STIX_TYPE_BY_LABEL:
            stix_type = STIX_TYPE_BY_LABEL[label]
            object_id = stix_id(stix_type, f"{label}|{key}")
            stix_object = {
                "type": stix_type,
                "id": object_id,
                "name": node.properties.get("name", ""),
                "x_securitykg_kind": label,
            }
            aliases = node.properties.get("aliases")
            if aliases:
                stix_object["aliases"] = list(aliases)
            if stix_type == "report":
                stix_object["published"] = node.properties.get("published", "")
                stix_object["x_source"] = node.properties.get("source", "")
                stix_object["x_url"] = node.properties.get("url", "")
                stix_object["object_refs"] = []
            if stix_type == "identity":
                stix_object["identity_class"] = "organization"
        else:
            raise StixMappingError(f"no STIX mapping for label {label!r}")
        # the identity key the object id was derived from: carrying it
        # lets import_bundle restore merge_key exactly, so an
        # export/import/export cycle converges to identical object ids
        stix_object["x_securitykg_key"] = key
        if markings:
            explicit = node.properties.get("tlp")
            if explicit is not None:
                level = str(explicit).lower()
                tlp_order(level)  # validate
            else:
                level = _DEFAULT_TLP_BY_TYPE.get(stix_object["type"], "white")
            stix_object["object_marking_refs"] = [TLP_MARKING_IDS[level]]
            tlp_by_id[stix_object["id"]] = level
        id_by_node[node.node_id] = stix_object["id"]
        bundle.objects.append(stix_object)

    objects_by_id = {o["id"]: o for o in bundle.objects}
    for edge in graph.edges():
        src_id = id_by_node[edge.src]
        dst_id = id_by_node[edge.dst]
        if edge.type == "MENTIONS":
            report = objects_by_id[src_id]
            refs = report.setdefault("object_refs", [])
            if dst_id not in refs:
                refs.append(dst_id)
            continue
        if edge.type == "CREATED_BY":
            objects_by_id[src_id]["created_by_ref"] = dst_id
            continue
        relationship_type = STIX_RELATIONSHIP_BY_EDGE.get(edge.type, "related-to")
        relationship = {
            "type": "relationship",
            "id": stix_id(
                "relationship", f"{src_id}|{edge.type}|{dst_id}"
            ),
            "relationship_type": relationship_type,
            "source_ref": src_id,
            "target_ref": dst_id,
            "x_securitykg_type": edge.type,
            "x_weight": edge.properties.get("weight", 1),
        }
        if markings:
            level = max_tlp([tlp_by_id[src_id], tlp_by_id[dst_id]])
            relationship["object_marking_refs"] = [TLP_MARKING_IDS[level]]
        bundle.objects.append(relationship)
    if markings:
        for level in TLP_LEVELS:
            if level in tlp_by_id.values() or any(
                o.get("object_marking_refs") == [TLP_MARKING_IDS[level]]
                for o in bundle.objects
            ):
                bundle.objects.append(tlp_marking_object(level))
    return bundle


def filter_bundle(
    bundle: StixBundle, max_level: str, sanitize: bool = False
) -> StixBundle:
    """The view of a bundle a consumer cleared up to ``max_level`` may
    see.

    * objects classified above the ceiling are dropped;
    * relationships whose source or target was dropped go with them;
    * surviving report ``object_refs`` are pruned to surviving ids;
    * marking-definitions above the ceiling are dropped;
    * ``sanitize=True`` additionally strips sourcing fields
      (``x_source``, ``x_url``) from reports -- the public-feed grade.

    Objects are deep-copied, so the input bundle is never mutated, and
    the output ordering is canonical (sorted by object id) so identical
    graph states always serialise to identical bytes.
    """
    ceiling = tlp_order(max_level)
    kept: dict[str, dict] = {}
    relationships: list[dict] = []
    for stix_object in bundle.objects:
        if stix_object.get("type") == "marking-definition":
            level = TLP_BY_MARKING_ID.get(stix_object.get("id", ""))
            if level is not None and tlp_order(level) > ceiling:
                continue
            kept[stix_object["id"]] = json.loads(json.dumps(stix_object))
            continue
        if tlp_order(tlp_of_object(stix_object)) > ceiling:
            continue
        copy = json.loads(json.dumps(stix_object))
        if stix_object.get("type") == "relationship":
            relationships.append(copy)
        else:
            kept[copy["id"]] = copy
    for relationship in relationships:
        if (
            relationship["source_ref"] in kept
            and relationship["target_ref"] in kept
        ):
            kept[relationship["id"]] = relationship
    for stix_object in kept.values():
        if "object_refs" in stix_object:
            stix_object["object_refs"] = sorted(
                ref for ref in stix_object["object_refs"] if ref in kept
            )
        if "created_by_ref" in stix_object:
            if stix_object["created_by_ref"] not in kept:
                del stix_object["created_by_ref"]
        if sanitize and stix_object.get("type") == "report":
            for field_name in _SANITIZED_FIELDS:
                stix_object.pop(field_name, None)
    return StixBundle(objects=[kept[key] for key in sorted(kept)])


def canonical_bundle(bundle: StixBundle) -> StixBundle:
    """A canonically ordered copy: objects sorted by id, report
    ``object_refs`` sorted -- identical graph states serialise to
    identical bytes regardless of iteration or partition order."""
    objects = {
        o["id"]: json.loads(json.dumps(o)) for o in bundle.objects
    }
    for stix_object in objects.values():
        if "object_refs" in stix_object:
            stix_object["object_refs"] = sorted(stix_object["object_refs"])
    return StixBundle(objects=[objects[key] for key in sorted(objects)])


def import_bundle(bundle: StixBundle | dict) -> PropertyGraph:
    """Rebuild a property graph from an exported bundle.

    Inverse of :func:`export_graph` for everything the mapping covers:
    node labels come back from ``x_securitykg_kind``, report
    ``object_refs`` become MENTIONS edges, ``created_by_ref`` becomes
    CREATED_BY, and relationship objects restore their original edge
    type from ``x_securitykg_type``.
    """
    data = bundle.to_dict() if isinstance(bundle, StixBundle) else bundle
    graph = PropertyGraph()
    node_by_stix_id: dict[str, int] = {}

    for stix_object in data["objects"]:
        if stix_object["type"] == "relationship":
            continue
        label = stix_object.get("x_securitykg_kind")
        if label is None:
            continue
        properties: dict[str, object] = {
            "name": stix_object.get("name", ""),
            "merge_key": str(
                stix_object.get("x_securitykg_key")
                or str(stix_object.get("name", "")).lower()
            ),
            "stix_id": stix_object["id"],
        }
        if stix_object.get("aliases"):
            properties["aliases"] = list(stix_object["aliases"])
        marked = tlp_of_object(stix_object)
        if stix_object.get("object_marking_refs") and marked != (
            _DEFAULT_TLP_BY_TYPE.get(stix_object["type"], "white")
        ):
            # a marking stricter/looser than the type default was an
            # explicit node property; restore it so re-export agrees
            properties["tlp"] = marked
        if stix_object["type"] == "report":
            properties["published"] = stix_object.get("published", "")
            properties["source"] = stix_object.get("x_source", "")
            properties["url"] = stix_object.get("x_url", "")
        node = graph.create_node(label, properties)
        node_by_stix_id[stix_object["id"]] = node.node_id

    for stix_object in data["objects"]:
        if stix_object["type"] == "relationship":
            src = node_by_stix_id.get(stix_object["source_ref"])
            dst = node_by_stix_id.get(stix_object["target_ref"])
            if src is None or dst is None:
                continue
            graph.create_edge(
                src,
                stix_object.get("x_securitykg_type", "RELATED_TO"),
                dst,
                {"weight": stix_object.get("x_weight", 1)},
            )
            continue
        node_id = node_by_stix_id.get(stix_object.get("id"))
        if node_id is None:
            continue
        for ref in stix_object.get("object_refs", []):
            target = node_by_stix_id.get(ref)
            if target is not None:
                graph.create_edge(node_id, "MENTIONS", target)
        created_by = stix_object.get("created_by_ref")
        if created_by and created_by in node_by_stix_id:
            graph.create_edge(node_id, "CREATED_BY", node_by_stix_id[created_by])

    return graph


__all__ = [
    "STIX_RELATIONSHIP_BY_EDGE",
    "STIX_TYPE_BY_LABEL",
    "TLP_BY_MARKING_ID",
    "TLP_LEVELS",
    "TLP_MARKING_IDS",
    "StixBundle",
    "StixMappingError",
    "canonical_bundle",
    "export_graph",
    "filter_bundle",
    "import_bundle",
    "max_tlp",
    "stix_id",
    "tlp_marking_object",
    "tlp_of_object",
    "tlp_order",
]
