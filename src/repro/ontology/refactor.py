"""Refactor intermediate CTI representations into ontology triplets.

Intermediate CTI representations are verbose and storage-inefficient
(paper section 2.1); before hitting the storage connectors they are
refactored to the security knowledge ontology: a report entity plus the
entities/relations the report evidences, all schema-validated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ontology.entities import (
    REPORT_TYPE_BY_CATEGORY,
    Entity,
    EntityType,
)
from repro.ontology.intermediate import CTIRecord
from repro.ontology.relations import Relation, RelationType, normalize_verb
from repro.ontology.schema import validate_relation


@dataclass
class GraphDelta:
    """The set of nodes and edges one report contributes to the graph."""

    entities: list[Entity] = field(default_factory=list)
    relations: list[Relation] = field(default_factory=list)

    def __iadd__(self, other: "GraphDelta") -> "GraphDelta":
        self.entities.extend(other.entities)
        self.relations.extend(other.relations)
        return self


def _report_entity(record: CTIRecord) -> Entity:
    report_type = REPORT_TYPE_BY_CATEGORY.get(
        record.report_category, EntityType.ATTACK_REPORT
    )
    return Entity(
        type=report_type,
        name=record.title or record.report_id,
        attributes={
            "report_id": record.report_id,
            "source": record.source,
            "url": record.url,
            "published": record.published,
            "summary": record.summary,
        },
    )


def refactor_record(record: CTIRecord) -> GraphDelta:
    """Turn one intermediate CTI representation into graph triplets.

    The refactoring emits:

    * the report entity (typed by the report category) and, when known,
      a ``CREATED_BY`` edge to the vendor entity;
    * one entity per IOC value, with ``MENTIONS`` edges from the report;
    * one entity per recognised concept mention (deduplicated on the
      merge key), with ``MENTIONS`` edges;
    * one schema-validated relation per extracted relation mention,
      with the raw verb and evidence sentence kept as attributes.
    """
    delta = GraphDelta()
    report = _report_entity(record)
    delta.entities.append(report)

    if record.vendor:
        vendor = Entity(type=EntityType.VENDOR, name=record.vendor)
        delta.entities.append(vendor)
        delta.relations.append(
            Relation(
                head=report,
                type=RelationType.CREATED_BY,
                tail=vendor,
                provenance={"report_id": record.report_id},
            )
        )

    seen: dict[tuple[str, str], Entity] = {report.key: report}

    def intern(entity: Entity) -> Entity:
        """Deduplicate entities within this report on the merge key."""
        existing = seen.get(entity.key)
        if existing is None:
            seen[entity.key] = entity
            delta.entities.append(entity)
            return entity
        if entity.attributes:
            merged = existing.merged_with(entity)
            existing.attributes = merged.attributes
        return existing

    def mention_edge(target: Entity, **extra: object) -> None:
        delta.relations.append(
            Relation(
                head=report,
                type=RelationType.MENTIONS,
                tail=target,
                attributes=dict(extra),
                provenance={"report_id": record.report_id},
            )
        )

    for kind_name, values in record.iocs.items():
        kind = EntityType(kind_name)
        for value in values:
            ioc = intern(Entity(type=kind, name=value))
            mention_edge(ioc, ioc=True)

    for mention in record.mentions:
        entity = intern(
            Entity(
                type=mention.type,
                name=mention.text,
                attributes={"method": mention.method},
            )
        )
        mention_edge(entity, confidence=mention.confidence)
        if mention.type in (
            EntityType.MALWARE,
            EntityType.VULNERABILITY,
            EntityType.CAMPAIGN,
        ):
            delta.relations.append(
                validate_relation(
                    Relation(
                        head=report,
                        type=RelationType.DESCRIBES,
                        tail=entity,
                        provenance={"report_id": record.report_id},
                    )
                )
            )

    for rel in record.relations:
        head = intern(Entity(type=rel.head_type, name=rel.head_text))
        tail = intern(Entity(type=rel.tail_type, name=rel.tail_text))
        delta.relations.append(
            validate_relation(
                Relation(
                    head=head,
                    type=normalize_verb(rel.verb),
                    tail=tail,
                    attributes={"verb": rel.verb, "confidence": rel.confidence},
                    provenance={
                        "report_id": record.report_id,
                        "sentence": rel.sentence,
                    },
                )
            )
        )

    return delta


def refactor_records(records: list[CTIRecord]) -> GraphDelta:
    """Refactor a batch of records into one combined delta."""
    combined = GraphDelta()
    for record in records:
        combined += refactor_record(record)
    return combined


__all__ = ["GraphDelta", "refactor_record", "refactor_records"]
