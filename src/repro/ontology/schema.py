"""Ontology schema: which (head type, relation, tail type) triples are legal.

The schema mirrors paper Figure 2.  Connectors call
:func:`validate_relation` before inserting a triplet; extraction noise
that violates the ontology is downgraded to ``MENTIONS``/``RELATED_TO``
rather than silently stored with a bogus type.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ontology.entities import IOC_TYPES, EntityType
from repro.ontology.relations import Relation, RelationType

_REPORTS = frozenset(
    {
        EntityType.MALWARE_REPORT,
        EntityType.VULNERABILITY_REPORT,
        EntityType.ATTACK_REPORT,
    }
)
_ACTORS = frozenset({EntityType.THREAT_ACTOR, EntityType.CAMPAIGN})
_ACTIVE = frozenset(
    {EntityType.MALWARE, EntityType.THREAT_ACTOR, EntityType.CAMPAIGN, EntityType.TOOL}
)
_FILES = frozenset({EntityType.FILE_NAME, EntityType.FILE_PATH})
_NET = frozenset({EntityType.IP, EntityType.DOMAIN, EntityType.URL})
_ALL = frozenset(EntityType)

#: relation -> (allowed head types, allowed tail types)
SCHEMA: dict[RelationType, tuple[frozenset[EntityType], frozenset[EntityType]]] = {
    RelationType.CREATED_BY: (_REPORTS, frozenset({EntityType.VENDOR})),
    RelationType.DESCRIBES: (
        _REPORTS,
        frozenset(
            {
                EntityType.MALWARE,
                EntityType.VULNERABILITY,
                EntityType.CAMPAIGN,
                EntityType.THREAT_ACTOR,
            }
        ),
    ),
    RelationType.MENTIONS: (_REPORTS, _ALL - _REPORTS),
    RelationType.USES: (
        _ACTIVE,
        frozenset(
            {
                EntityType.TECHNIQUE,
                EntityType.TOOL,
                EntityType.SOFTWARE,
                EntityType.MALWARE,
            }
        ),
    ),
    RelationType.DROPS: (_ACTIVE, _FILES | frozenset({EntityType.MALWARE})),
    RelationType.EXECUTES: (
        _ACTIVE,
        _FILES | frozenset({EntityType.TOOL, EntityType.MALWARE}),
    ),
    RelationType.CONNECTS_TO: (_ACTIVE, _NET),
    RelationType.COMMUNICATES_WITH: (_ACTIVE, _NET | frozenset({EntityType.EMAIL})),
    RelationType.DOWNLOADS: (_ACTIVE, _NET | _FILES | frozenset({EntityType.MALWARE})),
    RelationType.EXPLOITS: (
        _ACTIVE,
        frozenset({EntityType.VULNERABILITY, EntityType.SOFTWARE}),
    ),
    RelationType.TARGETS: (
        _ACTIVE,
        frozenset({EntityType.SOFTWARE, EntityType.VENDOR})
        | _NET
        | frozenset({EntityType.EMAIL}),
    ),
    RelationType.MODIFIES: (
        _ACTIVE,
        _FILES | frozenset({EntityType.REGISTRY, EntityType.SOFTWARE}),
    ),
    RelationType.CREATES: (_ACTIVE, _FILES | frozenset({EntityType.REGISTRY})),
    RelationType.DELETES: (_ACTIVE, _FILES | frozenset({EntityType.REGISTRY})),
    RelationType.ENCRYPTS: (_ACTIVE, _FILES),
    RelationType.SENDS: (_ACTIVE, frozenset({EntityType.EMAIL}) | _NET),
    RelationType.SPREADS_VIA: (
        _ACTIVE,
        frozenset(
            {
                EntityType.TECHNIQUE,
                EntityType.EMAIL,
                EntityType.SOFTWARE,
                EntityType.MALWARE,
            }
        ),
    ),
    RelationType.ATTRIBUTED_TO: (
        frozenset({EntityType.MALWARE, EntityType.CAMPAIGN, EntityType.TOOL}),
        _ACTORS,
    ),
    RelationType.INDICATES: (
        IOC_TYPES,
        frozenset({EntityType.MALWARE, EntityType.CAMPAIGN, EntityType.THREAT_ACTOR}),
    ),
    RelationType.VARIANT_OF: (
        frozenset({EntityType.MALWARE}),
        frozenset({EntityType.MALWARE}),
    ),
    RelationType.AFFECTS: (
        frozenset({EntityType.VULNERABILITY}),
        frozenset({EntityType.SOFTWARE, EntityType.TOOL}),
    ),
    RelationType.RELATED_TO: (_ALL, _ALL),
}


@dataclass(frozen=True)
class SchemaViolation:
    """Details of an ontology-schema violation for one relation."""

    relation: RelationType
    head_type: EntityType
    tail_type: EntityType
    reason: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"{self.head_type.value} -[{self.relation.value}]-> "
            f"{self.tail_type.value}: {self.reason}"
        )


def check_relation(relation: Relation) -> SchemaViolation | None:
    """Return a violation description, or ``None`` when legal."""
    heads, tails = SCHEMA[relation.type]
    if relation.head.type not in heads:
        return SchemaViolation(
            relation.type,
            relation.head.type,
            relation.tail.type,
            f"head type not in {sorted(t.value for t in heads)}",
        )
    if relation.tail.type not in tails:
        return SchemaViolation(
            relation.type,
            relation.head.type,
            relation.tail.type,
            f"tail type not in {sorted(t.value for t in tails)}",
        )
    return None


def validate_relation(relation: Relation) -> Relation:
    """Coerce an extracted relation onto the schema.

    Legal relations pass through unchanged.  Illegal ones are rewritten
    to ``RELATED_TO`` (which accepts any endpoint pair) with the
    original type stashed in ``attributes['raw_type']`` so no extracted
    signal is destroyed -- the same "never delete early" stance the
    paper takes for node merging.
    """
    if check_relation(relation) is None:
        return relation
    attributes = dict(relation.attributes)
    attributes.setdefault("raw_type", relation.type.value)
    return Relation(
        head=relation.head,
        type=RelationType.RELATED_TO,
        tail=relation.tail,
        attributes=attributes,
        provenance=dict(relation.provenance),
    )


def allowed_tail_types(
    head_type: EntityType, relation: RelationType
) -> frozenset[EntityType]:
    """Tail types the schema permits for ``head_type -[relation]->``."""
    heads, tails = SCHEMA[relation]
    if head_type not in heads:
        return frozenset()
    return tails


__all__ = [
    "SCHEMA",
    "SchemaViolation",
    "allowed_tail_types",
    "check_relation",
    "validate_relation",
]
