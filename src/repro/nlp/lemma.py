"""Rule-based English lemmatizer.

Word lemmas are one of the CRF's feature families (paper section 2.4).
This lemmatizer covers the inflection patterns that actually occur in
threat-report prose: plural nouns, verb -s/-ed/-ing forms, consonant
doubling, -ies/-ied, and a table of common irregulars.
"""

from __future__ import annotations

_IRREGULAR: dict[str, str] = {
    "was": "be",
    "were": "be",
    "been": "be",
    "is": "be",
    "are": "be",
    "am": "be",
    "has": "have",
    "had": "have",
    "having": "have",
    "does": "do",
    "did": "do",
    "done": "do",
    "goes": "go",
    "went": "go",
    "gone": "go",
    "wrote": "write",
    "written": "write",
    "sent": "send",
    "stolen": "steal",
    "stole": "steal",
    "ran": "run",
    "running": "run",
    "found": "find",
    "seen": "see",
    "saw": "see",
    "made": "make",
    "took": "take",
    "taken": "take",
    "began": "begin",
    "begun": "begin",
    "spread": "spread",
    "set": "set",
    "used": "use",
    "uses": "use",
    "children": "child",
    "people": "person",
    "mice": "mouse",
    "indices": "index",
    "analyses": "analysis",
    "vulnerabilities": "vulnerability",
    "capabilities": "capability",
    "activities": "activity",
    "families": "family",
    "proxies": "proxy",
    "registries": "registry",
    "binaries": "binary",
    "adversaries": "adversary",
}

_KEEP_S = frozenset(
    {
        "analysis",
        "always",
        "species",
        "news",
        "as",
        "its",
        "this",
        "is",
        "was",
        "has",
        "various",
        "previous",
        "across",
        "perhaps",
        "malicious",
        "suspicious",
        "dangerous",
        "numerous",
        "whereas",
        "access",
        "process",
        "address",
        "business",
        "less",
        "os",
        "dns",
        "https",
        "ics",
        "whois",
    }
)

_VOWELS = frozenset("aeiou")


def lemmatize(word: str) -> str:
    """Best-effort lemma of ``word`` (lower-cased)."""
    lower = word.lower()
    if lower in _IRREGULAR:
        return _IRREGULAR[lower]
    if len(lower) <= 3 or not lower.isalpha():
        return lower
    if lower in _KEEP_S:
        return lower

    if lower.endswith("ies") and len(lower) > 4:
        return lower[:-3] + "y"
    if lower.endswith("ied") and len(lower) > 4:
        return lower[:-3] + "y"
    if lower.endswith("sses") or lower.endswith("shes") or lower.endswith("ches"):
        return lower[:-2]
    if lower.endswith("xes") or lower.endswith("zzes") or lower.endswith("oes"):
        return lower[:-2]
    if lower.endswith("ing") and len(lower) > 5:
        stem = lower[:-3]
        return _fix_stem(stem)
    if lower.endswith("ed") and len(lower) > 4:
        stem = lower[:-2]
        return _fix_stem(stem)
    if lower.endswith("ss"):
        return lower
    if lower.endswith("s") and not lower.endswith("us") and not lower.endswith("is"):
        return lower[:-1]
    return lower


def _fix_stem(stem: str) -> str:
    """Undo consonant doubling / restore silent e after -ed/-ing strip."""
    if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in _VOWELS:
        # dropped -> dropp -> drop (but not 'call' -> 'cal')
        if stem[-1] not in "ls":
            return stem[:-1]
    if (
        len(stem) >= 2
        and stem[-1] not in _VOWELS
        and stem[-2] in _VOWELS
        and (len(stem) < 3 or stem[-3] not in _VOWELS)
        and stem[-1] not in "wxy"
    ):
        # encodes CVC pattern: 'encod' -> 'encode', 'us' -> 'use'
        return stem + "e"
    return stem


__all__ = ["lemmatize"]
