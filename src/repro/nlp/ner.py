"""Security-related entity recognition (paper section 2.4).

:class:`EntityRecognizer` is the full pipeline the paper describes:
IOC-protected tokenization, feature extraction (lemmas, POS tags,
embeddings, gazetteers), a linear-chain CRF trained on annotations
synthesised by data programming, and BIO decoding back to typed
mentions.  IOC mentions come from the regex recognisers (they are
deterministic artifacts, not prose), concept mentions from the CRF.

``EntityRecognizer.train`` is self-contained: give it raw sentences
and it synthesises labels, trains embeddings, and fits the CRF.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.nlp.crf import LinearChainCRF
from repro.nlp.features import FeatureExtractor
from repro.nlp.gazetteer import Gazetteer
from repro.nlp.labeling import NamedLF, synthesize_corpus
from repro.nlp.embeddings import WordEmbeddings
from repro.nlp.tokenize import Sentence, Token, tokenize_sentences
from repro.ontology.entities import EntityType
from repro.ontology.intermediate import Mention


@dataclass
class EntitySpan:
    """A typed span over a tokenized sentence (token index range)."""

    start: int  # first token index
    end: int  # one past last token index
    type: EntityType
    text: str
    confidence: float = 1.0


def decode_bio(
    tokens: Sequence[Token], labels: list[str], confidences: list[float] | None = None
) -> list[EntitySpan]:
    """Collapse a BIO sequence into typed spans."""
    spans: list[EntitySpan] = []
    current_type: EntityType | None = None
    start = 0
    scores: list[float] = []

    def flush(end: int) -> None:
        nonlocal current_type, scores
        if current_type is not None:
            text = " ".join(token.text for token in tokens[start:end])
            confidence = min(scores) if scores else 1.0
            spans.append(
                EntitySpan(
                    start=start,
                    end=end,
                    type=current_type,
                    text=text,
                    confidence=confidence,
                )
            )
        current_type = None
        scores = []

    for i, label in enumerate(labels):
        conf = confidences[i] if confidences else 1.0
        if label == "O":
            flush(i)
            continue
        prefix, _, type_name = label.partition("-")
        entity_type = EntityType(type_name)
        if prefix == "B" or entity_type != current_type:
            flush(i)
            current_type = entity_type
            start = i
        scores.append(conf)
    flush(len(labels))
    return spans


_IDENTITY_PREFIXES = ("w=", "lemma=", "gaz=")


def _drop_identity_features(features: list[str]) -> list[str]:
    """Remove identity features from one token's feature list."""
    return [f for f in features if not f.startswith(_IDENTITY_PREFIXES)]


class EntityRecognizer:
    """CRF-based recogniser for concept entities + regex IOC mentions."""

    def __init__(
        self,
        crf: LinearChainCRF,
        feature_extractor: FeatureExtractor,
        protect_iocs: bool = True,
    ):
        self.crf = crf
        self.features = feature_extractor
        self.protect_iocs = protect_iocs

    # -- training -----------------------------------------------------------

    @classmethod
    def train(
        cls,
        texts: list[str],
        gazetteer: Gazetteer | None = None,
        lfs: list[NamedLF] | None = None,
        embedding_dim: int = 24,
        l2: float = 0.05,
        max_iterations: int = 70,
        protect_iocs: bool = True,
        use_embeddings: bool = True,
        context_window: int = 2,
        use_gazetteer_features: bool = True,
        feature_dropout: float = 0.3,
        dropout_seed: int = 17,
    ) -> "EntityRecognizer":
        """End-to-end training from raw sentence strings.

        Labels are synthesised by data programming; no gold annotation
        is consumed, mirroring the paper's setting.

        ``feature_dropout`` randomly blanks the identity features
        (``w=``, ``lemma=``, ``gaz=``) of a fraction of training
        tokens.  Without it the CRF can satisfy the training labels by
        memorising gazetteer hits and never learns the contextual
        evidence that lets it recognise names outside the curated
        lists -- the generalisation the paper claims over naive
        lookup solutions.
        """
        import random as _random

        gazetteer = gazetteer or Gazetteer.load_default()
        token_sentences: list[list[Token]] = []
        for text in texts:
            for sentence in tokenize_sentences(text, protect_iocs=protect_iocs):
                token_sentences.append(sentence.tokens)

        corpus, _diag = synthesize_corpus(token_sentences, lfs=lfs)

        embeddings = None
        if use_embeddings:
            embeddings = WordEmbeddings(dim=embedding_dim).train(
                [[t.text for t in tokens] for tokens in token_sentences]
            )
        extractor = FeatureExtractor(
            gazetteer=gazetteer if use_gazetteer_features else None,
            embeddings=embeddings,
            window=context_window,
        )
        rng = _random.Random(dropout_seed)
        features = []
        labels = []
        for tokens, bio in corpus:
            sentence_features = extractor.extract(tokens)
            if feature_dropout > 0:
                sentence_features = [
                    _drop_identity_features(feats)
                    if rng.random() < feature_dropout
                    else feats
                    for feats in sentence_features
                ]
            features.append(sentence_features)
            labels.append(bio)
        crf = LinearChainCRF(l2=l2, max_iterations=max_iterations).fit(
            features, labels
        )
        return cls(crf=crf, feature_extractor=extractor, protect_iocs=protect_iocs)

    # -- inference -------------------------------------------------------------

    def recognize_tokens(self, tokens: Sequence[Token]) -> list[EntitySpan]:
        """Concept-entity spans of one tokenized sentence (CRF path)."""
        if not tokens:
            return []
        features = self.features.extract(tokens)
        labels = self.crf.predict(features)
        marginals = self.crf.predict_marginals(features)
        confidences = [m.get(label, 1.0) for label, m in zip(labels, marginals)]
        return decode_bio(tokens, labels, confidences)

    def extract(self, text: str) -> tuple[list[Sentence], list[Mention]]:
        """All mentions in ``text``: CRF concepts + regex IOCs.

        Returns the sentence segmentation (for downstream relation
        extraction) and the mentions with character offsets.
        """
        sentences = tokenize_sentences(text, protect_iocs=self.protect_iocs)
        mentions: list[Mention] = []
        for index, sentence in enumerate(sentences):
            for token in sentence.tokens:
                if token.is_ioc:
                    mentions.append(
                        Mention(
                            text=token.text,
                            type=token.ioc_type,
                            sentence_index=index,
                            start=token.start,
                            end=token.end,
                            confidence=1.0,
                            method="regex",
                        )
                    )
            for span in self.recognize_tokens(sentence.tokens):
                first = sentence.tokens[span.start]
                last = sentence.tokens[span.end - 1]
                mentions.append(
                    Mention(
                        text=span.text,
                        type=span.type,
                        sentence_index=index,
                        start=first.start,
                        end=last.end,
                        confidence=span.confidence,
                        method="crf",
                    )
                )
        return sentences, mentions

    # -- persistence --------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the CRF (feature extractor is reconstructed on load)."""
        self.crf.save(path)

    @classmethod
    def load(
        cls,
        path: str | Path,
        gazetteer: Gazetteer | None = None,
        embeddings: WordEmbeddings | None = None,
    ) -> "EntityRecognizer":
        crf = LinearChainCRF.load(path)
        return cls(
            crf=crf,
            feature_extractor=FeatureExtractor(
                gazetteer=gazetteer or Gazetteer.load_default(),
                embeddings=embeddings,
            ),
        )


__all__ = ["EntityRecognizer", "EntitySpan", "decode_bio"]
