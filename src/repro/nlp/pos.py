"""Lightweight part-of-speech tagger.

A deterministic lexicon-plus-heuristics tagger producing a compact
Penn-style tag set.  POS tags feed two consumers: CRF features
(section 2.4: "features such as word lemmas, pos tags, and word
embeddings") and the shallow dependency parser behind relation
extraction.  Closed-class words come from an explicit lexicon; open
class words are resolved by suffix/shape heuristics with a
verb-lexicon assist, then repaired by a short list of contextual rules
(determiner -> noun, ``to`` + base verb, modal + verb).
"""

from __future__ import annotations

from repro.nlp.tokenize import Token

#: Closed-class lexicon: word -> tag.
_LEXICON: dict[str, str] = {}
for _word in (
    "the a an this that these those its his her their our your any some "
    "each every no all both several many few most other another such"
).split():
    _LEXICON[_word] = "DT"
for _word in (
    "in on at by for with from to of over under through against via "
    "during before after between within across onto into alongside "
    "inside behind without toward towards per"
).split():
    _LEXICON[_word] = "IN"
for _word in "and or but nor so yet".split():
    _LEXICON[_word] = "CC"
for _word in (
    "he she it they we you i who which what them him us me itself themselves"
).split():
    _LEXICON[_word] = "PRP"
for _word in "will would can could may might must shall should".split():
    _LEXICON[_word] = "MD"
for _word in "is are was were be been being am".split():
    _LEXICON[_word] = "VB"
for _word in "has have had do does did".split():
    _LEXICON[_word] = "VB"
for _word in "not never also still already once again".split():
    _LEXICON[_word] = "RB"
for _word in "when where while if because although that as since whether".split():
    _LEXICON[_word] = "IN"

#: Verbs common in threat reports (base forms); inflections are derived.
_VERB_STEMS = frozenset(
    (
        "use employ leverage utilize deploy drop write install create plant "
        "execute run launch spawn invoke connect beacon communicate contact "
        "download fetch retrieve exploit abuse weaponize target attack "
        "compromise infect modify alter change tamper delete remove erase "
        "wipe encrypt lock send exfiltrate spread propagate distribute "
        "attribute link indicate affect impact describe analyze relate "
        "observe report identify detect block monitor harvest steal collect "
        "inject persist escalate scan move track disable "
        "enable perform contain include appear remain become urge apply "
        "review keep share release believe continue survive consider find "
        "tie reach expand strike return say show reveal warn confirm "
        "publish mask register establish try gain"
    ).split()
)


def _verb_form(lower: str) -> str | None:
    """Tag if ``lower`` is an inflection of a known verb stem."""
    if lower in _VERB_STEMS:
        return "VB"
    if lower.endswith("s") and lower[:-1] in _VERB_STEMS:
        return "VBZ"
    if lower.endswith("es") and lower[:-2] in _VERB_STEMS:
        return "VBZ"
    if lower.endswith("ies") and lower[:-3] + "y" in _VERB_STEMS:
        return "VBZ"
    if lower.endswith("ed"):
        stem = lower[:-2]
        if stem in _VERB_STEMS or lower[:-1] in _VERB_STEMS:
            return "VBD"
        if stem and stem[-1:] == stem[-2:-1] and stem[:-1] in _VERB_STEMS:
            return "VBD"
        if stem + "e" in _VERB_STEMS:
            return "VBD"
        if lower[:-3] + "y" in _VERB_STEMS and lower.endswith("ied"):
            return "VBD"
    if lower.endswith("ing"):
        stem = lower[:-3]
        if stem in _VERB_STEMS or stem + "e" in _VERB_STEMS:
            return "VBG"
        if stem and stem[-1:] == stem[-2:-1] and stem[:-1] in _VERB_STEMS:
            return "VBG"
    return None


def _heuristic(word: str) -> str:
    lower = word.lower()
    if not word:
        return "NN"
    if word[0].isdigit():
        return "CD"
    if not any(ch.isalnum() for ch in word):
        return "PUNCT"
    verb = _verb_form(lower)
    if verb:
        return verb
    if lower.endswith("ly"):
        return "RB"
    if lower.endswith(("ous", "ive", "able", "ible", "ful", "ical")):
        return "JJ"
    if len(lower) >= 6 and lower.endswith(("al", "ic")):
        return "JJ"
    if lower.endswith(("tion", "sion", "ment", "ness", "ity", "ware", "ism", "ist")):
        return "NN"
    if lower.endswith("ing"):
        return "VBG"
    if lower.endswith("ed"):
        return "VBN"
    if word[0].isupper():
        return "NNP"
    if lower.endswith("s"):
        return "NNS"
    return "NN"


def tag(tokens: list[Token]) -> list[str]:
    """POS tags for a tokenized sentence.

    IOC tokens are always nouns (they name artifacts); contextual
    repair passes run afterwards.
    """
    tags: list[str] = []
    for token in tokens:
        if token.is_ioc:
            tags.append("NNP")
            continue
        lower = token.text.lower()
        tags.append(_LEXICON.get(lower) or _heuristic(token.text))

    # Repair pass 1: determiner/adjective must be followed by a nominal
    # eventually; a 'VB*' right after DT/JJ inside an NP is a noun
    # ('the drop', 'a scheduled task').
    for i in range(1, len(tags)):
        if tags[i].startswith("VB") and tags[i - 1] in ("DT", "JJ"):
            following_noun = i + 1 < len(tags) and tags[i + 1].startswith("NN")
            if tags[i] in ("VBG", "VBN", "VBD") and following_noun:
                tags[i] = "JJ"  # 'a scheduled task'
            elif not following_noun:
                tags[i] = "NN"
    # Repair pass 1b: a participle right after a verb, preposition or
    # conjunction that is followed by a nominal heads a noun phrase
    # ('employs scheduled task', 'via signed updates') -- adjectival.
    for i in range(1, len(tags) - 1):
        if (
            tags[i] in ("VBN", "VBG")
            and tags[i + 1].startswith("NN")
            and (tags[i - 1].startswith("VB") or tags[i - 1] in ("IN", "TO", "CC"))
        ):
            tags[i] = "JJ"
    # Repair pass 2: 'to' + base verb is infinitival.
    for i in range(len(tags) - 1):
        if tokens[i].text.lower() == "to" and tags[i + 1] == "VB":
            tags[i] = "TO"
    # Repair pass 3: modal + anything verb-ish keeps verb reading.
    for i in range(len(tags) - 1):
        if tags[i] == "MD" and tags[i + 1].startswith("NN"):
            if _verb_form(tokens[i + 1].text.lower()):
                tags[i + 1] = "VB"
    return tags


def is_verb_like(word: str) -> bool:
    """Whether ``word`` inflects from a known verb stem (LF guard)."""
    return _verb_form(word.lower()) is not None


__all__ = ["is_verb_like", "tag"]
