"""Evaluation metrics for extraction quality.

Span-level precision/recall/F1 for entity recognition (exact match on
normalised text + type) and triple-level F1 for relation extraction
(head, normalised relation, tail).  Used by the tests and by the E4-E7
benchmarks that reproduce the paper's ">92% F1" claim.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.ontology.entities import EntityType, canonical_name
from repro.ontology.relations import normalize_verb


@dataclass
class PRF:
    """Precision / recall / F1 with raw counts."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __iadd__(self, other: "PRF") -> "PRF":
        self.true_positives += other.true_positives
        self.false_positives += other.false_positives
        self.false_negatives += other.false_negatives
        return self

    def as_row(self) -> dict[str, float]:
        return {
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
            "support": self.true_positives + self.false_negatives,
        }


@dataclass
class EntityEvaluation:
    """Micro scores plus per-type breakdown for entity extraction."""

    micro: PRF = field(default_factory=PRF)
    by_type: dict[EntityType, PRF] = field(default_factory=dict)

    def type_f1(self, entity_type: EntityType) -> float:
        return self.by_type.get(entity_type, PRF()).f1

    @property
    def macro_f1(self) -> float:
        scores = [prf.f1 for prf in self.by_type.values()]
        return sum(scores) / len(scores) if scores else 0.0


def _entity_key(text: str, entity_type: EntityType) -> tuple[str, str]:
    return (canonical_name(text), entity_type.value)


def evaluate_entities(
    predicted: list[tuple[str, EntityType]],
    gold: list[tuple[str, EntityType]],
) -> EntityEvaluation:
    """Multiset span matching: each gold mention may be matched once."""
    evaluation = EntityEvaluation()
    predicted_counts = Counter(_entity_key(t, k) for t, k in predicted)
    gold_counts = Counter(_entity_key(t, k) for t, k in gold)

    keys = set(predicted_counts) | set(gold_counts)
    for key in keys:
        entity_type = EntityType(key[1])
        prf = evaluation.by_type.setdefault(entity_type, PRF())
        tp = min(predicted_counts[key], gold_counts[key])
        fp = predicted_counts[key] - tp
        fn = gold_counts[key] - tp
        prf.true_positives += tp
        prf.false_positives += fp
        prf.false_negatives += fn
        evaluation.micro += PRF(tp, fp, fn)
    return evaluation


def _relation_key(head: str, verb: str, tail: str) -> tuple[str, str, str]:
    return (canonical_name(head), normalize_verb(verb).value, canonical_name(tail))


def evaluate_relations(
    predicted: list[tuple[str, str, str]],
    gold: list[tuple[str, str, str]],
) -> PRF:
    """Triple matching after verb normalisation."""
    predicted_counts = Counter(_relation_key(*triple) for triple in predicted)
    gold_counts = Counter(_relation_key(*triple) for triple in gold)
    prf = PRF()
    for key in set(predicted_counts) | set(gold_counts):
        tp = min(predicted_counts[key], gold_counts[key])
        prf.true_positives += tp
        prf.false_positives += predicted_counts[key] - tp
        prf.false_negatives += gold_counts[key] - tp
    return prf


__all__ = ["EntityEvaluation", "PRF", "evaluate_entities", "evaluate_relations"]
