"""Security-related relation extraction (paper section 2.4).

Unsupervised, dependency-based: for each verb the extractor gathers
its subject, object, prepositional and passive arguments from the
shallow parse, maps each argument to a recognised entity by
noun-phrase overlap (the syntactic head of "the wannacry ransomware"
is *ransomware*, but the entity is *wannacry* inside the same NP), and
emits <entity, verb, entity> triples:

* active:   ``subj --verb--> dobj / first prep object``
* carrier:  when the subject is not an entity but both the direct and
  a prepositional object are ("telemetry links X to Y" -> X verb Y)
* passive:  ``agent --verb--> nsubjpass``; without an agent, the
  passive subject relates to the first prepositional object
  ("X is attributed to Y" -> X verb Y)
* coordinated verbs inherit the previous verb's subject
  ("... as a.exe and encrypts b.doc")
* conjunction arcs distribute objects ("drops A and B")

Extracted triples whose endpoint types violate the ontology schema are
discarded (ontology-guided filtering), as are triples whose verb is
outside the relation vocabulary; both are extraction noise by
construction.  Confidence decays with argument distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.nlp.depparse import ParsedSentence, parse
from repro.nlp.lemma import lemmatize
from repro.nlp.ner import EntitySpan
from repro.nlp.tokenize import Token
from repro.ontology.entities import Entity
from repro.ontology.intermediate import Mention, RelationMention
from repro.ontology.relations import RelationType, normalize_verb
from repro.ontology.schema import check_relation
from repro.ontology.relations import Relation

_NP_TAGS = frozenset({"NN", "NNS", "NNP", "CD", "JJ", "DT"})

#: Verbs that relate their own objects rather than their subject
#: ("telemetry *links* X to Y", "researchers *tied* X to Y").
_CARRIER_VERBS = frozenset({"link", "tie", "connect", "associate", "attribute", "relate"})


def _is_carrier_verb(word: str) -> bool:
    return lemmatize(word) in _CARRIER_VERBS


def _np_range(tags: list[str], head: int) -> tuple[int, int]:
    """The contiguous noun-phrase token range around a nominal head."""
    start = head
    while start > 0 and tags[start - 1] in _NP_TAGS:
        start -= 1
    end = head + 1
    while end < len(tags) and tags[end] in _NP_TAGS:
        end += 1
    return start, end


class RelationExtractor:
    """Extract <entity, verb, entity> triples from tokenized sentences.

    Parameters
    ----------
    schema_filter:
        Drop triples whose endpoints violate the ontology schema.
    drop_unknown_verbs:
        Drop triples whose verb does not normalise into the relation
        vocabulary (they would all collapse to ``RELATED_TO``).
    """

    def __init__(
        self,
        max_distance: int = 20,
        schema_filter: bool = True,
        drop_unknown_verbs: bool = True,
    ):
        self.max_distance = max_distance
        self.schema_filter = schema_filter
        self.drop_unknown_verbs = drop_unknown_verbs

    # -- argument resolution -------------------------------------------

    @staticmethod
    def _argument_for(
        parsed: ParsedSentence, spans: Sequence[EntitySpan], dep: int
    ) -> EntitySpan | None:
        """The entity span realising the NP around token ``dep``."""
        covering = [s for s in spans if s.start <= dep < s.end]
        if covering:
            return covering[0]
        np_start, np_end = _np_range(parsed.tags, dep)
        overlapping = [s for s in spans if s.start < np_end and s.end > np_start]
        if overlapping:
            # nearest to the head wins
            return min(overlapping, key=lambda s: abs(s.end - 1 - dep))
        return None

    def _keep(self, relation: RelationMention) -> bool:
        relation_type = normalize_verb(relation.verb)
        if self.drop_unknown_verbs and relation_type == RelationType.RELATED_TO:
            return False
        if self.schema_filter:
            candidate = Relation(
                head=Entity(relation.head_type, relation.head_text),
                type=relation_type,
                tail=Entity(relation.tail_type, relation.tail_text),
            )
            if check_relation(candidate) is not None:
                return False
        return True

    # -- extraction ------------------------------------------------------

    def extract_from_parse(
        self, parsed: ParsedSentence, spans: Sequence[EntitySpan]
    ) -> list[RelationMention]:
        """Relations among ``spans`` evidenced by ``parsed``'s arcs."""
        if len(spans) < 2:
            return []
        sentence_text = " ".join(token.text for token in parsed.tokens)
        conj_map: dict[int, list[int]] = {}
        for arc in parsed.arcs:
            if arc.label == "conj":
                conj_map.setdefault(arc.head, []).append(arc.dep)

        relations: list[RelationMention] = []
        seen: set[tuple[str, str, str]] = set()
        last_subject: EntitySpan | None = None

        def resolve(dep: int) -> list[EntitySpan]:
            out = []
            for index in [dep] + conj_map.get(dep, []):
                span = self._argument_for(parsed, spans, index)
                if span is not None and span not in out:
                    out.append(span)
            return out

        def emit(head: EntitySpan, verb_index: int, tail: EntitySpan) -> None:
            if head is tail:
                return
            distance = abs((head.end - 1) - (tail.end - 1))
            if distance > self.max_distance:
                return
            verb = lemmatize(parsed.tokens[verb_index].text)
            key = (head.text, verb, tail.text)
            if key in seen:
                return
            mention = RelationMention(
                head_text=head.text,
                head_type=head.type,
                verb=verb,
                tail_text=tail.text,
                tail_type=tail.type,
                sentence=sentence_text,
                confidence=1.0 / (1.0 + 0.1 * distance),
            )
            if not self._keep(mention):
                return
            seen.add(key)
            relations.append(mention)

        for verb_index in parsed.verbs():
            subject_entity: EntitySpan | None = None
            subject_nominal: int | None = None
            passive_subjects: list[EntitySpan] = []
            agents: list[EntitySpan] = []
            direct_objects: list[EntitySpan] = []
            prep_objects: list[EntitySpan] = []

            for arc in sorted(parsed.arcs_from(verb_index), key=lambda a: a.dep):
                if arc.label == "nsubj":
                    subject_nominal = arc.dep
                    resolved = resolve(arc.dep)
                    if resolved:
                        subject_entity = resolved[0]
                elif arc.label == "nsubjpass":
                    passive_subjects.extend(resolve(arc.dep))
                elif arc.label == "agent":
                    agents.extend(resolve(arc.dep))
                elif arc.label == "dobj":
                    direct_objects.extend(resolve(arc.dep))
                elif arc.label.startswith("prep:") and not prep_objects:
                    # take the first preposition whose object is an entity
                    prep_objects.extend(resolve(arc.dep))

            # Appositive / relative-clause subjects: "X, a group that
            # leverages Y" -- the grammatical subject ("group") is not
            # an entity, but an entity NP sits just to its left.
            if subject_entity is None and subject_nominal is not None:
                steps = 0
                i = subject_nominal - 1
                while i >= 0 and steps < 6:
                    word = parsed.tokens[i].text.lower()
                    if parsed.tags[i] in ("NN", "NNS", "NNP", "CD"):
                        resolved = resolve(i)
                        if resolved:
                            subject_entity = resolved[0]
                            break
                    elif word not in (",", "that", "which", "who") and parsed.tags[
                        i
                    ] not in ("DT", "JJ"):
                        break
                    i -= 1
                    steps += 1

            # Coordinated verbs share the previous verb's subject:
            # "... drops a copy as a.exe and encrypts b.doc" -- the
            # nominal left of 'encrypts' is the previous object, not
            # the subject, so the previous subject wins outright.
            left = verb_index - 1
            while left >= 0 and parsed.tags[left] == "RB":
                left -= 1
            coordinated = left >= 0 and parsed.tokens[left].text.lower() in (
                "and",
                "or",
                ",",
                "then",
            )
            if coordinated and last_subject is not None:
                subject_entity = last_subject

            if subject_entity is not None:
                # Direct objects win; prepositional objects only fill in
                # when the verb has no entity direct object ("connects
                # to <ip>", "tampers with <registry>").
                for obj in direct_objects or prep_objects:
                    emit(subject_entity, verb_index, obj)
                last_subject = subject_entity
            elif passive_subjects:
                if agents:
                    for agent in agents:
                        for subject in passive_subjects:
                            emit(agent, verb_index, subject)
                else:
                    for subject in passive_subjects:
                        for obj in prep_objects:
                            emit(subject, verb_index, obj)
            elif _is_carrier_verb(parsed.tokens[verb_index].text):
                # Carrier verbs relate their own arguments:
                # "telemetry links X to Y" -> X verb Y.
                for head in direct_objects:
                    for tail in prep_objects:
                        emit(head, verb_index, tail)
        return relations

    def extract(
        self, tokens: Sequence[Token], spans: Sequence[EntitySpan]
    ) -> list[RelationMention]:
        """Parse ``tokens`` and extract relations among ``spans``."""
        return self.extract_from_parse(parse(tokens), spans)

    def extract_with_mentions(
        self,
        tokens: Sequence[Token],
        mentions: Sequence[Mention],
        sentence_index: int = 0,
    ) -> list[RelationMention]:
        """Convenience: accept ontology mentions with char offsets.

        Mentions are mapped back to token spans by offset overlap; IOC
        mentions participate as relation arguments too (``connects to
        <ip>``).
        """
        spans: list[EntitySpan] = []
        for mention in mentions:
            if mention.sentence_index != sentence_index:
                continue
            token_start = token_end = None
            for i, token in enumerate(tokens):
                if token.end > mention.start and token.start < mention.end:
                    if token_start is None:
                        token_start = i
                    token_end = i + 1
            if token_start is None:
                continue
            spans.append(
                EntitySpan(
                    start=token_start,
                    end=token_end,
                    type=mention.type,
                    text=mention.text,
                    confidence=mention.confidence,
                )
            )
        extracted = self.extract(tokens, spans)
        for relation in extracted:
            relation.sentence_index = sentence_index
        return extracted


def ioc_spans(tokens: Sequence[Token]) -> list[EntitySpan]:
    """Entity spans for the IOC tokens of a sentence (regex path)."""
    return [
        EntitySpan(start=i, end=i + 1, type=token.ioc_type, text=token.text)
        for i, token in enumerate(tokens)
        if token.is_ioc
    ]


__all__ = ["RelationExtractor", "ioc_spans"]
