"""Linear-chain Conditional Random Field, from scratch.

Implements Lafferty et al. [10] for sequence labeling: log-linear
emission features per token plus first-order label transition weights,
trained by maximising the regularised conditional log-likelihood with
exact forward-backward gradients and scipy's L-BFGS-B, decoded with
Viterbi.

The implementation is deliberately self-contained (no sklearn /
crfsuite exist offline) but not a toy: log-space forward-backward,
L2 regularisation, feature hashing-free explicit feature indexing,
serialisation, and probability output via posterior marginals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np
from scipy.optimize import minimize


def _logsumexp(values: np.ndarray, axis: int = 0) -> np.ndarray:
    peak = np.max(values, axis=axis, keepdims=True)
    out = np.log(np.sum(np.exp(values - peak), axis=axis)) + np.squeeze(peak, axis=axis)
    return out


@dataclass
class EncodedSentence:
    """A sentence encoded as per-token feature-index arrays + label ids."""

    features: list[np.ndarray]
    labels: np.ndarray | None = None


class LinearChainCRF:
    """Linear-chain CRF over string feature names and string labels.

    Usage::

        crf = LinearChainCRF(l2=0.1)
        crf.fit(list_of_feature_lists, list_of_label_lists)
        predicted = crf.predict(feature_lists_of_one_sentence)
    """

    def __init__(self, l2: float = 0.1, max_iterations: int = 80, verbose: bool = False):
        self.l2 = l2
        self.max_iterations = max_iterations
        self.verbose = verbose
        self.feature_index: dict[str, int] = {}
        self.labels: list[str] = []
        self.label_index: dict[str, int] = {}
        self.emission: np.ndarray | None = None  # [n_features, n_labels]
        self.transition: np.ndarray | None = None  # [n_labels+1, n_labels]
        self.start_row = 0  # index n_labels in transition = start

    # -- encoding -------------------------------------------------------

    def _build_vocab(
        self,
        sentences: list[list[list[str]]],
        label_sequences: list[list[str]],
    ) -> None:
        features: set[str] = set()
        labels: set[str] = set()
        for sentence in sentences:
            for token_features in sentence:
                features.update(token_features)
        for sequence in label_sequences:
            labels.update(sequence)
        labels.add("O")
        self.feature_index = {name: i for i, name in enumerate(sorted(features))}
        self.labels = sorted(labels)
        self.label_index = {label: i for i, label in enumerate(self.labels)}

    def _encode(
        self,
        sentence: list[list[str]],
        labels: list[str] | None = None,
        grow: bool = False,
    ) -> EncodedSentence:
        encoded_features: list[np.ndarray] = []
        for token_features in sentence:
            ids = []
            for name in token_features:
                index = self.feature_index.get(name)
                if index is None and grow:
                    index = len(self.feature_index)
                    self.feature_index[name] = index
                if index is not None:
                    ids.append(index)
            encoded_features.append(np.asarray(sorted(set(ids)), dtype=np.int64))
        encoded_labels = None
        if labels is not None:
            encoded_labels = np.asarray(
                [self.label_index[label] for label in labels], dtype=np.int64
            )
        return EncodedSentence(features=encoded_features, labels=encoded_labels)

    # -- potentials -------------------------------------------------------

    def _scores(self, encoded: EncodedSentence, emission: np.ndarray) -> np.ndarray:
        """Emission score matrix S[t, y]."""
        n_labels = emission.shape[1]
        scores = np.zeros((len(encoded.features), n_labels))
        for t, ids in enumerate(encoded.features):
            if len(ids):
                scores[t] = emission[ids].sum(axis=0)
        return scores

    def _forward_backward(
        self, scores: np.ndarray, transition: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Log alpha, log beta and log partition for one sentence."""
        n_tokens, n_labels = scores.shape
        trans = transition[:n_labels]
        start = transition[n_labels]
        alpha = np.zeros((n_tokens, n_labels))
        alpha[0] = start + scores[0]
        for t in range(1, n_tokens):
            alpha[t] = _logsumexp(alpha[t - 1][:, None] + trans, axis=0) + scores[t]
        beta = np.zeros((n_tokens, n_labels))
        for t in range(n_tokens - 2, -1, -1):
            beta[t] = _logsumexp(trans + (scores[t + 1] + beta[t + 1])[None, :], axis=1)
        log_z = float(_logsumexp(alpha[-1], axis=0))
        return alpha, beta, log_z

    # -- training ---------------------------------------------------------

    def fit(
        self,
        sentences: list[list[list[str]]],
        label_sequences: list[list[str]],
    ) -> "LinearChainCRF":
        """Train on (feature-lists, BIO labels) pairs."""
        if len(sentences) != len(label_sequences):
            raise ValueError("sentences and labels must align")
        data = [
            (sentence, labels)
            for sentence, labels in zip(sentences, label_sequences)
            if sentence
        ]
        self._build_vocab([s for s, _ in data], [l for _, l in data])
        encoded = [self._encode(s, l) for s, l in data]
        n_features = len(self.feature_index)
        n_labels = len(self.labels)
        emission_size = n_features * n_labels
        transition_size = (n_labels + 1) * n_labels

        def unpack(theta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            emission = theta[:emission_size].reshape(n_features, n_labels)
            transition = theta[emission_size:].reshape(n_labels + 1, n_labels)
            return emission, transition

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            emission, transition = unpack(theta)
            grad_emission = np.zeros_like(emission)
            grad_transition = np.zeros_like(transition)
            negative_ll = 0.0
            trans = transition[:n_labels]
            for sentence in encoded:
                scores = self._scores(sentence, emission)
                alpha, beta, log_z = self._forward_backward(scores, transition)
                labels = sentence.labels
                n_tokens = scores.shape[0]

                # empirical score
                path_score = transition[n_labels, labels[0]] + scores[0, labels[0]]
                for t in range(1, n_tokens):
                    path_score += trans[labels[t - 1], labels[t]] + scores[t, labels[t]]
                negative_ll -= path_score - log_z

                # expected counts
                marginals = np.exp(alpha + beta - log_z)  # [n_tokens, n_labels]
                for t, ids in enumerate(sentence.features):
                    if len(ids):
                        grad_emission[ids] += marginals[t]
                        grad_emission[ids, labels[t]] -= 1.0
                grad_transition[n_labels] += marginals[0]
                grad_transition[n_labels, labels[0]] -= 1.0
                for t in range(1, n_tokens):
                    pairwise = (
                        alpha[t - 1][:, None]
                        + trans
                        + (scores[t] + beta[t])[None, :]
                        - log_z
                    )
                    grad_transition[:n_labels] += np.exp(pairwise)
                    grad_transition[labels[t - 1], labels[t]] -= 1.0

            negative_ll += 0.5 * self.l2 * float(np.dot(theta, theta))
            grad = np.concatenate(
                [grad_emission.ravel(), grad_transition.ravel()]
            ) + self.l2 * theta
            return negative_ll, grad

        theta0 = np.zeros(emission_size + transition_size)
        result = minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iterations},
        )
        self.emission, self.transition = unpack(result.x)
        return self

    # -- inference ----------------------------------------------------------

    def _require_trained(self) -> None:
        if self.emission is None or self.transition is None:
            raise RuntimeError("CRF is not trained; call fit() or load()")

    def predict(self, sentence: list[list[str]]) -> list[str]:
        """Viterbi-decode one sentence of feature lists."""
        self._require_trained()
        if not sentence:
            return []
        encoded = self._encode(sentence)
        scores = self._scores(encoded, self.emission)
        n_tokens, n_labels = scores.shape
        trans = self.transition[:n_labels]
        start = self.transition[n_labels]
        viterbi = np.zeros((n_tokens, n_labels))
        backptr = np.zeros((n_tokens, n_labels), dtype=np.int64)
        viterbi[0] = start + scores[0]
        for t in range(1, n_tokens):
            candidate = viterbi[t - 1][:, None] + trans
            backptr[t] = np.argmax(candidate, axis=0)
            viterbi[t] = candidate[backptr[t], np.arange(n_labels)] + scores[t]
        best = int(np.argmax(viterbi[-1]))
        path = [best]
        for t in range(n_tokens - 1, 0, -1):
            best = int(backptr[t, best])
            path.append(best)
        path.reverse()
        return [self.labels[i] for i in path]

    def predict_marginals(self, sentence: list[list[str]]) -> list[dict[str, float]]:
        """Posterior P(label | position) for every token."""
        self._require_trained()
        if not sentence:
            return []
        encoded = self._encode(sentence)
        scores = self._scores(encoded, self.emission)
        alpha, beta, log_z = self._forward_backward(scores, self.transition)
        marginals = np.exp(alpha + beta - log_z)
        return [
            {label: float(row[i]) for i, label in enumerate(self.labels)}
            for row in marginals
        ]

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialise the trained model to a JSON+NPZ pair."""
        self._require_trained()
        path = Path(path)
        np.savez_compressed(
            path.with_suffix(".npz"),
            emission=self.emission,
            transition=self.transition,
        )
        path.with_suffix(".json").write_text(
            json.dumps(
                {
                    "labels": self.labels,
                    "features": sorted(
                        self.feature_index, key=self.feature_index.get
                    ),
                    "l2": self.l2,
                }
            )
        )

    @classmethod
    def load(cls, path: str | Path) -> "LinearChainCRF":
        """Inverse of :meth:`save`."""
        path = Path(path)
        meta = json.loads(path.with_suffix(".json").read_text())
        arrays = np.load(path.with_suffix(".npz"))
        model = cls(l2=meta.get("l2", 0.1))
        model.labels = list(meta["labels"])
        model.label_index = {label: i for i, label in enumerate(model.labels)}
        model.feature_index = {name: i for i, name in enumerate(meta["features"])}
        model.emission = arrays["emission"]
        model.transition = arrays["transition"]
        return model


__all__ = ["LinearChainCRF"]
