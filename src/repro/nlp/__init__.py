"""AI/NLP extraction stack (paper section 2.4).

Everything the paper's extractors need, built from scratch for the
offline environment: IOC recognition and IOC-protected tokenization,
rule lemmatizer, POS tagger, PPMI-SVD word embeddings, data-programming
label synthesis, a linear-chain CRF for security-entity recognition,
and dependency-based relation extraction.
"""

from repro.nlp.baselines import GazetteerRecognizer, RegexRecognizer
from repro.nlp.crf import LinearChainCRF
from repro.nlp.depparse import Arc, ParsedSentence
from repro.nlp.depparse import parse as parse_dependencies
from repro.nlp.embeddings import WordEmbeddings
from repro.nlp.features import FeatureExtractor, word_shape
from repro.nlp.gazetteer import Gazetteer
from repro.nlp.ioc import IOCMatch, classify_ioc, find_iocs
from repro.nlp.labeling import (
    LabelModel,
    NamedLF,
    default_labeling_functions,
    synthesize_corpus,
)
from repro.nlp.lemma import lemmatize
from repro.nlp.metrics import (
    EntityEvaluation,
    PRF,
    evaluate_entities,
    evaluate_relations,
)
from repro.nlp.ner import EntityRecognizer, EntitySpan, decode_bio
from repro.nlp.pos import tag as pos_tag
from repro.nlp.relation import RelationExtractor, ioc_spans
from repro.nlp.tokenize import Sentence, Token, tokenize_sentences, tokenize_words

__all__ = [
    "Arc",
    "EntityEvaluation",
    "EntityRecognizer",
    "EntitySpan",
    "FeatureExtractor",
    "Gazetteer",
    "GazetteerRecognizer",
    "IOCMatch",
    "LabelModel",
    "LinearChainCRF",
    "NamedLF",
    "PRF",
    "ParsedSentence",
    "RegexRecognizer",
    "RelationExtractor",
    "Sentence",
    "Token",
    "WordEmbeddings",
    "classify_ioc",
    "decode_bio",
    "default_labeling_functions",
    "evaluate_entities",
    "evaluate_relations",
    "find_iocs",
    "ioc_spans",
    "lemmatize",
    "parse_dependencies",
    "pos_tag",
    "synthesize_corpus",
    "tokenize_sentences",
    "tokenize_words",
    "word_shape",
]
