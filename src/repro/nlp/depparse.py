"""Shallow dependency parsing for relation extraction.

The paper's relation pipeline ([17]) walks dependency paths between
entities to pick up the connecting verb.  Full statistical parsing is
out of reach offline, so this module builds the arcs that matter for
subject-verb-object extraction deterministically from POS patterns:

* ``nsubj``  -- the nominal head left of a verb within its clause;
* ``dobj``   -- the nominal head right of the verb before a clause
  boundary;
* ``pobj``   -- the nominal object of a preposition attached to the
  verb (labelled ``prep:<word>``);
* ``conj``   -- coordination between nominals ("A and B"), so objects
  distribute over conjunctions;
* passive subjects are marked ``nsubjpass`` and agents ``agent``
  ("X was dropped by Y").

Clause boundaries are other verbs and strong punctuation, which is
sufficient for the declarative prose of threat reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.nlp.pos import tag as pos_tag
from repro.nlp.tokenize import Token

_NOMINAL_TAGS = frozenset({"NN", "NNS", "NNP", "CD"})
_VERB_TAGS = frozenset({"VB", "VBZ", "VBD", "VBG", "VBN"})
_BOUNDARY_PUNCT = frozenset({",", ";", ":", ".", "!", "?"})


@dataclass(frozen=True)
class Arc:
    """One dependency arc: ``head`` and ``dep`` are token indices."""

    head: int
    dep: int
    label: str


@dataclass
class ParsedSentence:
    """Tokens, POS tags and dependency arcs of one sentence."""

    tokens: list[Token]
    tags: list[str]
    arcs: list[Arc]

    def arcs_from(self, head: int) -> list[Arc]:
        return [arc for arc in self.arcs if arc.head == head]

    def verbs(self) -> list[int]:
        return [i for i, t in enumerate(self.tags) if t in _VERB_TAGS]


def _is_nominal(tags: list[str], index: int) -> bool:
    return tags[index] in _NOMINAL_TAGS


def _nominal_head_left(tokens: Sequence[Token], tags: list[str], start: int) -> int | None:
    """Rightmost nominal to the left of ``start`` within the clause."""
    for i in range(start - 1, -1, -1):
        if tags[i] in _VERB_TAGS or tokens[i].text in _BOUNDARY_PUNCT:
            return None
        if _is_nominal(tags, i):
            return i
    return None


def _nominal_head_right(
    tokens: Sequence[Token], tags: list[str], start: int
) -> int | None:
    """Head of the first nominal group right of ``start``, clause-bounded.

    The head of an English NP is its last nominal token ('the lsass
    memory dump' -> 'dump'), so we scan to the end of the group.
    """
    i = start + 1
    n = len(tags)
    while i < n:
        if tags[i] in _VERB_TAGS or tokens[i].text in _BOUNDARY_PUNCT:
            return None
        if tags[i] == "IN" or tags[i] == "TO":
            return None
        if _is_nominal(tags, i):
            head = i
            while head + 1 < n and _is_nominal(tags, head + 1):
                head += 1
            return head
        i += 1
    return None


def parse(tokens: Sequence[Token], tags: list[str] | None = None) -> ParsedSentence:
    """Build the SVO-relevant dependency arcs of one sentence."""
    tokens = list(tokens)
    tags = tags if tags is not None else pos_tag(tokens)
    arcs: list[Arc] = []
    n = len(tokens)

    for v in range(n):
        if tags[v] not in _VERB_TAGS:
            continue
        lower = tokens[v].text.lower()
        if lower in ("is", "are", "was", "were", "be", "been", "being"):
            continue  # copulas handled via the passive pattern below

        passive = tags[v] in ("VBN", "VBD") and v >= 1 and tokens[v - 1].text.lower() in (
            "is",
            "are",
            "was",
            "were",
            "been",
            "being",
            "be",
        )

        subject = _nominal_head_left(tokens, tags, v - 1 if passive else v)
        if subject is not None:
            arcs.append(Arc(v, subject, "nsubjpass" if passive else "nsubj"))

        obj = _nominal_head_right(tokens, tags, v)
        if obj is not None:
            arcs.append(Arc(v, obj, "dobj"))

        # Prepositional attachments: verb (... NP)? IN NP
        i = v + 1
        hops = 0
        while i < n and hops < 8:
            if tokens[i].text in _BOUNDARY_PUNCT or tags[i] in _VERB_TAGS:
                break
            if tags[i] in ("IN", "TO"):
                pobj = _nominal_head_right(tokens, tags, i)
                if pobj is not None:
                    prep = tokens[i].text.lower()
                    label = "agent" if passive and prep == "by" else f"prep:{prep}"
                    arcs.append(Arc(v, pobj, label))
            i += 1
            hops += 1

    # Nominal coordination: N (, N)* and N  -> conj arcs from the first.
    i = 0
    while i < n:
        if _is_nominal(tags, i):
            j = i
            group_head = i
            while j + 1 < n:
                k = j + 1
                if tokens[k].text in (",",) and k + 1 < n and _is_nominal(tags, k + 1):
                    arcs.append(Arc(group_head, k + 1, "conj"))
                    j = k + 1
                elif tokens[k].text.lower() in ("and", "or") and k + 1 < n and _is_nominal(
                    tags, k + 1
                ):
                    arcs.append(Arc(group_head, k + 1, "conj"))
                    j = k + 1
                else:
                    break
            i = j + 1
        else:
            i += 1

    return ParsedSentence(tokens=tokens, tags=tags, arcs=arcs)


__all__ = ["Arc", "ParsedSentence", "parse"]
