"""Word embeddings from PPMI + truncated SVD.

The paper trains its CRF with word-embedding features [18].  Word2vec
is unavailable offline, so embeddings are produced the classical way:
a positive pointwise-mutual-information co-occurrence matrix factorised
by truncated SVD (Levy & Goldberg showed this approximates skip-gram
with negative sampling).  Dense vectors are also *discretised* into a
handful of sign-bucket strings so the CRF, a log-linear model over
indicator features, can consume them.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.linalg import svds


class WordEmbeddings:
    """Trainable PPMI-SVD word embeddings.

    Parameters
    ----------
    dim:
        Embedding dimensionality (bounded by vocabulary size).
    window:
        Symmetric co-occurrence window in tokens.
    min_count:
        Words rarer than this share a single out-of-vocabulary vector.
    """

    def __init__(self, dim: int = 32, window: int = 3, min_count: int = 2):
        self.dim = dim
        self.window = window
        self.min_count = min_count
        self.vocab: dict[str, int] = {}
        self.vectors: np.ndarray | None = None

    # -- training -----------------------------------------------------

    def train(self, sentences: list[list[str]]) -> "WordEmbeddings":
        """Fit on tokenized sentences (tokens are lower-cased)."""
        counts: dict[str, int] = {}
        for sentence in sentences:
            for word in sentence:
                word = word.lower()
                counts[word] = counts.get(word, 0) + 1
        self.vocab = {
            word: index
            for index, word in enumerate(
                sorted(w for w, c in counts.items() if c >= self.min_count)
            )
        }
        size = len(self.vocab)
        if size < 2:
            self.vectors = np.zeros((max(size, 1), 1))
            return self

        pair_counts: dict[tuple[int, int], float] = {}
        for sentence in sentences:
            ids = [self.vocab.get(word.lower(), -1) for word in sentence]
            for i, center in enumerate(ids):
                if center < 0:
                    continue
                lo = max(0, i - self.window)
                hi = min(len(ids), i + self.window + 1)
                for j in range(lo, hi):
                    context = ids[j]
                    if j == i or context < 0:
                        continue
                    key = (center, context)
                    pair_counts[key] = pair_counts.get(key, 0.0) + 1.0

        rows = np.fromiter((k[0] for k in pair_counts), dtype=np.int64)
        cols = np.fromiter((k[1] for k in pair_counts), dtype=np.int64)
        values = np.fromiter(pair_counts.values(), dtype=np.float64)

        total = values.sum()
        cooc = csr_matrix((values, (rows, cols)), shape=(size, size))
        row_sums = np.asarray(cooc.sum(axis=1)).ravel()
        col_sums = np.asarray(cooc.sum(axis=0)).ravel()

        # PPMI: max(0, log(p(w,c) / (p(w) p(c)))) on the sparse entries.
        pmi_values = np.log(
            (values * total)
            / (row_sums[rows] * col_sums[cols])
        )
        keep = pmi_values > 0
        ppmi = csr_matrix(
            (pmi_values[keep], (rows[keep], cols[keep])), shape=(size, size)
        )

        k = min(self.dim, size - 1)
        try:
            u, s, _vt = svds(ppmi, k=k)
        except Exception:
            dense = np.asarray(ppmi.todense())
            u_full, s_full, _ = np.linalg.svd(dense)
            u, s = u_full[:, :k], s_full[:k]
        order = np.argsort(-s)
        self.vectors = u[:, order] * np.sqrt(s[order])
        norms = np.linalg.norm(self.vectors, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        self.vectors = self.vectors / norms
        return self

    # -- lookup ---------------------------------------------------------

    def __contains__(self, word: str) -> bool:
        return word.lower() in self.vocab

    def vector(self, word: str) -> np.ndarray:
        """The word's vector; zero vector when out of vocabulary."""
        if self.vectors is None:
            raise RuntimeError("embeddings are not trained")
        index = self.vocab.get(word.lower())
        if index is None:
            return np.zeros(self.vectors.shape[1])
        return self.vectors[index]

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity in [-1, 1] (0 for OOV words)."""
        va, vb = self.vector(a), self.vector(b)
        denom = np.linalg.norm(va) * np.linalg.norm(vb)
        if denom == 0:
            return 0.0
        return float(np.dot(va, vb) / denom)

    def most_similar(self, word: str, topn: int = 5) -> list[tuple[str, float]]:
        """Nearest vocabulary words by cosine similarity."""
        if self.vectors is None:
            raise RuntimeError("embeddings are not trained")
        query = self.vector(word)
        if not np.any(query):
            return []
        scores = self.vectors @ query / (np.linalg.norm(query) + 1e-12)
        index_of = self.vocab.get(word.lower())
        order = np.argsort(-scores)
        words = {index: w for w, index in self.vocab.items()}
        result = []
        for index in order:
            if index == index_of:
                continue
            result.append((words[int(index)], float(scores[int(index)])))
            if len(result) >= topn:
                break
        return result

    def bucket_features(self, word: str, buckets: int = 8) -> list[str]:
        """Discrete sign-bucket features for CRF consumption.

        The first ``buckets`` dimensions are rendered as
        ``emb<i>=+``/``emb<i>=-`` indicators; OOV words get none, which
        itself is informative.
        """
        if self.vectors is None or word.lower() not in self.vocab:
            return []
        vec = self.vector(word)
        limit = min(buckets, len(vec))
        return [
            f"emb{i}={'+' if vec[i] >= 0 else '-'}" for i in range(limit)
        ]


__all__ = ["WordEmbeddings"]
