"""IOC recognition in raw text.

Regex recognisers for the paper's IOC types (file name, file path, IP,
URL, email, domain, registry keys, hashes) plus CVE identifiers.
Overlaps are resolved by precedence (a URL wins over the domain inside
it; an email wins over its domain; a file path wins over the file name
at its end) and, within a type, by leftmost-longest match.

These matches serve two masters: they become IOC entities directly
(the regex path), and they drive *IOC protection* during tokenization
(section 2.4) so the CRF sees them as single, well-formed tokens.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.ontology.entities import EntityType


@dataclass(frozen=True)
class IOCMatch:
    """One IOC span found in text."""

    start: int
    end: int
    text: str
    type: EntityType


_FILE_EXT = (
    r"(?:exe|dll|bat|ps1|vbs|js|scr|docm|docx|doc|xlsm|xls|pdf|lnk|hta|jar|"
    r"zip|rar|7z|tmp|sys|bin|dat|cmd|msi|iso|img)"
)

#: Recognisers in precedence order (earlier wins on overlap).
_PATTERNS: tuple[tuple[EntityType, re.Pattern[str]], ...] = (
    (
        EntityType.URL,
        re.compile(r"\bhttps?://[^\s\"'<>()]+[^\s\"'<>().,;:!?]"),
    ),
    (
        EntityType.EMAIL,
        re.compile(
            r"\b[a-zA-Z0-9][a-zA-Z0-9._%+-]*@[a-zA-Z0-9.-]+\.[a-zA-Z]{2,}\b"
        ),
    ),
    # Intermediate path/registry segments may contain spaces ("Program
    # Files", "Windows NT") because the trailing backslash bounds them;
    # the final segment may not, or it would swallow the sentence.
    (
        EntityType.REGISTRY,
        re.compile(
            r"\b(?:HKLM|HKCU|HKCR|HKU|HKEY_[A-Z_]+)\\(?:[\w.-]+(?: [\w.-]+)?\\)*[\w.-]+",
            re.IGNORECASE,
        ),
    ),
    (
        EntityType.FILE_PATH,
        re.compile(
            r"\b[A-Za-z]:\\(?:[\w.-]+(?: [\w.-]+)?\\)*[\w.-]+"
            r"|(?:/(?:usr|etc|var|tmp|opt|home|bin)/[^\s\"'<>]+)"
        ),
    ),
    (
        EntityType.IP,
        re.compile(
            r"\b(?:(?:25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)\.){3}"
            r"(?:25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)\b"
        ),
    ),
    (
        EntityType.HASH,
        re.compile(r"\b[a-fA-F0-9]{64}\b|\b[a-fA-F0-9]{40}\b|\b[a-fA-F0-9]{32}\b"),
    ),
    (
        EntityType.VULNERABILITY,
        re.compile(r"\bCVE-\d{4}-\d{4,7}\b", re.IGNORECASE),
    ),
    (
        EntityType.FILE_NAME,
        re.compile(r"\b[\w][\w.-]{0,60}\." + _FILE_EXT + r"\b"),
    ),
    (
        EntityType.DOMAIN,
        re.compile(
            r"\b(?:[a-z0-9](?:[a-z0-9-]{0,61}[a-z0-9])?\.)+"
            r"(?:com|net|org|info|biz|xyz|top|cc|io|ru|cn|onion|example)\b",
            re.IGNORECASE,
        ),
    ),
)

#: IOC types whose recogniser is a single regex (exported for reuse).
IOC_PATTERNS: dict[EntityType, re.Pattern[str]] = {
    kind: pattern for kind, pattern in _PATTERNS
}


def find_iocs(text: str) -> list[IOCMatch]:
    """All IOC spans in ``text``, non-overlapping, in document order.

    Precedence order of ``IOC_PATTERNS`` resolves containment (URL over
    domain, path over file name); among same-type candidates the
    leftmost-longest match survives.
    """
    taken: list[tuple[int, int]] = []
    matches: list[IOCMatch] = []
    for kind, pattern in _PATTERNS:
        for match in pattern.finditer(text):
            start, end = match.start(), match.end()
            # Greedy path/registry/URL patterns may swallow trailing
            # sentence punctuation; give it back to the tokenizer.
            value = text[start:end].rstrip(".,;:!?'\")")
            end = start + len(value)
            if not value:
                continue
            if any(start < t_end and end > t_start for t_start, t_end in taken):
                continue
            taken.append((start, end))
            matches.append(IOCMatch(start=start, end=end, text=value, type=kind))
    matches.sort(key=lambda m: m.start)
    return matches


def classify_ioc(value: str) -> EntityType | None:
    """The IOC type of a bare string, or ``None`` if it matches nothing.

    Used by parsers when a structured field supplies an IOC without a
    kind label.
    """
    for kind, pattern in _PATTERNS:
        match = pattern.fullmatch(value.strip())
        if match:
            return kind
    return None


__all__ = ["IOCMatch", "IOC_PATTERNS", "classify_ioc", "find_iocs"]
