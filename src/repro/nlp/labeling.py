"""Data programming: programmatic training-set synthesis.

Manually annotating enough OSCTI sentences to train a CRF is
prohibitively expensive; the paper instead synthesises annotations
with data programming [11].  This module implements the approach:

* **Labeling functions** (LFs) propose entity spans: gazetteer lookups
  over the curated lists, contextual cue patterns ("the X ransomware",
  "threat actor X"), and a CVE shape rule.  LFs are noisy and partial;
  they may conflict.
* A **label model** reconciles LF votes.  Per-LF accuracies are
  estimated without gold labels by agreement with the weighted
  majority (an EM-style fixed point, the spirit of Snorkel's
  generative model), and tokens are labelled by accuracy-weighted
  vote when confidence clears a margin; otherwise they stay ``O``.

The output is a BIO-labelled corpus ready for CRF training.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.nlp.gazetteer import Gazetteer
from repro.nlp.pos import is_verb_like
from repro.nlp.tokenize import Token
from repro.ontology.entities import CRF_ENTITY_TYPES, EntityType

#: A span proposal: (start_token, end_token, entity_type).
Proposal = tuple[int, int, EntityType]

#: A labeling function maps a token sequence to span proposals.
LabelingFunction = Callable[[Sequence[Token]], list[Proposal]]


@dataclass
class NamedLF:
    """A labeling function with an identity (for accuracy bookkeeping)."""

    name: str
    fn: LabelingFunction

    def __call__(self, tokens: Sequence[Token]) -> list[Proposal]:
        return self.fn(tokens)


# ---------------------------------------------------------------------------
# labeling functions


def make_gazetteer_lf(gazetteer: Gazetteer, entity_type: EntityType) -> NamedLF:
    """LF: spans matching the curated list of one entity type."""

    def lf(tokens: Sequence[Token]) -> list[Proposal]:
        words = [token.text for token in tokens]
        return [
            (start, end, matched_type)
            for start, end, matched_type in gazetteer.match(words)
            if matched_type == entity_type
        ]

    return NamedLF(name=f"gazetteer:{entity_type.value}", fn=lf)


_MALWARE_CUES_AFTER = frozenset(
    {"ransomware", "trojan", "malware", "worm", "backdoor", "stealer", "loader",
     "implant", "botnet", "rat", "wiper", "dropper"}
)
_ACTOR_INTROS = (
    ("threat", "actor"),
    ("intrusion", "set"),
    ("group", "known", "as"),
    ("attributed", "to"),
    ("the", "actor"),
    ("actor",),
)
_STOPWORDS = frozenset(
    "the a an this that these those its his her their of and or to in on at "
    "by for with from as is are was were be been new known malicious based "
    "infrastructure using against during".split()
)
_NAME_RE = re.compile(r"^[a-z][a-z0-9-]*$", re.IGNORECASE)


def _looks_like_name(token: Token) -> bool:
    return (
        not token.is_ioc
        and token.text.lower() not in _STOPWORDS
        and not is_verb_like(token.text)
        and bool(_NAME_RE.match(token.text))
    )


def _extend_name(tokens: Sequence[Token], start: int, max_len: int = 3) -> int:
    """Greedy right extension over plausible name tokens."""
    words = [token.text.lower() for token in tokens]
    end = start
    while (
        end < len(tokens)
        and end - start < max_len
        and _looks_like_name(tokens[end])
        and words[end] not in _STOPWORDS
    ):
        end += 1
    return end


def cue_malware_lf(tokens: Sequence[Token]) -> list[Proposal]:
    """LF: '<name> ransomware/trojan/...' and 'operators behind <name>'."""
    proposals: list[Proposal] = []
    words = [token.text.lower() for token in tokens]
    for i, token in enumerate(tokens[:-1]):
        if words[i + 1] in _MALWARE_CUES_AFTER and _looks_like_name(token):
            start = i
            if i >= 1 and _looks_like_name(tokens[i - 1]):
                start = i - 1
            proposals.append((start, i + 1, EntityType.MALWARE))
    for i in range(len(words) - 2):
        if words[i] == "operators" and words[i + 1] == "behind":
            end = _extend_name(tokens, i + 2, max_len=2)
            if end > i + 2:
                proposals.append((i + 2, end, EntityType.MALWARE))
    return proposals


def cue_actor_lf(tokens: Sequence[Token]) -> list[Proposal]:
    """LF: 'threat actor <name>', 'group known as <name>', etc."""
    words = [token.text.lower() for token in tokens]
    proposals: list[Proposal] = []
    for intro in _ACTOR_INTROS:
        size = len(intro)
        for i in range(len(words) - size):
            if tuple(words[i : i + size]) != intro:
                continue
            start = i + size
            end = _extend_name(tokens, start, max_len=3)
            if end > start:
                proposals.append((start, end, EntityType.THREAT_ACTOR))
    return proposals


def cue_technique_lf(tokens: Sequence[Token]) -> list[Proposal]:
    """LF: lowercase phrase after 'via' / 'using' is a technique."""
    words = [token.text.lower() for token in tokens]
    proposals: list[Proposal] = []
    for i, word in enumerate(words[:-1]):
        if word in ("via", "using"):
            end = _extend_name(tokens, i + 1, max_len=4)
            if end > i + 1 and not tokens[i + 1].is_ioc:
                proposals.append((i + 1, end, EntityType.TECHNIQUE))
    return proposals


_TOOL_VERBS = frozenset(
    {"executes", "executed", "leverages", "leveraged", "utilizes", "utilized"}
)


def cue_tool_lf(tokens: Sequence[Token]) -> list[Proposal]:
    """LF: object of execute/leverage/utilize verbs; '<name> artifacts'."""
    words = [token.text.lower() for token in tokens]
    proposals: list[Proposal] = []
    for i, word in enumerate(words[:-1]):
        if word in _TOOL_VERBS:
            end = _extend_name(tokens, i + 1, max_len=3)
            if end > i + 1:
                proposals.append((i + 1, end, EntityType.TOOL))
    for i in range(1, len(words)):
        if words[i] == "artifacts" and _looks_like_name(tokens[i - 1]):
            start = i - 1
            if i >= 2 and _looks_like_name(tokens[i - 2]):
                start = i - 2
            proposals.append((start, i, EntityType.TOOL))
    return proposals


_SOFTWARE_CUES_AFTER = frozenset(
    {
        "installations",
        "versions",
        "deployments",
        "hosts",
        "servers",
        "instances",
        "interfaces",
    }
)


def cue_software_lf(tokens: Sequence[Token]) -> list[Proposal]:
    """LF: '<name> installations/versions/...' and 'unpatched <name>'."""
    words = [token.text.lower() for token in tokens]
    proposals: list[Proposal] = []
    for i in range(1, len(words)):
        if words[i] in _SOFTWARE_CUES_AFTER:
            start = i
            while start > 0 and _looks_like_name(tokens[start - 1]) and i - start < 3:
                start -= 1
            if start < i:
                proposals.append((start, i, EntityType.SOFTWARE))
    for i, word in enumerate(words[:-1]):
        if word == "unpatched":
            end = _extend_name(tokens, i + 1, max_len=3)
            if end > i + 1:
                proposals.append((i + 1, end, EntityType.SOFTWARE))
    return proposals


def default_labeling_functions(gazetteer: Gazetteer | None = None) -> list[NamedLF]:
    """The standard LF set: per-type gazetteers + contextual cue patterns.

    CVE identifiers are deliberately absent: IOC-protected tokenization
    already types them via the regex path, so the CRF never needs to
    label them (labeling them twice would double-count mentions).
    """
    gazetteer = gazetteer or Gazetteer.load_default()
    lfs = [
        make_gazetteer_lf(gazetteer, entity_type)
        for entity_type in CRF_ENTITY_TYPES
        if gazetteer.entries.get(entity_type)
    ]
    lfs.append(NamedLF("cue:malware", cue_malware_lf))
    lfs.append(NamedLF("cue:actor", cue_actor_lf))
    # NOTE: cue LFs for technique/tool/software exist (below) but are
    # not in the default set: their precision on free text is too low
    # and the label model cannot demote solo voters.  The default
    # regime instead trains on known-name corpora (full gazetteer
    # coverage) and relies on feature dropout for generalisation.
    return lfs


# ---------------------------------------------------------------------------
# label model


@dataclass
class LabelModelResult:
    """Per-sentence BIO labels plus diagnostics."""

    labels: list[list[str]]
    lf_accuracies: dict[str, float]
    coverage: float  # fraction of tokens with at least one vote


class LabelModel:
    """Accuracy-weighted reconciliation of labeling-function votes."""

    def __init__(self, iterations: int = 5, min_confidence: float = 0.6):
        self.iterations = iterations
        self.min_confidence = min_confidence

    def fit_predict(
        self,
        sentences: list[Sequence[Token]],
        lfs: list[NamedLF],
    ) -> LabelModelResult:
        """Estimate LF accuracies and emit BIO labels for every sentence."""
        # Collect votes: votes[s][i] = {lf_name: (span_id, type)}
        all_votes: list[list[dict[str, tuple[int, EntityType]]]] = []
        span_registry: list[list[dict[str, list[Proposal]]]] = []
        for sentence in sentences:
            token_votes: list[dict[str, tuple[int, EntityType]]] = [
                {} for _ in sentence
            ]
            proposals_by_lf: dict[str, list[Proposal]] = {}
            for lf in lfs:
                proposals = lf(sentence)
                proposals_by_lf[lf.name] = proposals
                for span_id, (start, end, entity_type) in enumerate(proposals):
                    for i in range(start, min(end, len(sentence))):
                        token_votes[i][lf.name] = (span_id, entity_type)
            all_votes.append(token_votes)
            span_registry.append([proposals_by_lf])

        accuracies = {lf.name: 0.7 for lf in lfs}
        for _ in range(self.iterations):
            agree = {lf.name: 1.0 for lf in lfs}
            total = {lf.name: 2.0 for lf in lfs}  # +2 smoothing
            for token_votes in all_votes:
                for votes in token_votes:
                    if not votes:
                        continue
                    consensus = self._weighted_majority(votes, accuracies)
                    if consensus is None:
                        continue
                    for lf_name, (_sid, entity_type) in votes.items():
                        total[lf_name] += 1.0
                        if entity_type == consensus:
                            agree[lf_name] += 1.0
            accuracies = {
                name: min(0.99, max(0.01, agree[name] / total[name]))
                for name in accuracies
            }

        labels: list[list[str]] = []
        voted_tokens = 0
        total_tokens = 0
        for sentence, token_votes in zip(sentences, all_votes):
            total_tokens += len(sentence)
            token_types: list[EntityType | None] = []
            for votes in token_votes:
                if votes:
                    voted_tokens += 1
                decided = self._confident_label(votes, accuracies)
                token_types.append(decided)
            labels.append(_to_bio(token_types))
        return LabelModelResult(
            labels=labels,
            lf_accuracies=accuracies,
            coverage=voted_tokens / total_tokens if total_tokens else 0.0,
        )

    @staticmethod
    def _weighted_majority(
        votes: dict[str, tuple[int, EntityType]],
        accuracies: dict[str, float],
    ) -> EntityType | None:
        scores: dict[EntityType, float] = {}
        for lf_name, (_sid, entity_type) in votes.items():
            acc = accuracies[lf_name]
            weight = math.log(acc / (1 - acc))
            scores[entity_type] = scores.get(entity_type, 0.0) + weight
        if not scores:
            return None
        return max(scores, key=scores.get)

    def _confident_label(
        self,
        votes: dict[str, tuple[int, EntityType]],
        accuracies: dict[str, float],
    ) -> EntityType | None:
        if not votes:
            return None
        scores: dict[EntityType, float] = {}
        for lf_name, (_sid, entity_type) in votes.items():
            acc = accuracies[lf_name]
            scores[entity_type] = scores.get(entity_type, 0.0) + math.log(
                acc / (1 - acc)
            )
        best = max(scores, key=scores.get)
        # Require the weighted vote mass to be net positive: a single
        # low-accuracy LF (weight < 0 once acc drops under 0.5) cannot
        # force a label on its own.
        return best if scores[best] > 0 else None


def _to_bio(token_types: list[EntityType | None]) -> list[str]:
    """Convert per-token types to BIO tags."""
    bio: list[str] = []
    previous: EntityType | None = None
    for entity_type in token_types:
        if entity_type is None:
            bio.append("O")
        elif entity_type == previous:
            bio.append(f"I-{entity_type.value}")
        else:
            bio.append(f"B-{entity_type.value}")
        previous = entity_type
    return bio


def synthesize_corpus(
    sentences: list[Sequence[Token]],
    lfs: list[NamedLF] | None = None,
    label_model: LabelModel | None = None,
) -> tuple[list[tuple[Sequence[Token], list[str]]], LabelModelResult]:
    """End-to-end data programming: sentences -> BIO training corpus."""
    lfs = lfs if lfs is not None else default_labeling_functions()
    label_model = label_model or LabelModel()
    result = label_model.fit_predict(sentences, lfs)
    corpus = list(zip(sentences, result.labels))
    return corpus, result


__all__ = [
    "LabelModel",
    "LabelModelResult",
    "NamedLF",
    "Proposal",
    "cue_actor_lf",
    "cue_malware_lf",
    "cue_software_lf",
    "cue_technique_lf",
    "cue_tool_lf",
    "default_labeling_functions",
    "make_gazetteer_lf",
    "synthesize_corpus",
]
