"""Tokenization and sentence segmentation with IOC protection.

Generic NLP tokenizers shred IOCs: ``update-relay3.xyz`` becomes four
tokens, an IP becomes seven, and sentence splitters break at every dot
inside a URL.  The paper's *IOC protection* (section 2.4, from [17])
replaces each IOC with an innocuous placeholder word before running
the standard pipeline and restores it afterwards, guaranteeing that
"the potential entities are complete tokens".

:func:`tokenize_sentences` implements exactly that: find IOCs, swap in
placeholders, segment and tokenize the protected text, then map the
placeholder tokens back to the original IOC strings (and their
character offsets in the *original* text).  Setting
``protect_iocs=False`` reproduces the naive behaviour -- the ablation
benchmark (E6) measures how much that costs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.nlp.ioc import IOCMatch, find_iocs
from repro.ontology.entities import EntityType

#: Placeholder stem; index is appended so placeholders stay unique.
_PLACEHOLDER_STEM = "iocshield"

_PLACEHOLDER_RE = re.compile(rf"{_PLACEHOLDER_STEM}(\d+)")

_ABBREVIATIONS = frozenset(
    {"e.g", "i.e", "etc", "vs", "dr", "mr", "ms", "inc", "ltd", "corp", "no", "fig"}
)

_WORD_RE = re.compile(
    rf"{_PLACEHOLDER_STEM}\d+"  # placeholders survive as single tokens
    # words, alphanumeric names (rundll32, f5) and hyphenated compounds
    # (pan-os) stay single tokens; contractions keep their apostrophe
    r"|[A-Za-z0-9]+(?:[-'][A-Za-z0-9]+)*"
    r"|[^\sA-Za-z0-9]"  # any single punctuation mark
)


@dataclass
class Token:
    """One token with offsets into the original text."""

    text: str
    start: int
    end: int
    ioc_type: EntityType | None = None

    @property
    def is_ioc(self) -> bool:
        return self.ioc_type is not None


@dataclass
class Sentence:
    """One sentence: its original span and its tokens."""

    text: str
    start: int
    end: int
    tokens: list[Token] = field(default_factory=list)


def _protect(text: str) -> tuple[str, dict[str, IOCMatch], list[tuple[int, int]]]:
    """Replace IOC spans with placeholder words.

    Returns the protected text, placeholder -> original match, and a
    piecewise offset map ``[(protected_pos, original_pos), ...]`` for
    translating protected offsets back to original ones.
    """
    matches = find_iocs(text)
    placeholders: dict[str, IOCMatch] = {}
    pieces: list[str] = []
    offset_map: list[tuple[int, int]] = [(0, 0)]
    cursor = 0
    out_len = 0
    for index, match in enumerate(matches):
        literal = text[cursor : match.start]
        pieces.append(literal)
        out_len += len(literal)
        placeholder = f"{_PLACEHOLDER_STEM}{index}"
        placeholders[placeholder] = match
        pieces.append(placeholder)
        offset_map.append((out_len, match.start))
        out_len += len(placeholder)
        offset_map.append((out_len, match.end))
        cursor = match.end
    pieces.append(text[cursor:])
    return "".join(pieces), placeholders, offset_map


def _to_original(offset_map: list[tuple[int, int]], pos: int) -> int:
    """Translate a protected-text offset to an original-text offset."""
    base_protected, base_original = 0, 0
    for protected, original in offset_map:
        if protected > pos:
            break
        base_protected, base_original = protected, original
    return base_original + (pos - base_protected)


def _split_sentences(text: str) -> list[tuple[int, int]]:
    """Sentence spans over (protected) text.

    A sentence ends at ``. ! ?`` followed by whitespace and an
    upper-case letter or digit, unless the dot terminates a known
    abbreviation.
    """
    spans: list[tuple[int, int]] = []
    start = 0
    i = 0
    length = len(text)
    while i < length:
        char = text[i]
        if char in ".!?":
            j = i + 1
            while j < length and text[j] in ".!?\"')":
                j += 1
            if j >= length:
                spans.append((start, j))
                start = j
                i = j
                continue
            if text[j].isspace():
                k = j
                while k < length and text[k].isspace():
                    k += 1
                next_char = text[k] if k < length else ""
                word_before = re.search(r"[\w.]+$", text[start:i])
                is_abbrev = bool(
                    word_before
                    and word_before.group(0).rstrip(".").lower() in _ABBREVIATIONS
                )
                if (next_char.isupper() or next_char.isdigit()) and not is_abbrev:
                    spans.append((start, j))
                    start = k
                    i = k
                    continue
        i += 1
    if start < length and text[start:].strip():
        spans.append((start, length))
    return spans


def tokenize_sentences(text: str, protect_iocs: bool = True) -> list[Sentence]:
    """Segment and tokenize ``text``.

    With ``protect_iocs=True`` (the paper's method) each IOC surfaces
    as exactly one token whose ``text`` is the original IOC string and
    whose ``ioc_type`` is set.  With ``protect_iocs=False`` the raw
    text goes straight through the generic pipeline, shredding IOCs --
    kept for the E6 ablation and for measuring the failure the paper
    describes.
    """
    if protect_iocs:
        protected, placeholders, offset_map = _protect(text)
    else:
        protected, placeholders, offset_map = text, {}, [(0, 0)]

    sentences: list[Sentence] = []
    for span_start, span_end in _split_sentences(protected):
        chunk = protected[span_start:span_end]
        tokens: list[Token] = []
        for match in _WORD_RE.finditer(chunk):
            token_text = match.group(0)
            protected_start = span_start + match.start()
            original_start = _to_original(offset_map, protected_start)
            ph = _PLACEHOLDER_RE.fullmatch(token_text)
            if ph and token_text in placeholders:
                ioc = placeholders[token_text]
                tokens.append(
                    Token(
                        text=ioc.text,
                        start=ioc.start,
                        end=ioc.end,
                        ioc_type=ioc.type,
                    )
                )
            else:
                tokens.append(
                    Token(
                        text=token_text,
                        start=original_start,
                        end=original_start + len(token_text),
                    )
                )
        if not tokens:
            continue
        original_span_start = _to_original(offset_map, span_start)
        original_span_end = _to_original(offset_map, span_end)
        sentences.append(
            Sentence(
                text=text[original_span_start:original_span_end],
                start=original_span_start,
                end=original_span_end,
                tokens=tokens,
            )
        )
    return sentences


def tokenize_words(text: str, protect_iocs: bool = True) -> list[Token]:
    """All tokens of ``text`` regardless of sentence boundaries."""
    return [
        token
        for sentence in tokenize_sentences(text, protect_iocs=protect_iocs)
        for token in sentence.tokens
    ]


__all__ = ["Sentence", "Token", "tokenize_sentences", "tokenize_words"]
