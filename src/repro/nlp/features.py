"""CRF feature extraction.

Feature templates follow the paper (section 2.4): word lemmas, POS
tags and word embeddings, plus the standard shape/affix/context
templates and gazetteer-membership indicators.  Features are string
names; the CRF maps them to indices internally.

Gazetteer membership enters as a *feature*, not a decision -- that is
what lets the CRF recognise names absent from the curated lists by
leaning on lemma/POS/context evidence instead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Sequence

from repro.nlp.embeddings import WordEmbeddings
from repro.nlp.gazetteer import Gazetteer
from repro.nlp.lemma import lemmatize
from repro.nlp.pos import tag as pos_tag
from repro.nlp.tokenize import Token

_DIGIT_RE = re.compile(r"\d")


def word_shape(word: str) -> str:
    """Compressed orthographic shape: 'WannaCry' -> 'XxXx', '10.0' -> 'd.d'."""
    out: list[str] = []
    for char in word[:12]:
        if char.isupper():
            symbol = "X"
        elif char.islower():
            symbol = "x"
        elif char.isdigit():
            symbol = "d"
        else:
            symbol = char
        if not out or out[-1] != symbol:
            out.append(symbol)
    return "".join(out)


@dataclass
class FeatureExtractor:
    """Turns a tokenized sentence into per-token feature-name lists.

    Parameters
    ----------
    gazetteer:
        Optional curated lists for membership indicator features.
    embeddings:
        Optional trained embeddings for sign-bucket features.
    window:
        Context window size for neighbouring word/POS features.
    """

    gazetteer: Gazetteer | None = None
    embeddings: WordEmbeddings | None = None
    window: int = 2
    embedding_buckets: int = 8
    _cache: dict = field(default_factory=dict, repr=False)

    def extract(self, tokens: Sequence[Token]) -> list[list[str]]:
        """Feature-name lists for every token of one sentence."""
        words = [token.text for token in tokens]
        tags = pos_tag(list(tokens))
        lemmas = [lemmatize(word) for word in words]
        gaz_types = self._gazetteer_types(words)

        features: list[list[str]] = []
        n = len(tokens)
        for i, token in enumerate(tokens):
            word = words[i]
            lower = word.lower()
            feats = [
                "bias",
                f"w={lower}",
                f"lemma={lemmas[i]}",
                f"pos={tags[i]}",
                f"shape={word_shape(word)}",
                f"pre2={lower[:2]}",
                f"pre3={lower[:3]}",
                f"suf2={lower[-2:]}",
                f"suf3={lower[-3:]}",
            ]
            if word[:1].isupper():
                feats.append("cap")
            if _DIGIT_RE.search(word):
                feats.append("hasdigit")
            if "-" in word:
                feats.append("hashyphen")
            if token.is_ioc:
                feats.append("ioc")
                feats.append(f"ioctype={token.ioc_type.value}")
            for gaz_type in gaz_types[i]:
                feats.append(f"gaz={gaz_type}")
            if self.embeddings is not None:
                feats.extend(
                    self.embeddings.bucket_features(lower, self.embedding_buckets)
                )
            for offset in range(1, self.window + 1):
                if i - offset >= 0:
                    feats.append(f"w[-{offset}]={words[i - offset].lower()}")
                    feats.append(f"pos[-{offset}]={tags[i - offset]}")
                else:
                    feats.append(f"w[-{offset}]=<s>")
                if i + offset < n:
                    feats.append(f"w[+{offset}]={words[i + offset].lower()}")
                    feats.append(f"pos[+{offset}]={tags[i + offset]}")
                else:
                    feats.append(f"w[+{offset}]=</s>")
            if i == 0:
                feats.append("bos")
            if i == n - 1:
                feats.append("eos")
            features.append(feats)
        return features

    def _gazetteer_types(self, words: list[str]) -> list[set[str]]:
        per_token: list[set[str]] = [set() for _ in words]
        if self.gazetteer is None:
            return per_token
        for start, end, entity_type in self.gazetteer.match(words):
            for i in range(start, min(end, len(words))):
                per_token[i].add(entity_type.value)
        return per_token


__all__ = ["FeatureExtractor", "word_shape"]
