"""Baseline entity recognisers.

The paper claims its CRF "can outperform a naive entity recognition
solution that relies on regex rules, and generalize to entities that
are not in the training set".  These two baselines make that claim
measurable (benchmark E4):

* :class:`RegexRecognizer` -- IOC regexes plus the CVE shape rule
  only; it cannot see concept entities at all.
* :class:`GazetteerRecognizer` -- regexes plus exact lookup in the
  curated lists; it nails listed names and misses everything else.
"""

from __future__ import annotations

from repro.nlp.gazetteer import Gazetteer
from repro.nlp.tokenize import Sentence, tokenize_sentences
from repro.ontology.intermediate import Mention


class RegexRecognizer:
    """IOC/CVE regex extraction only (the naive solution)."""

    def __init__(self, protect_iocs: bool = True):
        self.protect_iocs = protect_iocs

    def extract(self, text: str) -> tuple[list[Sentence], list[Mention]]:
        sentences = tokenize_sentences(text, protect_iocs=self.protect_iocs)
        mentions: list[Mention] = []
        for index, sentence in enumerate(sentences):
            for token in sentence.tokens:
                if token.is_ioc:
                    mentions.append(
                        Mention(
                            text=token.text,
                            type=token.ioc_type,
                            sentence_index=index,
                            start=token.start,
                            end=token.end,
                            method="regex",
                        )
                    )
        return sentences, mentions


class GazetteerRecognizer(RegexRecognizer):
    """Regexes + curated-list lookup (no generalisation)."""

    def __init__(self, gazetteer: Gazetteer | None = None, protect_iocs: bool = True):
        super().__init__(protect_iocs=protect_iocs)
        self.gazetteer = gazetteer or Gazetteer.load_default()

    def extract(self, text: str) -> tuple[list[Sentence], list[Mention]]:
        sentences, mentions = super().extract(text)
        for index, sentence in enumerate(sentences):
            words = [token.text for token in sentence.tokens]
            for start, end, entity_type in self.gazetteer.match(words):
                first = sentence.tokens[start]
                last = sentence.tokens[end - 1]
                mentions.append(
                    Mention(
                        text=" ".join(words[start:end]),
                        type=entity_type,
                        sentence_index=index,
                        start=first.start,
                        end=last.end,
                        method="gazetteer",
                    )
                )
        return sentences, mentions


__all__ = ["GazetteerRecognizer", "RegexRecognizer"]
