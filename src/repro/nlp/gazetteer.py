"""Curated entity-name gazetteers.

The paper constructs its labeling functions from curated lists of
threat actors, techniques and tools (from MITRE ATT&CK) plus malware
and software names.  The lists live as package data under
``repro/nlp/data`` and deliberately cover only *part* of the name
space -- extraction of names outside the lists is what the CRF's
generalisation benchmark measures.
"""

from __future__ import annotations

from importlib import resources

from repro.ontology.entities import EntityType

_FILES: dict[EntityType, str] = {
    EntityType.THREAT_ACTOR: "threat_actors.txt",
    EntityType.MALWARE: "malware.txt",
    EntityType.TECHNIQUE: "techniques.txt",
    EntityType.TOOL: "tools.txt",
    EntityType.SOFTWARE: "software.txt",
}


class Gazetteer:
    """Multi-token longest-match lookup over curated name lists."""

    def __init__(self, entries: dict[EntityType, set[tuple[str, ...]]]):
        self.entries = entries
        self._max_len = max(
            (len(phrase) for phrases in entries.values() for phrase in phrases),
            default=1,
        )
        # first token -> [(phrase, type)] for cheap candidate lookup
        self._by_first: dict[str, list[tuple[tuple[str, ...], EntityType]]] = {}
        for entity_type, phrases in entries.items():
            for phrase in phrases:
                self._by_first.setdefault(phrase[0], []).append((phrase, entity_type))

    @classmethod
    def load_default(cls) -> "Gazetteer":
        """Load the package's curated lists."""
        entries: dict[EntityType, set[tuple[str, ...]]] = {}
        package = resources.files("repro.nlp") / "data"
        for entity_type, filename in _FILES.items():
            text = (package / filename).read_text()
            entries[entity_type] = {
                tuple(line.lower().split())
                for line in text.splitlines()
                if line.strip()
            }
        return cls(entries)

    @classmethod
    def from_lists(cls, lists: dict[EntityType, list[str]]) -> "Gazetteer":
        """Build from in-memory name lists (tests, custom deployments)."""
        return cls(
            {
                entity_type: {tuple(name.lower().split()) for name in names}
                for entity_type, names in lists.items()
            }
        )

    def match(self, words: list[str]) -> list[tuple[int, int, EntityType]]:
        """Longest non-overlapping matches over a token sequence.

        Returns ``(start, end, type)`` token spans, scanning left to
        right and preferring the longest phrase at each position.
        """
        lowered = [word.lower() for word in words]
        matches: list[tuple[int, int, EntityType]] = []
        i = 0
        while i < len(lowered):
            candidates = self._by_first.get(lowered[i], ())
            best: tuple[int, EntityType] | None = None
            for phrase, entity_type in candidates:
                end = i + len(phrase)
                if end <= len(lowered) and tuple(lowered[i:end]) == phrase:
                    if best is None or len(phrase) > best[0]:
                        best = (len(phrase), entity_type)
            if best is not None:
                matches.append((i, i + best[0], best[1]))
                i += best[0]
            else:
                i += 1
        return matches

    def contains(self, name: str, entity_type: EntityType) -> bool:
        """Whether a full name is listed under a type."""
        return tuple(name.lower().split()) in self.entries.get(entity_type, set())

    def types_of(self, words: list[str], index: int) -> set[EntityType]:
        """Entity types of any phrase covering token ``index`` (feature use)."""
        found: set[EntityType] = set()
        for start, end, entity_type in self.match(words):
            if start <= index < end:
                found.add(entity_type)
        return found


__all__ = ["Gazetteer"]
