"""Cost-based lowering of MATCH queries into physical operator plans.

The planner turns an analyzed :class:`~repro.graphdb.cypher.ast.MatchQuery`
into a tree of the resumable operators in
:mod:`repro.graphdb.cypher.iterators`:

* **Access-path selection** -- each path pattern is anchored at its
  cheapest node pattern under store-backed cardinality estimates:
  a (label, key, value) index bucket beats a label scan beats a full
  scan, and a variable already bound by an earlier path is free.
* **Join reordering** -- path patterns execute connected-first and
  cheapest-first rather than in query order (results are re-ordered by
  ORDER BY or treated as multisets, matching Cypher's unordered
  semantics).
* **Filter pushdown** -- WHERE splits into conjuncts, each evaluated at
  the earliest operator where all its variables are bound.
* **Limit pushdown** -- the lazy pull pipeline stops producing once
  LIMIT is satisfied, so upstream scans never run to completion.

``EXPLAIN <query>`` surfaces :meth:`PhysicalPlan.explain_lines`; the
plan :meth:`~PhysicalPlan.signature` (structure only, estimates
excluded) is embedded in pagination continuations so a token minted
against one plan shape is rejected instead of silently resuming a
different one.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.graphdb.cypher import ast
from repro.graphdb.cypher.executor import CypherRuntimeError, _contains_count
from repro.graphdb.cypher.iterators import (
    AggregateOp,
    DistinctOp,
    ExecutionContext,
    ExpandOp,
    ExpandVarOp,
    FilterOp,
    LimitOp,
    OrderByOp,
    PreemptableIterator,
    ProfiledOp,
    ProjectOp,
    ScanOp,
    SingletonOp,
    SkipOp,
)
from repro.graphdb.store import INDEXED_PROPERTIES, PropertyGraph


# -- rendering ---------------------------------------------------------------


def render_expr(expr: ast.Expr) -> str:
    """Compact source-like rendering for EXPLAIN output."""
    if isinstance(expr, ast.Literal):
        return repr(expr.value)
    if isinstance(expr, ast.ListLiteral):
        return "[" + ", ".join(render_expr(item) for item in expr.items) + "]"
    if isinstance(expr, ast.Variable):
        return expr.name
    if isinstance(expr, ast.Property):
        return f"{expr.variable}.{expr.key}"
    if isinstance(expr, ast.Compare):
        if expr.right is None:
            return f"{render_expr(expr.left)} {expr.op}"
        return f"{render_expr(expr.left)} {expr.op} {render_expr(expr.right)}"
    if isinstance(expr, ast.And):
        return f"({render_expr(expr.left)} AND {render_expr(expr.right)})"
    if isinstance(expr, ast.Or):
        return f"({render_expr(expr.left)} OR {render_expr(expr.right)})"
    if isinstance(expr, ast.Not):
        return f"NOT ({render_expr(expr.operand)})"
    if isinstance(expr, ast.Count):
        inner = "*" if expr.operand is None else render_expr(expr.operand)
        return f"count({'DISTINCT ' if expr.distinct else ''}{inner})"
    if isinstance(expr, ast.Collect):
        return (
            f"collect({'DISTINCT ' if expr.distinct else ''}"
            f"{render_expr(expr.operand)})"
        )
    if isinstance(expr, ast.NumAgg):
        return (
            f"{expr.func}({'DISTINCT ' if expr.distinct else ''}"
            f"{render_expr(expr.operand)})"
        )
    return repr(expr)


def _render_node(pattern: ast.NodePattern) -> str:
    var = pattern.variable or ""
    label = f":{pattern.label}" if pattern.label else ""
    props = ""
    if pattern.properties:
        inner = ", ".join(f"{k}: {v!r}" for k, v in pattern.properties)
        props = " {" + inner + "}"
    return f"({var}{label}{props})"


def _render_rel(rel: ast.RelPattern, forward: bool) -> str:
    rtype = f":{rel.rel_type}" if rel.rel_type else ""
    hops = ""
    if rel.is_variable_length:
        hops = f"*{rel.min_hops}..{rel.max_hops}"
    body = f"-[{rel.variable or ''}{rtype}{hops}]-"
    direction = rel.direction
    if not forward:
        direction = {"out": "in", "in": "out"}.get(direction, "any")
    if direction == "out":
        return body + ">"
    if direction == "in":
        return "<" + body
    return body


# -- free variables ----------------------------------------------------------


def free_vars(expr: ast.Expr) -> set[str]:
    if isinstance(expr, ast.Variable):
        return {expr.name}
    if isinstance(expr, ast.Property):
        return {expr.variable}
    if isinstance(expr, ast.ListLiteral):
        out: set[str] = set()
        for item in expr.items:
            out |= free_vars(item)
        return out
    if isinstance(expr, (ast.And, ast.Or)):
        return free_vars(expr.left) | free_vars(expr.right)
    if isinstance(expr, ast.Not):
        return free_vars(expr.operand)
    if isinstance(expr, ast.Compare):
        out = free_vars(expr.left)
        if expr.right is not None:
            out |= free_vars(expr.right)
        return out
    if isinstance(expr, (ast.Count, ast.Collect, ast.NumAgg)):
        operand = expr.operand
        return free_vars(operand) if operand is not None else set()
    return set()


def _conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.And):
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


# -- plan nodes --------------------------------------------------------------


@dataclass
class PlanNode:
    """One physical operator: display info plus build parameters."""

    kind: str
    detail: str
    params: dict
    child: "PlanNode | None" = None
    estimate: float | None = None

    def line(self, with_estimate: bool = True) -> str:
        text = f"{self.kind} {self.detail}".rstrip()
        if with_estimate and self.estimate is not None:
            text += f"  (est {self.estimate:g} rows)"
        return text


@dataclass
class PhysicalPlan:
    """A built plan: explainable, hashable, instantiable."""

    root: PlanNode
    query: ast.MatchQuery = field(repr=False, default=None)

    def _nodes(self) -> list[PlanNode]:
        out: list[PlanNode] = []
        node: PlanNode | None = self.root
        while node is not None:
            out.append(node)
            node = node.child
        return out

    def explain_lines(self) -> list[str]:
        lines: list[str] = []
        for depth, node in enumerate(self._nodes()):
            lines.append("  " * depth + node.line())
        return lines

    def signature(self) -> str:
        """Structure-only fingerprint (estimates excluded): embedded in
        continuations so a token only resumes the plan it was minted
        against."""
        payload = "\n".join(
            node.line(with_estimate=False) for node in self._nodes()
        )
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    def build(
        self, graph: PropertyGraph, context: ExecutionContext
    ) -> PreemptableIterator:
        return self._build(self.root, graph, context, None)

    def build_profiled(
        self, graph: PropertyGraph, context: ExecutionContext
    ) -> tuple[PreemptableIterator, list[ProfiledOp]]:
        """Instantiate with every operator wrapped in a
        :class:`~repro.graphdb.cypher.iterators.ProfiledOp`.

        Returns the (wrapped) root and the wrappers in root-first
        order, aligned with :meth:`explain_lines`, so the PROFILE
        renderer can zip plan lines with runtime counters.
        """
        profilers: list[ProfiledOp] = []
        root = self._build(self.root, graph, context, profilers)
        profilers.reverse()  # built child-first; report root-first
        return root, profilers

    def _build(
        self,
        node: PlanNode,
        graph: PropertyGraph,
        context: ExecutionContext,
        profilers: "list[ProfiledOp] | None",
    ) -> PreemptableIterator:
        child = (
            self._build(node.child, graph, context, profilers)
            if node.child is not None
            else None
        )
        op = self._instantiate(node, graph, context, child)
        if profilers is None:
            return op
        wrapped = ProfiledOp(op, context, node.kind, node.detail)
        profilers.append(wrapped)
        return wrapped

    def _instantiate(
        self,
        node: PlanNode,
        graph: PropertyGraph,
        context: ExecutionContext,
        child: PreemptableIterator | None,
    ) -> PreemptableIterator:
        p = node.params
        if node.kind == "Init":
            return SingletonOp()
        if node.kind in ("IndexScan", "LabelScan", "AllNodesScan"):
            return ScanOp(
                graph, context, child, p["pattern"], p["variable"], p["source"]
            )
        if node.kind == "ExpandEdge":
            return ExpandOp(
                graph, context, child, p["source_var"], p["rel"],
                p["target"], p["target_var"], p["forward"],
            )
        if node.kind == "ExpandVar":
            return ExpandVarOp(
                graph, context, child, p["source_var"], p["rel"],
                p["target"], p["target_var"], p["forward"],
            )
        if node.kind == "Filter":
            return FilterOp(child, p["exprs"])
        if node.kind == "Project":
            return ProjectOp(child, p["returns"], p["order_exprs"])
        if node.kind == "Aggregate":
            return AggregateOp(
                graph, child, p["group_items"], p["agg_items"],
                p["order_exprs"],
            )
        if node.kind == "OrderBy":
            return OrderByOp(graph, child, p["ascending"])
        if node.kind == "Distinct":
            return DistinctOp(child)
        if node.kind == "Skip":
            return SkipOp(child, p["count"])
        if node.kind == "Limit":
            return LimitOp(child, p["count"])
        raise CypherRuntimeError(f"unknown plan operator {node.kind!r}")


# -- planning ----------------------------------------------------------------


def _pattern_vars(path: ast.PathPattern) -> set[str]:
    out: set[str] = set()
    for node in path.nodes:
        if node.variable:
            out.add(node.variable)
    for rel in path.rels:
        if rel.variable:
            out.add(rel.variable)
    return out


def _where_equalities(
    conjuncts: list[tuple[set[str], ast.Expr]],
) -> dict[str, list[tuple[str, object]]]:
    """var -> [(key, literal)] for sargable WHERE conjuncts.

    A top-level ``n.key = literal`` (either orientation) can be served
    by the same property index as an inline ``{key: literal}`` pattern;
    the conjunct still runs as a Filter, so the index is purely an
    access-path choice.
    """
    out: dict[str, list[tuple[str, object]]] = {}
    for _needs, conjunct in conjuncts:
        if not isinstance(conjunct, ast.Compare) or conjunct.op != "=":
            continue
        for prop, lit in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if (
                isinstance(prop, ast.Property)
                and isinstance(lit, ast.Literal)
                and isinstance(lit.value, (str, int, float, bool))
            ):
                out.setdefault(prop.variable, []).append((prop.key, lit.value))
    return out


def _anchor_cost(
    graph: PropertyGraph,
    pattern: ast.NodePattern,
    bound: set[str],
    extra_props: list[tuple[str, object]] = (),
) -> tuple[float, tuple]:
    """(estimated candidate rows, scan source) for one node pattern."""
    if pattern.variable and pattern.variable in bound:
        return 0.0, ("bound",)
    props = list(pattern.properties) + list(extra_props)
    if pattern.label and props:
        indexed = [
            (key, value)
            for key, value in props
            if key in INDEXED_PROPERTIES
            and isinstance(value, (str, int, float, bool))
        ]
        if indexed:
            key, value = min(
                indexed,
                key=lambda kv: graph.index_size(pattern.label, kv[0], kv[1]),
            )
            size = graph.index_size(pattern.label, key, value)
            return float(size), ("index", pattern.label, key, value)
        # unindexed property filter still narrows the label scan
        return (
            max(graph.label_count(pattern.label) * 0.5, 0.0),
            ("label", pattern.label),
        )
    if pattern.label:
        return float(graph.label_count(pattern.label)), ("label", pattern.label)
    if props:
        return max(graph.node_count * 0.5, 0.0), ("all",)
    return float(graph.node_count), ("all",)


def build_plan(query: ast.MatchQuery, graph: PropertyGraph) -> PhysicalPlan:
    """Lower a MATCH query into a physical plan against ``graph``."""
    # Hidden variables for anonymous pattern nodes, so expansion can
    # continue from them; '#'-prefixed names can never collide with
    # parsed variables and are stripped before projection.
    names: dict[tuple[int, int], str] = {}
    for p_index, path in enumerate(query.paths):
        for n_index, pattern in enumerate(path.nodes):
            names[(p_index, n_index)] = (
                pattern.variable or f"#p{p_index}n{n_index}"
            )

    conjuncts = [(free_vars(c), c) for c in _conjuncts(query.where)]
    equalities = _where_equalities(conjuncts)
    placed = [False] * len(conjuncts)
    bound: set[str] = set()
    chain: list[PlanNode] = [PlanNode("Init", "", {})]

    def flush_filters() -> None:
        ready = [
            c
            for index, (needs, c) in enumerate(conjuncts)
            if not placed[index] and needs <= bound
        ]
        if not ready:
            return
        for index, (needs, _c) in enumerate(conjuncts):
            if not placed[index] and needs <= bound:
                placed[index] = True
        detail = " AND ".join(render_expr(c) for c in ready)
        chain.append(PlanNode("Filter", detail, {"exprs": ready}))

    # join reordering: connected-first, then cheapest anchor
    remaining = list(range(len(query.paths)))
    order: list[int] = []
    planned_vars: set[str] = set()
    while remaining:
        connected = [
            i for i in remaining
            if planned_vars and _pattern_vars(query.paths[i]) & planned_vars
        ]
        candidates = connected or remaining
        best = min(
            candidates,
            key=lambda i: (
                min(
                    _anchor_cost(
                        graph,
                        pattern,
                        planned_vars,
                        equalities.get(pattern.variable or "", ()),
                    )[0]
                    for pattern in query.paths[i].nodes
                ),
                i,
            ),
        )
        order.append(best)
        remaining.remove(best)
        planned_vars |= _pattern_vars(query.paths[best])

    for p_index in order:
        path = query.paths[p_index]
        costs = [
            _anchor_cost(
                graph,
                pattern,
                bound,
                equalities.get(pattern.variable or "", ()),
            )
            for pattern in path.nodes
        ]
        anchor = min(range(len(path.nodes)), key=lambda i: (costs[i][0], i))
        cost, source = costs[anchor]
        pattern = path.nodes[anchor]
        variable = names[(p_index, anchor)]
        kind = {
            "index": "IndexScan",
            "label": "LabelScan",
        }.get(source[0], "AllNodesScan")
        if source[0] == "bound":
            kind, source = "LabelScan" if pattern.label else "AllNodesScan", (
                ("label", pattern.label) if pattern.label else ("all",)
            )
        chain.append(
            PlanNode(
                kind,
                _render_node(pattern),
                {"pattern": pattern, "variable": variable, "source": source},
                estimate=cost if cost else None,
            )
        )
        bound.add(variable)
        if pattern.variable:
            bound.add(pattern.variable)
        flush_filters()

        def expand_step(src: int, dst: int, rel: ast.RelPattern) -> None:
            forward = dst > src
            target = path.nodes[dst]
            target_var = names[(p_index, dst)]
            op_kind = "ExpandVar" if rel.is_variable_length else "ExpandEdge"
            src_name = names[(p_index, src)]
            detail = (
                f"({src_name if not src_name.startswith('#') else ''})"
                f"{_render_rel(rel, forward)}{_render_node(target)}"
            )
            chain.append(
                PlanNode(
                    op_kind,
                    detail,
                    {
                        "source_var": src_name,
                        "rel": rel,
                        "target": target,
                        "target_var": target_var,
                        "forward": forward,
                    },
                )
            )
            bound.add(target_var)
            if target.variable:
                bound.add(target.variable)
            if rel.variable and not rel.is_variable_length:
                bound.add(rel.variable)
            flush_filters()

        for index in range(anchor, len(path.nodes) - 1):
            expand_step(index, index + 1, path.rels[index])
        for index in range(anchor, 0, -1):
            expand_step(index, index - 1, path.rels[index - 1])

    # any conjunct left references unbound variables; evaluating it at
    # the top surfaces the same "unbound variable" error as eager mode
    residual = [c for index, (_needs, c) in enumerate(conjuncts)
                if not placed[index]]
    if residual:
        detail = " AND ".join(render_expr(c) for c in residual)
        chain.append(PlanNode("Filter", detail, {"exprs": residual}))

    order_exprs = [expr for expr, _asc in query.order_by]
    has_aggregate = any(
        _contains_count(item.expr) for item in query.returns
    )
    if has_aggregate:
        group_items = [
            i for i in query.returns if not _contains_count(i.expr)
        ]
        agg_items = [i for i in query.returns if _contains_count(i.expr)]
        for item in agg_items:
            if not isinstance(
                item.expr, (ast.Count, ast.Collect, ast.NumAgg)
            ):
                raise CypherRuntimeError(
                    f"unsupported aggregate expression: {item.expr}"
                )
        detail = ", ".join(
            f"{render_expr(i.expr)} AS {i.alias}" for i in query.returns
        )
        chain.append(
            PlanNode(
                "Aggregate",
                detail,
                {
                    "group_items": group_items,
                    "agg_items": agg_items,
                    "order_exprs": order_exprs,
                },
            )
        )
    else:
        detail = ", ".join(
            f"{render_expr(i.expr)} AS {i.alias}" for i in query.returns
        )
        chain.append(
            PlanNode(
                "Project",
                detail,
                {"returns": list(query.returns), "order_exprs": order_exprs},
            )
        )

    if query.order_by:
        detail = ", ".join(
            f"{render_expr(expr)} {'ASC' if asc else 'DESC'}"
            for expr, asc in query.order_by
        )
        chain.append(
            PlanNode(
                "OrderBy",
                detail,
                {"ascending": [asc for _e, asc in query.order_by]},
            )
        )
    if query.distinct:
        chain.append(PlanNode("Distinct", "", {}))
    if query.skip:
        chain.append(PlanNode("Skip", str(query.skip), {"count": query.skip}))
    if query.limit is not None:
        chain.append(
            PlanNode("Limit", str(query.limit), {"count": query.limit})
        )

    # chain is source-first; link into a root-first tree
    root = chain[-1]
    for index in range(len(chain) - 1, 0, -1):
        chain[index].child = chain[index - 1]
    return PhysicalPlan(root=root, query=query)


__all__ = [
    "PhysicalPlan",
    "PlanNode",
    "build_plan",
    "free_vars",
    "render_expr",
]
