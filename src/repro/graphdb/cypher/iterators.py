"""Resumable physical operators for preemptable Cypher execution.

The web-preemption model (SaGe): a query runs as a tree of pull-based
iterators, each of which can be suspended at any safe point and
serialised to a JSON-safe continuation dict.  The driver grants the
tree a time quantum on the injected :class:`~repro.runtime.clock.Clock`
(or a deterministic step budget in tests); when it expires the current
``next()`` raises :class:`QuantumExhausted`, the driver drains the
rows produced so far, and ``save()`` captures exactly where the scan
stood.  ``load()`` on a freshly-planned tree resumes without
re-delivering or skipping a row, so results are byte-identical whether
the query ran in one slice or fifty.

Safe-point discipline: operators call ``context.tick()`` *before*
consuming a candidate or advancing a cursor, never after, so a raise
leaves the operator positioned to re-attempt the same candidate on
resume.  Blocking operators (Aggregate, OrderBy) let the exception
propagate from their child between rows; their accumulators only ever
contain fully-consumed rows and are serialised alongside the cursors.

Operators exchange *bindings* dicts (variable -> Node/Edge/value);
the projection operators turn them into result-row dicts.  Anonymous
pattern nodes get planner-assigned hidden variables (``#``-prefixed)
so expansion can continue from them; hidden keys never appear in
result rows.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.graphdb.cypher import ast
from repro.graphdb.cypher.executor import (
    Bindings,
    CypherRuntimeError,
    ResultRow,
    _hashable,
    _sort_key,
    _truthy,
    bind_node,
    bind_rel,
    eval_expr,
    eval_projected,
    reduce_collect,
    reduce_count,
    reduce_numeric,
)
from repro.graphdb.store import Edge, Node, PropertyGraph
from repro.runtime.clock import Clock, REAL_CLOCK


class QuantumExhausted(Exception):
    """The current time slice is over; save() and resume later."""


@dataclass
class ExecutionContext:
    """Shared per-query execution state: the quantum and its clock.

    ``quantum`` seconds per slice on ``clock`` (``None`` = never
    preempt); ``steps_per_slice`` preempts after a fixed number of
    safe-point ticks instead, which is what the determinism tests use
    to slice a plan at every possible suspension point.  ``step_cost``
    charges virtual seconds per tick via ``clock.sleep`` so
    virtual-clock benchmarks model query CPU time deterministically.
    """

    clock: Clock = REAL_CLOCK
    quantum: float | None = None
    steps_per_slice: int | None = None
    step_cost: float = 0.0
    _deadline: float | None = field(default=None, repr=False)
    _steps: int = field(default=0, repr=False)

    def begin_slice(self) -> None:
        self._steps = 0
        self._deadline = (
            None if self.quantum is None else self.clock.now() + self.quantum
        )

    def tick(self) -> None:
        """One unit of work at a safe suspension point.

        Charges ``step_cost`` to the clock first (time advances even on
        the tick that suspends), then raises when the slice budget --
        steps or quantum -- is spent.
        """
        self._steps += 1
        if self.step_cost:
            self.clock.sleep(self.step_cost)
        if self.steps_per_slice is not None and self._steps > self.steps_per_slice:
            raise QuantumExhausted()
        if self._deadline is not None and self.clock.now() >= self._deadline:
            raise QuantumExhausted()


# -- continuation value encoding ---------------------------------------------


def encode_value(value: object) -> object:
    """Encode a bound value as JSON-safe data (graph refs by id)."""
    if isinstance(value, Node):
        return {"@n": value.node_id}
    if isinstance(value, Edge):
        return {"@e": value.edge_id}
    if isinstance(value, (list, tuple)):
        return {"@l": [encode_value(v) for v in value]}
    return value


def decode_value(graph: PropertyGraph, value: object) -> object:
    if isinstance(value, dict):
        if "@n" in value:
            return graph.node(value["@n"])
        if "@e" in value:
            return graph.edge(value["@e"])
        if "@l" in value:
            return [decode_value(graph, v) for v in value["@l"]]
    return value


def encode_bindings(bindings: Bindings | None) -> dict | None:
    if bindings is None:
        return None
    return {key: encode_value(value) for key, value in bindings.items()}


def decode_bindings(graph: PropertyGraph, data: dict | None) -> Bindings | None:
    if data is None:
        return None
    return {key: decode_value(graph, value) for key, value in data.items()}


def _freeze(value: object) -> object:
    """JSON list-trees back to the hashable tuples ``_hashable`` made."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value: object) -> object:
    """Hashable tuple-trees to JSON-safe nested lists."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


# -- operator protocol --------------------------------------------------------


class PreemptableIterator:
    """Pull-based operator: ``next()`` a row or ``None`` when done;
    ``save()``/``load()`` round-trip position as JSON-safe data."""

    def next(self) -> dict | None:  # pragma: no cover - interface
        raise NotImplementedError

    def save(self) -> dict:  # pragma: no cover - interface
        raise NotImplementedError

    def load(self, state: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SingletonOp(PreemptableIterator):
    """Emits one empty bindings row: the seed under the first scan."""

    def __init__(self) -> None:
        self._done = False

    def next(self) -> Bindings | None:
        if self._done:
            return None
        self._done = True
        return {}

    def save(self) -> dict:
        return {"done": self._done}

    def load(self, state: dict) -> None:
        self._done = bool(state["done"])


class ScanOp(PreemptableIterator):
    """Anchor scan: per input row, candidates for one node pattern.

    ``source`` picks the candidate id list -- ``("index", label, key,
    value)`` for an index bucket, ``("label", label)`` or ``("all",)``
    for scans.  Ids are consumed in ascending order and the
    continuation records the last id consumed, so a resume filters
    ``> last`` and is robust to inserts between slices.  When the
    pattern variable is already bound upstream the scan degrades to a
    consistency check.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        context: ExecutionContext,
        child: PreemptableIterator,
        pattern: ast.NodePattern,
        variable: str,
        source: tuple,
    ):
        self.graph = graph
        self.context = context
        self.child = child
        self.pattern = pattern
        self.variable = variable
        self.source = source
        self._input: Bindings | None = None
        self._after: int | None = None
        self._ids: list[int] | None = None
        self._pos = 0

    def _candidate_ids(self) -> list[int]:
        kind = self.source[0]
        if kind == "index":
            _, label, key, value = self.source
            return self.graph.index_lookup_ids(label, key, value)
        if kind == "label":
            return self.graph.node_ids(self.source[1])
        return self.graph.node_ids(None)

    def next(self) -> Bindings | None:
        while True:
            if self._input is None:
                parent = self.child.next()
                if parent is None:
                    return None
                self._input = parent
                self._after = None
                self._ids = None
                self._pos = 0
            bindings = self._input
            bound = bindings.get(self.variable)
            if isinstance(bound, Node):
                # variable joined from an earlier path: check, emit once
                self.context.tick()
                self._input = None
                out = dict(bindings)
                if bind_node(self.pattern, bound, out):
                    out[self.variable] = bound
                    return out
                continue
            if self._ids is None:
                self._ids = self._candidate_ids()
                self._pos = (
                    0
                    if self._after is None
                    else bisect.bisect_right(self._ids, self._after)
                )
            while self._pos < len(self._ids):
                self.context.tick()
                node_id = self._ids[self._pos]
                self._pos += 1
                self._after = node_id
                if not self.graph.has_node(node_id):
                    continue
                node = self.graph.node(node_id)
                out = dict(bindings)
                if bind_node(self.pattern, node, out):
                    out[self.variable] = node
                    return out
            self._input = None

    def save(self) -> dict:
        return {
            "child": self.child.save(),
            "input": encode_bindings(self._input),
            "after": self._after,
        }

    def load(self, state: dict) -> None:
        self.child.load(state["child"])
        self._input = decode_bindings(self.graph, state["input"])
        self._after = state["after"]
        self._ids = None
        self._pos = 0


def _adjacent(
    graph: PropertyGraph, node: Node, rel: ast.RelPattern, forward: bool
) -> list[tuple[Edge, Node]]:
    """Pattern-consistent single-hop neighbours, in stable edge order.

    Adjacency lists are append-only in the store, so the positional
    cursor an Expand continuation records stays valid across slices.
    """
    direction = rel.direction
    if not forward:
        direction = {"out": "in", "in": "out"}.get(direction, "any")
    result: list[tuple[Edge, Node]] = []
    if direction in ("out", "any"):
        for edge in graph.out_edges(node.node_id, rel.rel_type):
            result.append((edge, graph.node(edge.dst)))
    if direction in ("in", "any"):
        for edge in graph.in_edges(node.node_id, rel.rel_type):
            result.append((edge, graph.node(edge.src)))
    return result


class ExpandOp(PreemptableIterator):
    """Single-hop expansion from a bound node along a rel pattern."""

    def __init__(
        self,
        graph: PropertyGraph,
        context: ExecutionContext,
        child: PreemptableIterator,
        source_var: str,
        rel: ast.RelPattern,
        target: ast.NodePattern,
        target_var: str,
        forward: bool,
    ):
        self.graph = graph
        self.context = context
        self.child = child
        self.source_var = source_var
        self.rel = rel
        self.target = target
        self.target_var = target_var
        self.forward = forward
        self._input: Bindings | None = None
        self._neighbours: list[tuple[Edge, Node]] | None = None
        self._pos = 0

    def next(self) -> Bindings | None:
        while True:
            if self._input is None:
                parent = self.child.next()
                if parent is None:
                    return None
                self._input = parent
                self._neighbours = None
                self._pos = 0
            if self._neighbours is None:
                source = self._input[self.source_var]
                self._neighbours = _adjacent(
                    self.graph, source, self.rel, self.forward
                )
            neighbours = self._neighbours
            while self._pos < len(neighbours):
                self.context.tick()
                edge, neighbour = neighbours[self._pos]
                self._pos += 1
                out = dict(self._input)
                if not bind_node(self.target, neighbour, out):
                    continue
                if not bind_rel(self.rel, edge, out):
                    continue
                out[self.target_var] = neighbour
                return out
            self._input = None

    def save(self) -> dict:
        return {
            "child": self.child.save(),
            "input": encode_bindings(self._input),
            "pos": self._pos,
        }

    def load(self, state: dict) -> None:
        self.child.load(state["child"])
        self._input = decode_bindings(self.graph, state["input"])
        self._neighbours = None
        self._pos = state["pos"]


class ExpandVarOp(PreemptableIterator):
    """Variable-length expansion (``*m..n``) from a bound node.

    The BFS over node-distinct paths is recomputed per input row (it is
    deterministic given the adjacency lists); the continuation records
    only the emission position within its result.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        context: ExecutionContext,
        child: PreemptableIterator,
        source_var: str,
        rel: ast.RelPattern,
        target: ast.NodePattern,
        target_var: str,
        forward: bool,
    ):
        self.graph = graph
        self.context = context
        self.child = child
        self.source_var = source_var
        self.rel = rel
        self.target = target
        self.target_var = target_var
        self.forward = forward
        self._input: Bindings | None = None
        self._endpoints: list[Node] | None = None
        self._pos = 0

    def _reachable(self, node: Node) -> list[Node]:
        endpoints: list[Node] = []
        seen: set[int] = {node.node_id}
        frontier: list[Node] = [node]
        if self.rel.min_hops == 0:
            endpoints.append(node)
        for depth in range(1, self.rel.max_hops + 1):
            next_frontier: list[Node] = []
            for current in frontier:
                for _edge, neighbour in _adjacent(
                    self.graph, current, self.rel, self.forward
                ):
                    if neighbour.node_id in seen:
                        continue
                    seen.add(neighbour.node_id)
                    next_frontier.append(neighbour)
                    if depth >= self.rel.min_hops:
                        endpoints.append(neighbour)
            frontier = next_frontier
            if not frontier:
                break
        return endpoints

    def next(self) -> Bindings | None:
        while True:
            if self._input is None:
                # No tick of our own before pulling: the child ticks per
                # candidate, and a second tick here would deadlock a
                # one-step slice (two ticks needed, budget of one, no
                # durable progress in between).
                parent = self.child.next()
                if parent is None:
                    return None
                self._input = parent
                self._endpoints = None
                self._pos = 0
            if self._endpoints is None:
                # BFS cost is attributed to the per-emission ticks.
                self._endpoints = self._reachable(self._input[self.source_var])
            while self._pos < len(self._endpoints):
                self.context.tick()
                neighbour = self._endpoints[self._pos]
                self._pos += 1
                out = dict(self._input)
                if not bind_node(self.target, neighbour, out):
                    continue
                out[self.target_var] = neighbour
                return out
            self._input = None

    def save(self) -> dict:
        return {
            "child": self.child.save(),
            "input": encode_bindings(self._input),
            "pos": self._pos,
        }

    def load(self, state: dict) -> None:
        self.child.load(state["child"])
        self._input = decode_bindings(self.graph, state["input"])
        self._endpoints = None
        self._pos = state["pos"]


class FilterOp(PreemptableIterator):
    """WHERE conjuncts whose variables the child has already bound."""

    def __init__(self, child: PreemptableIterator, exprs: list[ast.Expr]):
        self.child = child
        self.exprs = exprs

    def next(self) -> Bindings | None:
        while True:
            bindings = self.child.next()
            if bindings is None:
                return None
            if all(_truthy(eval_expr(e, bindings)) for e in self.exprs):
                return bindings

    def save(self) -> dict:
        return {"child": self.child.save()}

    def load(self, state: dict) -> None:
        self.child.load(state["child"])


class ProjectOp(PreemptableIterator):
    """Non-aggregate RETURN projection, bindings -> row dict.

    ORDER BY expressions are evaluated here -- against the projected
    row first, falling back to the source bindings (eager semantics) --
    into hidden ``#oN`` keys that :class:`OrderByOp` sorts on and
    strips.
    """

    def __init__(
        self,
        child: PreemptableIterator,
        returns: list[ast.ReturnItem],
        order_exprs: list[ast.Expr],
    ):
        self.child = child
        self.returns = returns
        self.order_exprs = order_exprs

    def next(self) -> dict | None:
        bindings = self.child.next()
        if bindings is None:
            return None
        row = {
            item.alias: eval_expr(item.expr, bindings) for item in self.returns
        }
        for index, expr in enumerate(self.order_exprs):
            try:
                value = eval_projected(expr, ResultRow(row))
            except CypherRuntimeError:
                value = eval_expr(expr, bindings)
            row[f"#o{index}"] = value
        return row

    def save(self) -> dict:
        return {"child": self.child.save()}

    def load(self, state: dict) -> None:
        self.child.load(state["child"])


class AggregateOp(PreemptableIterator):
    """Grouping aggregation; blocking, with serialisable accumulators.

    Consume phase drains the child, accumulating per group the
    representative values of the group expressions and the raw operand
    values of each aggregate (so the shared ``reduce_*`` helpers give
    results value-identical to the eager path).  A quantum expiring
    mid-consume propagates from the child with the accumulators intact.
    Emit phase walks groups in first-seen order.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        child: PreemptableIterator,
        group_items: list[ast.ReturnItem],
        agg_items: list[ast.ReturnItem],
        order_exprs: list[ast.Expr],
    ):
        self.graph = graph
        self.child = child
        self.group_items = group_items
        self.agg_items = agg_items
        self.order_exprs = order_exprs
        self._groups: dict[tuple, dict] = {}
        self._consumed = False
        self._pos = 0

    def _accumulate(self, bindings: Bindings) -> None:
        reps = [eval_expr(item.expr, bindings) for item in self.group_items]
        key = tuple(_hashable(rep) for rep in reps)
        group = self._groups.get(key)
        if group is None:
            group = {"reps": reps, "vals": [[] for _ in self.agg_items], "n": 0}
            self._groups[key] = group
        group["n"] += 1
        for index, item in enumerate(self.agg_items):
            operand = getattr(item.expr, "operand", None)
            if operand is not None:
                group["vals"][index].append(eval_expr(operand, bindings))

    def _emit(self, group: dict) -> dict:
        row: dict[str, object] = {}
        for item, rep in zip(self.group_items, group["reps"]):
            row[item.alias] = rep
        for index, item in enumerate(self.agg_items):
            expr = item.expr
            values = group["vals"][index]
            if isinstance(expr, ast.Count):
                row[item.alias] = (
                    group["n"]
                    if expr.operand is None
                    else reduce_count(values, expr.distinct)
                )
            elif isinstance(expr, ast.Collect):
                row[item.alias] = reduce_collect(values, expr.distinct)
            else:
                row[item.alias] = reduce_numeric(
                    expr.func, values, expr.distinct
                )
        for index, expr in enumerate(self.order_exprs):
            row[f"#o{index}"] = eval_projected(expr, ResultRow(row))
        return row

    def next(self) -> dict | None:
        if not self._consumed:
            while True:
                bindings = self.child.next()
                if bindings is None:
                    break
                self._accumulate(bindings)
            self._consumed = True
        groups = list(self._groups.values())
        if not self.group_items and not groups:
            # global aggregate over an empty match: one zero/null row
            groups = [{"reps": [], "vals": [[] for _ in self.agg_items], "n": 0}]
            self._groups[()] = groups[0]
        if self._pos >= len(groups):
            return None
        group = groups[self._pos]
        self._pos += 1
        return self._emit(group)

    def save(self) -> dict:
        return {
            "child": self.child.save(),
            "consumed": self._consumed,
            "pos": self._pos,
            "groups": [
                {
                    "reps": [encode_value(v) for v in group["reps"]],
                    "vals": [
                        [encode_value(v) for v in values]
                        for values in group["vals"]
                    ],
                    "n": group["n"],
                }
                for group in self._groups.values()
            ],
        }

    def load(self, state: dict) -> None:
        self.child.load(state["child"])
        self._consumed = bool(state["consumed"])
        self._pos = state["pos"]
        self._groups = {}
        for entry in state["groups"]:
            reps = [decode_value(self.graph, v) for v in entry["reps"]]
            key = tuple(_hashable(rep) for rep in reps)
            self._groups[key] = {
                "reps": reps,
                "vals": [
                    [decode_value(self.graph, v) for v in values]
                    for values in entry["vals"]
                ],
                "n": entry["n"],
            }


class OrderByOp(PreemptableIterator):
    """Blocking sort on the hidden ``#oN`` keys, stripped on emit.

    Sorting runs as the same sequence of reversed stable passes as the
    eager executor, so ties break identically.
    """

    def __init__(self, graph: PropertyGraph, child: PreemptableIterator,
                 ascending: list[bool]):
        self.graph = graph
        self.child = child
        self.ascending = ascending
        self._rows: list[dict] = []
        self._sorted = False
        self._pos = 0

    @staticmethod
    def _strip(row: dict) -> dict:
        return {k: v for k, v in row.items() if not k.startswith("#o")}

    def next(self) -> dict | None:
        if not self._sorted:
            while True:
                row = self.child.next()
                if row is None:
                    break
                self._rows.append(row)
            for index, asc in reversed(list(enumerate(self.ascending))):
                self._rows.sort(
                    key=lambda row: _sort_key(row[f"#o{index}"]),
                    reverse=not asc,
                )
            self._sorted = True
        if self._pos >= len(self._rows):
            return None
        row = self._rows[self._pos]
        self._pos += 1
        return self._strip(row)

    def save(self) -> dict:
        return {
            "child": self.child.save(),
            "sorted": self._sorted,
            "pos": self._pos,
            "rows": [
                {k: encode_value(v) for k, v in row.items()}
                for row in self._rows
            ],
        }

    def load(self, state: dict) -> None:
        self.child.load(state["child"])
        self._sorted = bool(state["sorted"])
        self._pos = state["pos"]
        self._rows = [
            {k: decode_value(self.graph, v) for k, v in row.items()}
            for row in state["rows"]
        ]


class DistinctOp(PreemptableIterator):
    """Streaming DISTINCT over row dicts (first occurrence wins)."""

    def __init__(self, child: PreemptableIterator):
        self.child = child
        self._seen: list[tuple] = []

    def next(self) -> dict | None:
        while True:
            row = self.child.next()
            if row is None:
                return None
            key = tuple(sorted((k, _hashable(v)) for k, v in row.items()))
            if key in self._seen:
                continue
            self._seen.append(key)
            return row

    def save(self) -> dict:
        return {"child": self.child.save(), "seen": _thaw(tuple(self._seen))}

    def load(self, state: dict) -> None:
        self.child.load(state["child"])
        self._seen = list(_freeze(state["seen"]))


class SkipOp(PreemptableIterator):
    def __init__(self, child: PreemptableIterator, count: int):
        self.child = child
        self.count = count
        self._skipped = 0

    def next(self) -> dict | None:
        while self._skipped < self.count:
            row = self.child.next()
            if row is None:
                return None
            self._skipped += 1
        return self.child.next()

    def save(self) -> dict:
        return {"child": self.child.save(), "skipped": self._skipped}

    def load(self, state: dict) -> None:
        self.child.load(state["child"])
        self._skipped = state["skipped"]


class LimitOp(PreemptableIterator):
    """Stops pulling once the limit is reached: pushdown for free."""

    def __init__(self, child: PreemptableIterator, count: int):
        self.child = child
        self.count = count
        self._emitted = 0

    def next(self) -> dict | None:
        if self._emitted >= self.count:
            return None
        row = self.child.next()
        if row is None:
            return None
        self._emitted += 1
        return row

    def save(self) -> dict:
        return {"child": self.child.save(), "emitted": self._emitted}

    def load(self, state: dict) -> None:
        self.child.load(state["child"])
        self._emitted = state["emitted"]


class ProfiledOp(PreemptableIterator):
    """Transparent instrumentation shim around one operator.

    Counts ``next()`` calls and rows produced, and accumulates the
    wall (clock) seconds spent inside the wrapped operator --
    *cumulative* time, i.e. including the children it pulls from,
    since each child is itself wrapped the per-operator self time
    falls out as ``cumulative - sum(child cumulatives)`` at render
    time.  Timing reads the injected clock, so a virtual-clock profile
    (optionally charged via ``step_cost``) is deterministic.

    The shim is also save/load-transparent: continuations nest the
    wrapped operator's state beside the counters, so a PROFILE query
    can still be sliced and resumed.
    """

    def __init__(
        self,
        inner: PreemptableIterator,
        context: ExecutionContext,
        kind: str,
        detail: str = "",
    ):
        self.inner = inner
        self.context = context
        self.kind = kind
        self.detail = detail
        self.calls = 0
        self.rows = 0
        self.seconds = 0.0

    def next(self) -> dict | None:
        self.calls += 1
        started = self.context.clock.now()
        try:
            row = self.inner.next()
        finally:
            self.seconds += max(0.0, self.context.clock.now() - started)
        if row is not None:
            self.rows += 1
        return row

    def save(self) -> dict:
        return {
            "inner": self.inner.save(),
            "calls": self.calls,
            "rows": self.rows,
            "s": self.seconds,
        }

    def load(self, state: dict) -> None:
        self.inner.load(state["inner"])
        self.calls = state["calls"]
        self.rows = state["rows"]
        self.seconds = state["s"]

    def stats(self) -> dict:
        """JSON-safe counters for :class:`QueryProfile`."""
        return {
            "operator": self.kind,
            "detail": self.detail,
            "rows": self.rows,
            "calls": self.calls,
            "cumulative_s": self.seconds,
        }


__all__ = [
    "AggregateOp",
    "DistinctOp",
    "ExecutionContext",
    "ExpandOp",
    "ExpandVarOp",
    "FilterOp",
    "LimitOp",
    "OrderByOp",
    "PreemptableIterator",
    "ProfiledOp",
    "ProjectOp",
    "QuantumExhausted",
    "ScanOp",
    "SingletonOp",
    "SkipOp",
    "decode_bindings",
    "decode_value",
    "encode_bindings",
    "encode_value",
]
