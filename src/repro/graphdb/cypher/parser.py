"""Recursive-descent parser for the Cypher subset.

Grammar (informal)::

    query      := match_query | create_query
    match_query:= MATCH pattern (WHERE expr)? RETURN (DISTINCT)? items
                  (ORDER BY order_items)? (SKIP n)? (LIMIT n)?
    create_query := CREATE pattern
    pattern    := path (',' path)*
    path       := node (rel node)*
    node       := '(' IDENT? (':' IDENT)? props? ')'
    rel        := '-[' IDENT? (':' IDENT)? ']->' | '<-[' ... ']-' | '-[' ... ']-'
    props      := '{' IDENT ':' literal (',' IDENT ':' literal)* '}'
    expr       := or_expr;  standard precedence OR < AND < NOT < cmp
    cmp        := sum (('='|'<>'|'<'|'>'|'<='|'>='|IN|CONTAINS|
                        STARTS WITH|ENDS WITH) sum)?
                | sum IS (NOT)? NULL
    primary    := literal | list | count | property | variable | '(' expr ')'
"""

from __future__ import annotations

from repro.graphdb.cypher import ast
from repro.graphdb.cypher.lexer import (
    CypherSyntaxError,
    Token,
    TokenType,
    tokenize,
)


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.peek()
        self.pos += 1
        return token

    def check(self, token_type: TokenType, value: str | None = None) -> bool:
        token = self.peek()
        if token.type is not token_type:
            return False
        return value is None or token.value == value

    def accept(self, token_type: TokenType, value: str | None = None) -> Token | None:
        if self.check(token_type, value):
            return self.advance()
        return None

    def expect(self, token_type: TokenType, value: str | None = None) -> Token:
        token = self.accept(token_type, value)
        if token is None:
            actual = self.peek()
            wanted = value or token_type.value
            raise CypherSyntaxError(
                f"expected {wanted!r} at offset {actual.position}, "
                f"found {actual.value!r}"
            )
        return token

    # -- entry ------------------------------------------------------------

    def parse(self) -> ast.Query:
        explain = self.accept(TokenType.KEYWORD, "EXPLAIN") is not None
        profile = self.accept(TokenType.KEYWORD, "PROFILE") is not None
        if explain and profile:
            raise CypherSyntaxError("EXPLAIN and PROFILE cannot be combined")
        if self.check(TokenType.KEYWORD, "MATCH"):
            query = self.match_query()
            query.explain = explain
            query.profile = profile
        elif self.check(TokenType.KEYWORD, "CREATE"):
            if explain:
                raise CypherSyntaxError("EXPLAIN applies to MATCH queries only")
            if profile:
                raise CypherSyntaxError("PROFILE applies to MATCH queries only")
            query = self.create_query()
        else:
            raise CypherSyntaxError("query must start with MATCH or CREATE")
        self.expect(TokenType.EOF)
        return query

    def match_query(self) -> ast.MatchQuery:
        self.expect(TokenType.KEYWORD, "MATCH")
        paths = self.pattern()
        where = None
        if self.accept(TokenType.KEYWORD, "WHERE"):
            where = self.expression()
        self.expect(TokenType.KEYWORD, "RETURN")
        distinct = self.accept(TokenType.KEYWORD, "DISTINCT") is not None
        returns = self.return_items()
        order_by: list[tuple[ast.Expr, bool]] = []
        if self.accept(TokenType.KEYWORD, "ORDER"):
            self.expect(TokenType.KEYWORD, "BY")
            while True:
                expr = self.expression()
                ascending = True
                if self.accept(TokenType.KEYWORD, "DESC"):
                    ascending = False
                else:
                    self.accept(TokenType.KEYWORD, "ASC")
                order_by.append((expr, ascending))
                if not self.accept(TokenType.SYMBOL, ","):
                    break
        skip = limit = None
        if self.accept(TokenType.KEYWORD, "SKIP"):
            skip = int(self.expect(TokenType.NUMBER).value)
        if self.accept(TokenType.KEYWORD, "LIMIT"):
            limit = int(self.expect(TokenType.NUMBER).value)
        return ast.MatchQuery(
            paths=paths,
            where=where,
            returns=returns,
            distinct=distinct,
            order_by=order_by,
            skip=skip,
            limit=limit,
        )

    def create_query(self) -> ast.CreateQuery:
        self.expect(TokenType.KEYWORD, "CREATE")
        return ast.CreateQuery(paths=self.pattern())

    # -- patterns --------------------------------------------------------------

    def pattern(self) -> list[ast.PathPattern]:
        paths = [self.path()]
        while self.accept(TokenType.SYMBOL, ","):
            paths.append(self.path())
        return paths

    def path(self) -> ast.PathPattern:
        nodes = [self.node_pattern()]
        rels: list[ast.RelPattern] = []
        while self.check(TokenType.SYMBOL, "-") or self.check(
            TokenType.SYMBOL, "<-"
        ):
            rels.append(self.rel_pattern())
            nodes.append(self.node_pattern())
        return ast.PathPattern(nodes=tuple(nodes), rels=tuple(rels))

    def node_pattern(self) -> ast.NodePattern:
        open_token = self.expect(TokenType.SYMBOL, "(")
        variable = None
        label = None
        label_pos = -1
        token = self.accept(TokenType.IDENT)
        if token is not None:
            variable = token.value
        if self.accept(TokenType.SYMBOL, ":"):
            label_token = self._name_token()
            label = label_token.value
            label_pos = label_token.position
        properties: tuple[tuple[str, object], ...] = ()
        property_positions: tuple[int, ...] = ()
        if self.check(TokenType.SYMBOL, "{"):
            properties, property_positions = self.property_map()
        self.expect(TokenType.SYMBOL, ")")
        return ast.NodePattern(
            variable=variable,
            label=label,
            properties=properties,
            pos=open_token.position,
            label_pos=label_pos,
            property_positions=property_positions,
        )

    def _name(self) -> str:
        return self._name_token().value

    def _name_token(self) -> Token:
        token = self.peek()
        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            self.advance()
            return token
        raise CypherSyntaxError(
            f"expected a name at offset {token.position}, found {token.value!r}"
        )

    def rel_pattern(self) -> ast.RelPattern:
        direction = "any"
        if self.accept(TokenType.SYMBOL, "<-"):
            direction = "in"
        else:
            self.expect(TokenType.SYMBOL, "-")
        variable = None
        rel_type = None
        type_pos = star_pos = -1
        min_hops = max_hops = 1
        explicit_max = True
        if self.accept(TokenType.SYMBOL, "["):
            token = self.accept(TokenType.IDENT)
            if token is not None:
                variable = token.value
            if self.accept(TokenType.SYMBOL, ":"):
                type_token = self._name_token()
                rel_type = type_token.value
                type_pos = type_token.position
            star = self.accept(TokenType.SYMBOL, "*")
            if star is not None:
                star_pos = star.position
                min_hops, max_hops, explicit_max = self._hop_range()
            self.expect(TokenType.SYMBOL, "]")
        if self.accept(TokenType.SYMBOL, "->"):
            if direction == "in":
                raise CypherSyntaxError("relationship cannot point both ways")
            direction = "out"
        else:
            self.expect(TokenType.SYMBOL, "-")
        if (min_hops, max_hops) != (1, 1) and variable is not None:
            raise CypherSyntaxError(
                "variable-length relationships cannot bind a variable"
            )
        return ast.RelPattern(
            variable=variable,
            rel_type=rel_type,
            direction=direction,
            min_hops=min_hops,
            max_hops=max_hops,
            explicit_max=explicit_max,
            type_pos=type_pos,
            star_pos=star_pos,
        )

    #: upper bound for an unbounded ``*`` (keeps traversal finite).
    DEFAULT_MAX_HOPS = 5

    def _hop_range(self) -> tuple[int, int, bool]:
        """Parse the range after ``*``: ``*``, ``*n``, ``*n..m``, ``*..m``.

        The third element reports whether the upper bound was written
        explicitly (``False`` means it came from ``DEFAULT_MAX_HOPS``).
        """
        low = None
        explicit = True
        token = self.accept(TokenType.NUMBER)
        if token is not None:
            low = int(token.value)
        if self.accept(TokenType.SYMBOL, "."):
            self.expect(TokenType.SYMBOL, ".")
            token = self.accept(TokenType.NUMBER)
            if token is not None:
                high = int(token.value)
            else:
                high = self.DEFAULT_MAX_HOPS
                explicit = False
            low = 1 if low is None else low
        elif low is not None:
            high = low  # '*n' means exactly n hops
        else:
            low, high = 1, self.DEFAULT_MAX_HOPS  # bare '*'
            explicit = False
        if low < 0 or high < low:
            raise CypherSyntaxError(f"invalid hop range *{low}..{high}")
        return low, high, explicit

    def property_map(self) -> tuple[tuple[tuple[str, object], ...], tuple[int, ...]]:
        self.expect(TokenType.SYMBOL, "{")
        pairs: list[tuple[str, object]] = []
        positions: list[int] = []
        if not self.check(TokenType.SYMBOL, "}"):
            while True:
                key_token = self._name_token()
                self.expect(TokenType.SYMBOL, ":")
                pairs.append((key_token.value, self._literal_value()))
                positions.append(key_token.position)
                if not self.accept(TokenType.SYMBOL, ","):
                    break
        self.expect(TokenType.SYMBOL, "}")
        return tuple(pairs), tuple(positions)

    def _literal_value(self) -> object:
        token = self.peek()
        if token.type is TokenType.STRING:
            self.advance()
            return token.value
        if token.type is TokenType.NUMBER:
            self.advance()
            return float(token.value) if "." in token.value else int(token.value)
        if token.type is TokenType.KEYWORD and token.value in ("TRUE", "FALSE"):
            self.advance()
            return token.value == "TRUE"
        if token.type is TokenType.KEYWORD and token.value == "NULL":
            self.advance()
            return None
        raise CypherSyntaxError(
            f"expected a literal at offset {token.position}, found {token.value!r}"
        )

    # -- RETURN ------------------------------------------------------------------

    def return_items(self) -> list[ast.ReturnItem]:
        items = [self.return_item()]
        while self.accept(TokenType.SYMBOL, ","):
            items.append(self.return_item())
        return items

    def return_item(self) -> ast.ReturnItem:
        expr = self.expression()
        alias = None
        if self.accept(TokenType.KEYWORD, "AS"):
            alias = self._name()
        if alias is None:
            alias = _default_alias(expr)
        return ast.ReturnItem(expr=expr, alias=alias)

    # -- expressions ----------------------------------------------------------------

    def expression(self) -> ast.Expr:
        return self.or_expr()

    def or_expr(self) -> ast.Expr:
        left = self.and_expr()
        while self.accept(TokenType.KEYWORD, "OR"):
            left = ast.Or(left, self.and_expr())
        return left

    def and_expr(self) -> ast.Expr:
        left = self.not_expr()
        while self.accept(TokenType.KEYWORD, "AND"):
            left = ast.And(left, self.not_expr())
        return left

    def not_expr(self) -> ast.Expr:
        if self.accept(TokenType.KEYWORD, "NOT"):
            return ast.Not(self.not_expr())
        return self.comparison()

    def comparison(self) -> ast.Expr:
        left = self.primary()
        token = self.peek()
        pos = token.position
        if token.type is TokenType.SYMBOL and token.value in (
            "=",
            "<>",
            "<",
            ">",
            "<=",
            ">=",
        ):
            self.advance()
            return ast.Compare(token.value, left, self.primary(), op_pos=pos)
        if token.type is TokenType.KEYWORD and token.value == "IN":
            self.advance()
            return ast.Compare("IN", left, self.primary(), op_pos=pos)
        if token.type is TokenType.KEYWORD and token.value == "CONTAINS":
            self.advance()
            return ast.Compare("CONTAINS", left, self.primary(), op_pos=pos)
        if token.type is TokenType.KEYWORD and token.value == "STARTS":
            self.advance()
            self.expect(TokenType.KEYWORD, "WITH")
            return ast.Compare("STARTS WITH", left, self.primary(), op_pos=pos)
        if token.type is TokenType.KEYWORD and token.value == "ENDS":
            self.advance()
            self.expect(TokenType.KEYWORD, "WITH")
            return ast.Compare("ENDS WITH", left, self.primary(), op_pos=pos)
        if token.type is TokenType.KEYWORD and token.value == "IS":
            self.advance()
            if self.accept(TokenType.KEYWORD, "NOT"):
                self.expect(TokenType.KEYWORD, "NULL")
                return ast.Compare("IS NOT NULL", left, None, op_pos=pos)
            self.expect(TokenType.KEYWORD, "NULL")
            return ast.Compare("IS NULL", left, None, op_pos=pos)
        return left

    def primary(self) -> ast.Expr:
        token = self.peek()
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.type is TokenType.NUMBER:
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return ast.Literal(value)
        if token.type is TokenType.KEYWORD and token.value in ("TRUE", "FALSE"):
            self.advance()
            return ast.Literal(token.value == "TRUE")
        if token.type is TokenType.KEYWORD and token.value == "NULL":
            self.advance()
            return ast.Literal(None)
        if token.type is TokenType.KEYWORD and token.value == "COUNT":
            self.advance()
            self.expect(TokenType.SYMBOL, "(")
            if self.accept(TokenType.SYMBOL, "*"):
                self.expect(TokenType.SYMBOL, ")")
                return ast.Count(None)
            distinct = self.accept(TokenType.KEYWORD, "DISTINCT") is not None
            operand = self.expression()
            self.expect(TokenType.SYMBOL, ")")
            return ast.Count(operand, distinct=distinct)
        if token.type is TokenType.KEYWORD and token.value == "COLLECT":
            self.advance()
            self.expect(TokenType.SYMBOL, "(")
            distinct = self.accept(TokenType.KEYWORD, "DISTINCT") is not None
            operand = self.expression()
            self.expect(TokenType.SYMBOL, ")")
            return ast.Collect(operand, distinct=distinct)
        if (
            token.type is TokenType.KEYWORD
            and token.value in ("AVG", "MIN", "MAX", "SUM")
            and self.peek(1).type is TokenType.SYMBOL
            and self.peek(1).value == "("
        ):
            self.advance()
            self.expect(TokenType.SYMBOL, "(")
            distinct = self.accept(TokenType.KEYWORD, "DISTINCT") is not None
            operand = self.expression()
            self.expect(TokenType.SYMBOL, ")")
            return ast.NumAgg(token.value.lower(), operand, distinct=distinct)
        if token.type is TokenType.SYMBOL and token.value == "[":
            self.advance()
            items: list[ast.Expr] = []
            if not self.check(TokenType.SYMBOL, "]"):
                while True:
                    items.append(self.expression())
                    if not self.accept(TokenType.SYMBOL, ","):
                        break
            self.expect(TokenType.SYMBOL, "]")
            return ast.ListLiteral(tuple(items))
        if token.type is TokenType.SYMBOL and token.value == "(":
            self.advance()
            expr = self.expression()
            self.expect(TokenType.SYMBOL, ")")
            return expr
        if token.type is TokenType.IDENT:
            self.advance()
            if self.accept(TokenType.SYMBOL, "."):
                key_token = self._name_token()
                return ast.Property(
                    token.value,
                    key_token.value,
                    pos=token.position,
                    key_pos=key_token.position,
                )
            return ast.Variable(token.value, pos=token.position)
        raise CypherSyntaxError(
            f"unexpected token {token.value!r} at offset {token.position}"
        )


def _default_alias(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Variable):
        return expr.name
    if isinstance(expr, ast.Property):
        return f"{expr.variable}.{expr.key}"
    if isinstance(expr, ast.Count):
        return "count"
    if isinstance(expr, ast.Collect):
        return "collect"
    if isinstance(expr, ast.NumAgg):
        return expr.func
    return "expr"


def parse(query: str) -> ast.Query:
    """Parse a Cypher query string into an AST."""
    return _Parser(tokenize(query)).parse()


__all__ = ["parse"]
