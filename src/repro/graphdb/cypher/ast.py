"""Cypher abstract syntax tree.

Nodes carry optional source positions (character offsets into the
query string, ``-1`` when unknown).  Position fields are excluded from
equality so hand-built ASTs still compare equal to parsed ones; they
exist solely so the semantic analyzer (:mod:`repro.analysis`) can
point diagnostics at the offending token.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- expressions ------------------------------------------------------------


class Expr:
    """Marker base class for expressions."""


@dataclass(frozen=True)
class Literal(Expr):
    value: object


@dataclass(frozen=True)
class Variable(Expr):
    name: str
    pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class Property(Expr):
    variable: str
    key: str
    pos: int = field(default=-1, compare=False)
    key_pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class Compare(Expr):
    op: str  # '=', '<>', '<', '>', '<=', '>=', 'IN', 'CONTAINS',
    #          'STARTS WITH', 'ENDS WITH', 'IS NULL', 'IS NOT NULL'
    left: Expr
    right: Expr | None  # None for IS [NOT] NULL
    op_pos: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True)
class Count(Expr):
    """count(*) when operand is None, else count(expr)."""

    operand: Expr | None
    distinct: bool = False


@dataclass(frozen=True)
class Collect(Expr):
    """collect(expr): aggregate values into a list."""

    operand: Expr
    distinct: bool = False


@dataclass(frozen=True)
class NumAgg(Expr):
    """Numeric aggregate: avg/min/max/sum over an expression.

    ``sum`` of an empty group is 0; ``avg``/``min``/``max`` of an
    empty group are null.  ``distinct`` dedupes values before
    aggregating, matching count/collect semantics.
    """

    func: str  # 'avg', 'min', 'max', 'sum'
    operand: Expr
    distinct: bool = False


@dataclass(frozen=True)
class ListLiteral(Expr):
    items: tuple[Expr, ...]


# -- patterns ------------------------------------------------------------------


@dataclass(frozen=True)
class NodePattern:
    variable: str | None
    label: str | None
    properties: tuple[tuple[str, object], ...] = ()
    pos: int = field(default=-1, compare=False)  # '(' of the pattern
    label_pos: int = field(default=-1, compare=False)
    #: positions of the property-map keys, parallel to ``properties``
    property_positions: tuple[int, ...] = field(default=(), compare=False)


@dataclass(frozen=True)
class RelPattern:
    variable: str | None
    rel_type: str | None
    direction: str  # 'out', 'in', 'any'
    #: variable-length bounds; (1, 1) is a plain single-hop pattern
    min_hops: int = 1
    max_hops: int = 1
    #: False when the upper bound came from the parser's default cap
    #: (``*`` or ``*1..`` with no explicit maximum)
    explicit_max: bool = field(default=True, compare=False)
    type_pos: int = field(default=-1, compare=False)
    star_pos: int = field(default=-1, compare=False)

    @property
    def is_variable_length(self) -> bool:
        return (self.min_hops, self.max_hops) != (1, 1)


@dataclass(frozen=True)
class PathPattern:
    nodes: tuple[NodePattern, ...]
    rels: tuple[RelPattern, ...]  # len(rels) == len(nodes) - 1


# -- query forms ----------------------------------------------------------------


@dataclass(frozen=True)
class ReturnItem:
    expr: Expr
    alias: str


@dataclass
class MatchQuery:
    paths: list[PathPattern]
    where: Expr | None = None
    returns: list[ReturnItem] = field(default_factory=list)
    distinct: bool = False
    order_by: list[tuple[Expr, bool]] = field(default_factory=list)  # (expr, asc)
    skip: int | None = None
    limit: int | None = None
    #: EXPLAIN-prefixed query: plan and describe instead of executing
    explain: bool = False
    #: PROFILE-prefixed query: execute with per-operator instrumentation
    profile: bool = False


@dataclass
class CreateQuery:
    paths: list[PathPattern]


Query = MatchQuery | CreateQuery

__all__ = [
    "And",
    "Collect",
    "Compare",
    "Count",
    "CreateQuery",
    "Expr",
    "ListLiteral",
    "Literal",
    "MatchQuery",
    "NodePattern",
    "Not",
    "NumAgg",
    "Or",
    "PathPattern",
    "Property",
    "Query",
    "RelPattern",
    "ReturnItem",
    "Variable",
]
