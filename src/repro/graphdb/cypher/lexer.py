"""Cypher lexer.

Tokenizes the Cypher subset used by SecurityKG: MATCH / WHERE /
RETURN / CREATE queries with node-and-relationship patterns,
comparisons, boolean operators, string predicates and
ORDER BY / SKIP / LIMIT.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass


class CypherSyntaxError(ValueError):
    """Lexical or grammatical error in a Cypher query."""


class TokenType(enum.Enum):
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    KEYWORD = "keyword"
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "MATCH",
        "WHERE",
        "RETURN",
        "CREATE",
        "ORDER",
        "BY",
        "LIMIT",
        "SKIP",
        "AND",
        "OR",
        "NOT",
        "AS",
        "DISTINCT",
        "ASC",
        "DESC",
        "IN",
        "CONTAINS",
        "STARTS",
        "ENDS",
        "WITH",
        "NULL",
        "TRUE",
        "FALSE",
        "COUNT",
        "COLLECT",
        "AVG",
        "MIN",
        "MAX",
        "SUM",
        "EXPLAIN",
        "PROFILE",
        "IS",
    }
)

#: Multi-character symbols first so maximal munch applies.
_SYMBOLS = ("<=", ">=", "<>", "->", "<-", "(", ")", "[", "]", "{", "}",
            ":", ",", ".", "-", ">", "<", "=", "*")

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
    | (?P<number>\d+(?:\.\d+)?)
    | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<symbol><=|>=|<>|->|<-|[()\[\]{}:,.\-<>=*])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type.value}, {self.value!r})"


def tokenize(query: str) -> list[Token]:
    """Lex a query string; raises :class:`CypherSyntaxError` on junk."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(query):
        match = _TOKEN_RE.match(query, pos)
        if match is None:
            raise CypherSyntaxError(
                f"unexpected character {query[pos]!r} at offset {pos}"
            )
        pos = match.end()
        if match.group("ws"):
            continue
        if match.group("string") is not None:
            raw = match.group("string")
            value = raw[1:-1].replace('\\"', '"').replace("\\'", "'").replace(
                "\\\\", "\\"
            )
            tokens.append(Token(TokenType.STRING, value, match.start()))
        elif match.group("number") is not None:
            tokens.append(Token(TokenType.NUMBER, match.group("number"), match.start()))
        elif match.group("ident") is not None:
            word = match.group("ident")
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), match.start()))
            else:
                tokens.append(Token(TokenType.IDENT, word, match.start()))
        else:
            tokens.append(Token(TokenType.SYMBOL, match.group("symbol"), match.start()))
    tokens.append(Token(TokenType.EOF, "", len(query)))
    return tokens


__all__ = ["CypherSyntaxError", "KEYWORDS", "Token", "TokenType", "tokenize"]
