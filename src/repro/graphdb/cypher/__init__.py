"""Cypher-subset query engine (lexer, parser, planner, executor).

Two execution strategies behind one engine: the eager tree-walking
evaluator (`run`) and the preemptable physical-operator path
(`run_paginated` / `task`) built from `planner` + `iterators`.
"""

from repro.graphdb.cypher.executor import (
    CypherAnalysisError,
    CypherEngine,
    CypherPage,
    CypherRuntimeError,
    QueryProfile,
    QueryTask,
    ResultRow,
)
from repro.graphdb.cypher.iterators import ExecutionContext, QuantumExhausted
from repro.graphdb.cypher.lexer import CypherSyntaxError, tokenize
from repro.graphdb.cypher.parser import parse
from repro.graphdb.cypher.planner import PhysicalPlan, build_plan

__all__ = [
    "CypherAnalysisError",
    "CypherEngine",
    "CypherPage",
    "CypherRuntimeError",
    "CypherSyntaxError",
    "ExecutionContext",
    "PhysicalPlan",
    "QuantumExhausted",
    "QueryProfile",
    "QueryTask",
    "ResultRow",
    "build_plan",
    "tokenize",
    "parse",
]
