"""Cypher-subset query engine (lexer, parser, executor)."""

from repro.graphdb.cypher.executor import (
    CypherAnalysisError,
    CypherEngine,
    CypherRuntimeError,
    ResultRow,
)
from repro.graphdb.cypher.lexer import CypherSyntaxError, tokenize
from repro.graphdb.cypher.parser import parse

__all__ = [
    "CypherAnalysisError",
    "CypherEngine",
    "CypherRuntimeError",
    "CypherSyntaxError",
    "ResultRow",
    "parse",
    "tokenize",
]
