"""Cypher query execution.

Two execution strategies share one semantics:

**Eager** (the default, and the N=1/no-quantum fast path): pattern
matching runs as a backtracking join: within each path the executor
seeds the search at the most selective node pattern
(property-indexed lookup beats label scan beats full scan), expands
along relationship patterns using adjacency lists, and threads
variable bindings across paths.  WHERE filters bindings, RETURN
projects them, aggregates group over the non-aggregated items, then
DISTINCT / ORDER BY / SKIP / LIMIT apply in the standard order.

**Preemptable** (:meth:`CypherEngine.run_paginated` /
:meth:`CypherEngine.task`): the query is lowered by
:mod:`repro.graphdb.cypher.planner` into a tree of resumable
iterators (:mod:`repro.graphdb.cypher.iterators`) that suspend after a
time quantum on the injected clock and resume from a JSON-safe
continuation -- the SaGe web-preemption model, which is what lets the
UI server page results and serve many concurrent queries with bounded
per-slice latency.

The expression evaluator lives in module-level functions shared by
both strategies, so a sliced run is value-identical to an eager one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.graphdb.cypher import ast
from repro.graphdb.cypher.lexer import CypherSyntaxError
from repro.graphdb.cypher.parser import parse
from repro.graphdb.store import Edge, Node, PropertyGraph
from repro.obs import NO_OBS, Obs
from repro.runtime.clock import Clock, REAL_CLOCK


class CypherRuntimeError(ValueError):
    """Semantic error discovered during execution."""


class CypherAnalysisError(CypherRuntimeError):
    """Semantic errors caught by static analysis, before execution.

    Subclasses :class:`CypherRuntimeError` so callers that treat all
    semantic failures alike keep working; carries the structured
    diagnostics for callers (CLI, UI server) that render them.
    """

    def __init__(self, diagnostics, source: str):
        from repro.analysis.diagnostics import render

        super().__init__(render(source, diagnostics))
        self.diagnostics = list(diagnostics)
        self.source = source


Bindings = dict[str, object]


@dataclass
class ResultRow:
    """One row of a query result: alias -> value."""

    values: dict[str, object]

    def __getitem__(self, alias: str) -> object:
        return self.values[alias]

    def keys(self):
        return self.values.keys()


@dataclass
class CypherPage:
    """One page of a paginated query: rows plus a resume continuation.

    ``continuation`` is a JSON-safe dict (``None`` when the query is
    exhausted); callers that need an opaque wire token encode it
    themselves (the UI server base64s it with a query fingerprint).
    """

    rows: list[ResultRow]
    continuation: dict | None = None


@dataclass
class QueryProfile:
    """The result of a ``PROFILE`` query: rows plus operator counters.

    ``operators`` lists the linear plan root-first, one dict per
    operator: ``operator``, ``detail``, ``rows`` produced, ``calls``
    (``next()`` invocations), ``cumulative_s`` (clock seconds inside
    the operator including its child) and ``self_s`` (cumulative minus
    the child's cumulative).  ``partitions`` carries per-partition
    operator lists for sharded scatter-gather profiles.

    The profiled execution is the preemptable operator tree run to
    completion, so ``rows`` is row-identical to the unprofiled query.
    """

    rows: list[ResultRow]
    operators: list[dict]
    partitions: dict[str, list[dict]] | None = None

    def lines(self) -> list[str]:
        """Annotated operator tree, EXPLAIN-style indentation."""
        out = _profile_lines(self.operators)
        for key in sorted(self.partitions or (), key=lambda k: (len(k), k)):
            out.append(f"partition {key}:")
            out.extend(
                "  " + line for line in _profile_lines(self.partitions[key])
            )
        return out

    def to_dict(self) -> dict:
        """JSON-safe rendering for the UI server and CLI ``--json``."""
        payload: dict = {
            "rows": len(self.rows),
            "operators": self.operators,
        }
        if self.partitions is not None:
            payload["partitions"] = self.partitions
        return payload


def _profile_lines(operators: list[dict]) -> list[str]:
    lines = []
    for depth, op in enumerate(operators):
        head = f"{op['operator']} {op['detail']}".rstrip()
        lines.append(
            "  " * depth + head
            + f"  (rows={op['rows']} calls={op['calls']} "
            f"self={op['self_s']:.6f}s total={op['cumulative_s']:.6f}s)"
        )
    return lines


def _operator_stats(profilers) -> list[dict]:
    """Root-first counter dicts with self time from cumulative times.

    The plan is a linear chain, so an operator's only child is the
    next entry; its self time is the cumulative difference (clamped at
    zero -- a parent can observe slightly less than its child charges
    when ``step_cost`` ticks fire inside the child's ``next``).
    """
    stats = [profiler.stats() for profiler in profilers]
    for index, entry in enumerate(stats):
        child_s = (
            stats[index + 1]["cumulative_s"] if index + 1 < len(stats) else 0.0
        )
        entry["self_s"] = max(0.0, entry["cumulative_s"] - child_s)
    return stats


class CypherEngine:
    """Execute parsed Cypher against a property graph."""

    def __init__(
        self,
        graph: PropertyGraph,
        strict: bool = True,
        obs: Obs = NO_OBS,
        clock: Clock | None = None,
    ):
        self.graph = graph
        #: default-on semantic analysis: queries with ERROR-severity
        #: findings raise :class:`CypherAnalysisError` before execution
        self.strict = strict
        #: observability bundle (``cypher.plan`` / ``cypher.slice``
        #: spans, slice counters); the no-op default is free
        self.obs = obs
        #: timestamp source for PROFILE operator timing; falls back to
        #: the tracer's clock so a virtual-clock deployment profiles on
        #: its own timeline without extra plumbing
        self.clock = (
            clock
            if clock is not None
            else getattr(obs.tracer, "clock", None) or REAL_CLOCK
        )
        self._schema_cache: tuple[tuple[int, int], object] | None = None

    # -- public API -----------------------------------------------------

    def run(self, query: str, strict: bool | None = None) -> list[ResultRow]:
        """Parse, analyze (in strict mode) and execute.

        Returns result rows (empty for CREATE).  ``strict=None`` uses
        the engine default; pass ``strict=False`` for exploratory
        queries that intentionally probe labels the graph lacks.
        ``EXPLAIN``-prefixed queries return the physical plan as one
        ``plan`` row per operator instead of executing.
        ``PROFILE``-prefixed queries execute with instrumentation and
        return the data rows (row-identical to the plain query); reach
        the operator counters through :meth:`profile`.
        """
        parsed = parse(query)
        if self.strict if strict is None else strict:
            self._check(parsed, query)
        if isinstance(parsed, ast.CreateQuery):
            self._execute_create(parsed)
            # CREATE changes the schema; drop the cached analyzer view.
            self._schema_cache = None
            return []
        if parsed.explain:
            return self.explain_rows(parsed)
        if parsed.profile:
            return self.profile_parsed(parsed).rows
        return self._execute_match(parsed)

    def plan(self, parsed: ast.MatchQuery):
        """Lower an analyzed MATCH query into a physical plan."""
        # Imported lazily: the planner imports iterators, which import
        # this module's shared evaluator.
        from repro.graphdb.cypher.planner import build_plan

        with self.obs.tracer.span("cypher.plan"):
            return build_plan(parsed, self.graph)

    def explain_rows(self, parsed: ast.MatchQuery) -> list[ResultRow]:
        """The physical plan as result rows (one ``plan`` line each)."""
        plan = self.plan(parsed)
        return [ResultRow({"plan": line}) for line in plan.explain_lines()]

    def profile(
        self,
        query: str,
        strict: bool | None = None,
        step_cost: float = 0.0,
    ) -> QueryProfile:
        """Execute with per-operator instrumentation.

        The plan is instantiated with every operator wrapped in a
        :class:`~repro.graphdb.cypher.iterators.ProfiledOp` and run to
        completion; the result carries the data rows *and* per-operator
        rows/calls/seconds.  ``step_cost`` charges virtual seconds per
        safe-point tick, giving virtual-clock profiles deterministic
        nonzero timings.  The ``PROFILE`` keyword prefix is optional
        here -- this entry point always profiles.
        """
        parsed = parse(query)
        if self.strict if strict is None else strict:
            self._check(parsed, query)
        if not isinstance(parsed, ast.MatchQuery):
            raise CypherRuntimeError("PROFILE applies to MATCH queries only")
        return self.profile_parsed(parsed, step_cost=step_cost)

    def profile_parsed(
        self, parsed: ast.MatchQuery, step_cost: float = 0.0
    ) -> QueryProfile:
        """Profile an already-parsed (and already-analyzed) MATCH query."""
        from repro.graphdb.cypher.iterators import ExecutionContext

        context = ExecutionContext(clock=self.clock, step_cost=step_cost)
        plan = self.plan(parsed)
        with self.obs.tracer.span("cypher.profile") as span:
            root, profilers = plan.build_profiled(self.graph, context)
            context.begin_slice()
            rows: list[ResultRow] = []
            while True:
                row = root.next()
                if row is None:
                    break
                rows.append(ResultRow(row))
            span.set("operators", len(profilers))
            span.set("rows", len(rows))
        self.obs.metrics.inc("cypher.profiled")
        return QueryProfile(rows=rows, operators=_operator_stats(profilers))

    def run_paginated(
        self,
        query: str,
        page_size: int,
        continuation: dict | None = None,
        strict: bool | None = None,
    ) -> CypherPage:
        """Execute preemptably, returning at most ``page_size`` rows.

        The returned continuation resumes exactly after the last row of
        this page; feeding every page's continuation back in yields the
        same rows, in the same order, as one eager run of the plan.
        """
        if page_size < 1:
            raise CypherRuntimeError("page_size must be >= 1")
        parsed = parse(query)
        if self.strict if strict is None else strict:
            self._check(parsed, query)
        if isinstance(parsed, ast.CreateQuery):
            self._execute_create(parsed)
            self._schema_cache = None
            return CypherPage(rows=[])
        if parsed.explain:
            return CypherPage(rows=self.explain_rows(parsed))
        if parsed.profile:
            # like EXPLAIN: one full response, no continuation -- the
            # counters only mean anything once the query has finished
            return CypherPage(rows=self.profile_parsed(parsed).rows)
        from repro.graphdb.cypher.iterators import ExecutionContext

        task = QueryTask(self, parsed, ExecutionContext())
        if continuation is not None:
            task.load(continuation)
        rows = task.fetch(page_size)
        return CypherPage(rows=rows, continuation=task.save())

    def task(
        self,
        query: str,
        context=None,
        strict: bool | None = None,
    ) -> "QueryTask":
        """A suspendable query execution for a slice-at-a-time driver.

        ``context`` is an
        :class:`~repro.graphdb.cypher.iterators.ExecutionContext`
        carrying the quantum/clock; each :meth:`QueryTask.step` runs
        one slice and the task suspends when the quantum expires.
        """
        from repro.graphdb.cypher.iterators import ExecutionContext

        parsed = parse(query)
        if self.strict if strict is None else strict:
            self._check(parsed, query)
        if (
            not isinstance(parsed, ast.MatchQuery)
            or parsed.explain
            or parsed.profile
        ):
            raise CypherRuntimeError(
                "only MATCH queries can run as preemptable tasks"
            )
        return QueryTask(self, parsed, context or ExecutionContext())

    def execute(self, parsed: ast.Query) -> list[ResultRow]:
        """Execute an already-parsed (and already-analyzed) query.

        The scatter-gather engine parses and analyzes once, then runs
        the same AST against every partition through this entry point.
        """
        if isinstance(parsed, ast.CreateQuery):
            self._execute_create(parsed)
            self._schema_cache = None
            return []
        return self._execute_match(parsed)

    def analyze(self, query: str | ast.Query, source: str = ""):
        """Diagnostics for a query against this graph's schema."""
        # Imported lazily: repro.analysis.cypher_check imports the
        # parser from this package.
        from repro.analysis.cypher_check import CypherAnalyzer, schema_for

        key = (self.graph.node_count, self.graph.edge_count)
        if self._schema_cache is None or self._schema_cache[0] != key:
            self._schema_cache = (key, schema_for(self.graph))
        return CypherAnalyzer(self._schema_cache[1]).analyze(query, source)

    def _check(self, parsed: ast.Query, source: str) -> None:
        from repro.analysis.diagnostics import errors

        failures = errors(self.analyze(parsed, source))
        if failures:
            raise CypherAnalysisError(failures, source)

    # -- CREATE ------------------------------------------------------------

    def _execute_create(self, query: ast.CreateQuery) -> None:
        bound: dict[str, Node] = {}
        for path in query.paths:
            previous: Node | None = None
            for index, node_pattern in enumerate(path.nodes):
                node = self._create_or_reuse(node_pattern, bound)
                if index > 0:
                    rel = path.rels[index - 1]
                    if rel.direction == "in":
                        self.graph.create_edge(
                            node.node_id, rel.rel_type or "RELATED_TO", previous.node_id
                        )
                    else:
                        self.graph.create_edge(
                            previous.node_id, rel.rel_type or "RELATED_TO", node.node_id
                        )
                previous = node

    def _create_or_reuse(
        self, pattern: ast.NodePattern, bound: dict[str, Node]
    ) -> Node:
        if pattern.variable and pattern.variable in bound:
            return bound[pattern.variable]
        node = self.graph.create_node(
            pattern.label or "Node", dict(pattern.properties)
        )
        if pattern.variable:
            bound[pattern.variable] = node
        return node

    # -- MATCH ------------------------------------------------------------

    def _execute_match(self, query: ast.MatchQuery) -> list[ResultRow]:
        bindings_list = [dict()]  # type: list[Bindings]
        for path in query.paths:
            extended: list[Bindings] = []
            for bindings in bindings_list:
                extended.extend(self._match_path(path, bindings))
            bindings_list = extended
            if not bindings_list:
                break

        if query.where is not None:
            bindings_list = [
                b for b in bindings_list if _truthy(self._eval(query.where, b))
            ]

        has_aggregate = any(_contains_count(item.expr) for item in query.returns)
        rows = self._project(query, bindings_list)
        # For non-aggregated queries ORDER BY may reference expressions
        # that were not projected (m.year when only m.name is returned),
        # so keep the source bindings alongside each row for sorting.
        sources: list[Bindings | None]
        sources = [None] * len(rows) if has_aggregate else list(bindings_list)
        paired = list(zip(rows, sources))

        for expr, ascending in reversed(query.order_by):
            paired.sort(
                key=lambda pair: _sort_key(self._order_value(expr, *pair)),
                reverse=not ascending,
            )
        rows = [row for row, _b in paired]
        if query.distinct:
            rows = _distinct(rows)
        if query.skip:
            rows = rows[query.skip :]
        if query.limit is not None:
            rows = rows[: query.limit]
        return rows

    def _order_value(
        self, expr: ast.Expr, row: ResultRow, bindings: Bindings | None
    ) -> object:
        try:
            return self._eval_projected(expr, row)
        except CypherRuntimeError:
            if bindings is None:
                raise
            return self._eval(expr, bindings)

    # -- path matching ---------------------------------------------------------

    def _match_path(
        self, path: ast.PathPattern, bindings: Bindings
    ) -> Iterator[Bindings]:
        # Choose the most selective anchor among unbound node patterns.
        anchor = self._anchor_index(path, bindings)
        anchor_pattern = path.nodes[anchor]
        for node in self._candidates(anchor_pattern, bindings):
            start = dict(bindings)
            if not self._bind_node(anchor_pattern, node, start):
                continue
            yield from self._expand(path, anchor, anchor, start, node, node)

    def _expand(
        self,
        path: ast.PathPattern,
        left: int,
        right: int,
        bindings: Bindings,
        left_node: Node,
        right_node: Node,
    ) -> Iterator[Bindings]:
        """Grow the partial match outward from [left, right]."""
        if left == 0 and right == len(path.nodes) - 1:
            yield bindings
            return
        if right < len(path.nodes) - 1:
            rel = path.rels[right]
            target_pattern = path.nodes[right + 1]
            for edge, neighbor in self._reachable(right_node, rel, forward=True):
                new_bindings = dict(bindings)
                if not self._bind_node(target_pattern, neighbor, new_bindings):
                    continue
                if edge is not None and not self._bind_rel(rel, edge, new_bindings):
                    continue
                yield from self._expand(
                    path, left, right + 1, new_bindings, left_node, neighbor
                )
            return
        # extend to the left
        rel = path.rels[left - 1]
        target_pattern = path.nodes[left - 1]
        for edge, neighbor in self._reachable(left_node, rel, forward=False):
            new_bindings = dict(bindings)
            if not self._bind_node(target_pattern, neighbor, new_bindings):
                continue
            if edge is not None and not self._bind_rel(rel, edge, new_bindings):
                continue
            yield from self._expand(
                path, left - 1, right, new_bindings, neighbor, right_node
            )

    def _reachable(
        self, node: Node, rel: ast.RelPattern, forward: bool
    ) -> Iterator[tuple[Edge | None, Node]]:
        """Pattern-consistent neighbours; multi-hop for ``*m..n``.

        Variable-length expansion walks node-distinct paths (Cypher's
        uniqueness semantics, approximated at node granularity) and
        yields each endpoint reachable within the hop range once, with
        ``None`` in the edge slot (such patterns cannot bind an edge
        variable).
        """
        if not rel.is_variable_length:
            yield from self._adjacent(node, rel, forward)
            return
        seen: set[int] = {node.node_id}
        frontier: list[Node] = [node]
        if rel.min_hops == 0:
            yield None, node
        for depth in range(1, rel.max_hops + 1):
            next_frontier: list[Node] = []
            for current in frontier:
                for _edge, neighbor in self._adjacent(current, rel, forward):
                    if neighbor.node_id in seen:
                        continue
                    seen.add(neighbor.node_id)
                    next_frontier.append(neighbor)
                    if depth >= rel.min_hops:
                        yield None, neighbor
            frontier = next_frontier
            if not frontier:
                return

    def _adjacent(
        self, node: Node, rel: ast.RelPattern, forward: bool
    ) -> Iterator[tuple[Edge, Node]]:
        """Edges leaving ``node`` consistent with the pattern direction.

        ``forward`` means the pattern is read left-to-right from this
        node; the rel direction applies relative to the reading order.
        """
        direction = rel.direction
        if not forward:
            direction = {"out": "in", "in": "out"}.get(direction, "any")
        if direction in ("out", "any"):
            for edge in self.graph.out_edges(node.node_id, rel.rel_type):
                yield edge, self.graph.node(edge.dst)
        if direction in ("in", "any"):
            for edge in self.graph.in_edges(node.node_id, rel.rel_type):
                yield edge, self.graph.node(edge.src)

    def _anchor_index(self, path: ast.PathPattern, bindings: Bindings) -> int:
        best = 0
        best_score = -1.0
        for index, pattern in enumerate(path.nodes):
            if pattern.variable and pattern.variable in bindings:
                return index  # already bound: cheapest possible anchor
            score = 0.0
            if pattern.properties:
                score += 2.0
            if pattern.label:
                score += 1.0
            if score > best_score:
                best, best_score = index, score
        return best

    def _candidates(
        self, pattern: ast.NodePattern, bindings: Bindings
    ) -> Iterator[Node]:
        if pattern.variable and pattern.variable in bindings:
            value = bindings[pattern.variable]
            if isinstance(value, Node):
                yield value
            return
        if pattern.properties:
            yield from self.graph.find_nodes(
                pattern.label, **dict(pattern.properties)
            )
            return
        yield from self.graph.nodes(pattern.label)

    def _bind_node(
        self, pattern: ast.NodePattern, node: Node, bindings: Bindings
    ) -> bool:
        return bind_node(pattern, node, bindings)

    def _bind_rel(
        self, pattern: ast.RelPattern, edge: Edge, bindings: Bindings
    ) -> bool:
        return bind_rel(pattern, edge, bindings)

    # -- projection / aggregation -------------------------------------------------

    def _project(
        self, query: ast.MatchQuery, bindings_list: list[Bindings]
    ) -> list[ResultRow]:
        has_aggregate = any(_contains_count(item.expr) for item in query.returns)
        if not has_aggregate:
            return [
                ResultRow(
                    {
                        item.alias: self._eval(item.expr, bindings)
                        for item in query.returns
                    }
                )
                for bindings in bindings_list
            ]

        group_items = [i for i in query.returns if not _contains_count(i.expr)]
        agg_items = [i for i in query.returns if _contains_count(i.expr)]
        if not group_items and not bindings_list:
            # Global aggregates over an empty match still yield one row
            # (Cypher semantics: count() of nothing is 0).
            return [
                ResultRow(
                    {item.alias: self._eval_aggregate(item.expr, []) for item in agg_items}
                )
            ]
        groups: dict[tuple, list[Bindings]] = {}
        for bindings in bindings_list:
            key = tuple(
                _hashable(self._eval(item.expr, bindings)) for item in group_items
            )
            groups.setdefault(key, []).append(bindings)

        rows: list[ResultRow] = []
        for key, members in groups.items():
            values: dict[str, object] = {}
            for item, key_value in zip(group_items, key):
                values[item.alias] = _unhash(key_value, self._eval(item.expr, members[0]))
            for item in agg_items:
                values[item.alias] = self._eval_aggregate(item.expr, members)
            rows.append(ResultRow(values))
        return rows

    def _eval_aggregate(self, expr: ast.Expr, members: list[Bindings]) -> object:
        if isinstance(expr, ast.Count) and expr.operand is None:
            return len(members)
        if isinstance(expr, (ast.Count, ast.Collect, ast.NumAgg)):
            values = [self._eval(expr.operand, b) for b in members]
            if isinstance(expr, ast.Collect):
                return reduce_collect(values, expr.distinct)
            if isinstance(expr, ast.Count):
                return reduce_count(values, expr.distinct)
            return reduce_numeric(expr.func, values, expr.distinct)
        raise CypherRuntimeError(f"unsupported aggregate expression: {expr}")

    # -- expression evaluation ------------------------------------------------------

    def _eval(self, expr: ast.Expr, bindings: Bindings) -> object:
        return eval_expr(expr, bindings)

    def _eval_compare(self, expr: ast.Compare, bindings: Bindings) -> bool:
        return eval_compare(expr, bindings)

    def _eval_projected(self, expr: ast.Expr, row: ResultRow) -> object:
        return eval_projected(expr, row)


class QueryTask:
    """A preemptable query execution: planned once, run slice by slice.

    Each :meth:`step` runs one time slice under the context's quantum
    and returns the rows produced before suspension.  :meth:`save` /
    :meth:`load` round-trip the whole execution state as a JSON-safe
    continuation, so a task can be resumed in a later request (the
    pagination path) or interleaved with other tasks (the E22 storm).
    """

    def __init__(self, engine: CypherEngine, parsed: ast.MatchQuery, context):
        self.engine = engine
        self.query = parsed
        self.context = context
        self.plan = engine.plan(parsed)
        self.root = self.plan.build(engine.graph, context)
        self.done = False

    def step(self, max_rows: int | None = None) -> list[ResultRow]:
        """Run one slice; returns rows produced before the quantum expired."""
        from repro.graphdb.cypher.iterators import QuantumExhausted

        obs = self.engine.obs
        rows: list[ResultRow] = []
        with obs.tracer.span("cypher.slice"):
            obs.metrics.inc("cypher.slices")
            self.context.begin_slice()
            try:
                while not self.done and (
                    max_rows is None or len(rows) < max_rows
                ):
                    row = self.root.next()
                    if row is None:
                        self.done = True
                        break
                    rows.append(ResultRow(row))
            except QuantumExhausted:
                obs.metrics.inc("cypher.suspended")
        return rows

    def fetch(self, count: int) -> list[ResultRow]:
        """Rows until ``count`` are gathered or the query is exhausted."""
        rows: list[ResultRow] = []
        while len(rows) < count and not self.done:
            rows.extend(self.step(max_rows=count - len(rows)))
        return rows

    def run_to_completion(self) -> list[ResultRow]:
        rows: list[ResultRow] = []
        while not self.done:
            rows.extend(self.step())
        return rows

    def save(self) -> dict | None:
        """JSON-safe continuation, or ``None`` once exhausted."""
        if self.done:
            return None
        return {
            "v": 1,
            "plan": self.plan.signature(),
            "state": self.root.save(),
        }

    def load(self, continuation: dict) -> None:
        if continuation.get("plan") != self.plan.signature():
            raise CypherRuntimeError(
                "continuation does not match this query's plan"
            )
        self.root.load(continuation["state"])


# -- shared evaluator ---------------------------------------------------------
#
# Module-level so the eager engine, the resumable iterator operators
# and the scatter-gather merge evaluate expressions identically.


def eval_expr(expr: ast.Expr, bindings: Bindings) -> object:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ListLiteral):
        return [eval_expr(item, bindings) for item in expr.items]
    if isinstance(expr, ast.Variable):
        if expr.name not in bindings:
            raise CypherRuntimeError(f"unbound variable {expr.name!r}")
        return bindings[expr.name]
    if isinstance(expr, ast.Property):
        value = bindings.get(expr.variable)
        if value is None:
            raise CypherRuntimeError(f"unbound variable {expr.variable!r}")
        if isinstance(value, (Node, Edge)):
            return value.properties.get(expr.key)
        raise CypherRuntimeError(
            f"{expr.variable!r} is not a node or relationship"
        )
    if isinstance(expr, ast.And):
        return _truthy(eval_expr(expr.left, bindings)) and _truthy(
            eval_expr(expr.right, bindings)
        )
    if isinstance(expr, ast.Or):
        return _truthy(eval_expr(expr.left, bindings)) or _truthy(
            eval_expr(expr.right, bindings)
        )
    if isinstance(expr, ast.Not):
        return not _truthy(eval_expr(expr.operand, bindings))
    if isinstance(expr, ast.Compare):
        return eval_compare(expr, bindings)
    if isinstance(expr, (ast.Count, ast.Collect, ast.NumAgg)):
        raise CypherRuntimeError("aggregates are only allowed in RETURN")
    raise CypherRuntimeError(f"cannot evaluate {expr!r}")


def eval_compare(expr: ast.Compare, bindings: Bindings) -> bool:
    left = eval_expr(expr.left, bindings)
    if expr.op == "IS NULL":
        return left is None
    if expr.op == "IS NOT NULL":
        return left is not None
    right = eval_expr(expr.right, bindings)
    if expr.op == "=":
        return left == right
    if expr.op == "<>":
        return left != right
    if expr.op == "IN":
        return left in (right or [])
    if left is None or right is None:
        return False
    if expr.op == "CONTAINS":
        return str(right) in str(left)
    if expr.op == "STARTS WITH":
        return str(left).startswith(str(right))
    if expr.op == "ENDS WITH":
        return str(left).endswith(str(right))
    try:
        if expr.op == "<":
            return left < right
        if expr.op == ">":
            return left > right
        if expr.op == "<=":
            return left <= right
        if expr.op == ">=":
            return left >= right
    except TypeError as error:
        raise CypherRuntimeError(str(error)) from None
    raise CypherRuntimeError(f"unknown operator {expr.op!r}")


def eval_projected(expr: ast.Expr, row: ResultRow) -> object:
    """Evaluate an ORDER BY expression against a projected row.

    ORDER BY may reference return aliases or projected variables.
    """
    if isinstance(expr, ast.Variable) and expr.name in row.values:
        return row.values[expr.name]
    if isinstance(expr, ast.Property):
        base = row.values.get(expr.variable)
        if isinstance(base, (Node, Edge)):
            return base.properties.get(expr.key)
        alias = f"{expr.variable}.{expr.key}"
        if alias in row.values:
            return row.values[alias]
    if isinstance(expr, ast.Count):
        return row.values.get("count")
    if isinstance(expr, ast.NumAgg):
        return row.values.get(expr.func)
    if isinstance(expr, ast.Literal):
        return expr.value
    raise CypherRuntimeError(
        "ORDER BY expressions must reference returned values"
    )


def bind_node(pattern: ast.NodePattern, node: Node, bindings: Bindings) -> bool:
    """Check a node against a pattern, binding its variable on success."""
    if pattern.label and node.label != pattern.label:
        return False
    for key, value in pattern.properties:
        if node.properties.get(key) != value:
            return False
    if pattern.variable:
        existing = bindings.get(pattern.variable)
        if existing is not None:
            return isinstance(existing, Node) and existing.node_id == node.node_id
        bindings[pattern.variable] = node
    return True


def bind_rel(pattern: ast.RelPattern, edge: Edge, bindings: Bindings) -> bool:
    if pattern.rel_type and edge.type != pattern.rel_type:
        return False
    if pattern.variable:
        existing = bindings.get(pattern.variable)
        if existing is not None:
            return isinstance(existing, Edge) and existing.edge_id == edge.edge_id
        bindings[pattern.variable] = edge
    return True


# -- helpers ------------------------------------------------------------------


def _truthy(value: object) -> bool:
    return bool(value)


def reduce_collect(values: list[object], distinct: bool) -> list[object]:
    """collect() over already-evaluated values: None-skipping, optional
    dedup.  Shared by the eager path, the iterator operators and the
    scatter-gather merge so all three agree on aggregate semantics."""
    out: list[object] = []
    seen: list[object] = []
    for value in values:
        if value is None:
            continue
        if distinct:
            key = _hashable(value)
            if key in seen:
                continue
            seen.append(key)
        out.append(value)
    return out


def reduce_count(values: list[object], distinct: bool) -> int:
    return len(reduce_collect(values, distinct))


def reduce_numeric(func: str, values: list[object], distinct: bool) -> object:
    """avg/min/max/sum over already-evaluated values.

    ``sum([])`` is 0; the others are null on empty input.  Non-numeric
    operands surface as :class:`CypherRuntimeError`.
    """
    vals = reduce_collect(values, distinct)
    try:
        if func == "sum":
            return sum(vals)
        if not vals:
            return None
        if func == "min":
            return min(vals)
        if func == "max":
            return max(vals)
        if func == "avg":
            return sum(vals) / len(vals)
    except TypeError as error:
        raise CypherRuntimeError(str(error)) from None
    raise CypherRuntimeError(f"unknown aggregate function {func!r}")


def _contains_count(expr: ast.Expr) -> bool:
    """Whether an expression contains an aggregate."""
    if isinstance(expr, (ast.Count, ast.Collect, ast.NumAgg)):
        return True
    if isinstance(expr, (ast.And, ast.Or)):
        return _contains_count(expr.left) or _contains_count(expr.right)
    if isinstance(expr, ast.Not):
        return _contains_count(expr.operand)
    if isinstance(expr, ast.Compare):
        return _contains_count(expr.left) or (
            expr.right is not None and _contains_count(expr.right)
        )
    return False


def _hashable(value: object) -> object:
    if isinstance(value, Node):
        return ("__node__", value.node_id)
    if isinstance(value, Edge):
        return ("__edge__", value.edge_id)
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value


def _unhash(key: object, original: object) -> object:
    del key
    return original


def _distinct(rows: list[ResultRow]) -> list[ResultRow]:
    seen: set = set()
    out: list[ResultRow] = []
    for row in rows:
        key = tuple(sorted((k, _hashable(v)) for k, v in row.values.items()))
        if key not in seen:
            seen.add(key)
            out.append(row)
    return out


def _sort_key(value: object):
    # None sorts first; mixed types sort by type name then value string.
    return (value is not None, type(value).__name__, str(value))


__all__ = [
    "CypherAnalysisError",
    "CypherEngine",
    "CypherPage",
    "CypherRuntimeError",
    "CypherSyntaxError",
    "QueryTask",
    "ResultRow",
    "bind_node",
    "bind_rel",
    "eval_compare",
    "eval_expr",
    "eval_projected",
    "reduce_collect",
    "reduce_count",
    "reduce_numeric",
]
