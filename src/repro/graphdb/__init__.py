"""In-process property graph database (Neo4j substitute).

A labelled property graph with adjacency/label/property indexes
(:mod:`repro.graphdb.store`), WAL + snapshot durability and buffered
transactions (:mod:`repro.graphdb.wal`), traversal primitives for the
UI (:mod:`repro.graphdb.traversal`) and a Cypher-subset query engine
(:mod:`repro.graphdb.cypher`).

>>> from repro.graphdb import GraphDatabase, CypherEngine
>>> db = GraphDatabase()
>>> n = db.create_node("Malware", {"name": "wannacry"})
>>> engine = CypherEngine(db.graph)
>>> rows = engine.run('match (n) where n.name = "wannacry" return n')
>>> rows[0]["n"].properties["name"]
'wannacry'
"""

from repro.graphdb.cypher import (
    CypherAnalysisError,
    CypherEngine,
    CypherRuntimeError,
    CypherSyntaxError,
    ResultRow,
)
from repro.graphdb.store import Edge, Node, PropertyGraph
from repro.graphdb.traversal import (
    Subgraph,
    bfs_nodes,
    induced_subgraph,
    k_hop_subgraph,
    random_subgraph,
    shortest_path,
)
from repro.graphdb.wal import GraphDatabase, Transaction, TransactionError

__all__ = [
    "CypherAnalysisError",
    "CypherEngine",
    "CypherRuntimeError",
    "CypherSyntaxError",
    "Edge",
    "GraphDatabase",
    "Node",
    "PropertyGraph",
    "ResultRow",
    "Subgraph",
    "Transaction",
    "TransactionError",
    "bfs_nodes",
    "induced_subgraph",
    "k_hop_subgraph",
    "random_subgraph",
    "shortest_path",
]
