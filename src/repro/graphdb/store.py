"""In-process property graph store.

The Neo4j substitute at the heart of the storage stage: labelled
nodes and typed, directed edges, both carrying free-form properties.
The store maintains the indexes the workload needs -- label index,
(label, property, value) index, and adjacency lists in both directions
-- and is safe for concurrent readers with single-writer semantics.

Persistence (snapshot + write-ahead log) lives in
:mod:`repro.graphdb.wal`; query processing in
:mod:`repro.graphdb.cypher`.
"""

from __future__ import annotations

import itertools
import sys
import threading
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.runtime.locks import named_lock


@dataclass
class Node:
    """A graph node: integer id, one label, property map."""

    node_id: int
    label: str
    properties: dict[str, object] = field(default_factory=dict)

    def get(self, key: str, default: object = None) -> object:
        return self.properties.get(key, default)


@dataclass
class Edge:
    """A directed, typed edge with properties."""

    edge_id: int
    type: str
    src: int
    dst: int
    properties: dict[str, object] = field(default_factory=dict)

    def get(self, key: str, default: object = None) -> object:
        return self.properties.get(key, default)


#: Property names that participate in the (label, key, value) index.
INDEXED_PROPERTIES: frozenset[str] = frozenset(
    {"name", "merge_key", "report_id", "source"}
)


def _interned_props(properties: dict[str, object] | None) -> dict[str, object]:
    """Copy a property map, interning its keys.

    The same handful of keys ("name", "merge_key", "reports", ...)
    recurs across every node and edge in the graph; interning collapses
    each to a single string object so the hot index/property dicts
    compare keys by pointer before falling back to character
    comparison, and the per-node key storage is shared.
    """
    if not properties:
        return {}
    return {sys.intern(key): value for key, value in properties.items()}


class PropertyGraph:
    """Mutable property graph with label/property/adjacency indexes.

    ``id_base`` offsets the node/edge id counters (first id is
    ``id_base + 1``); a sharded deployment gives each partition a
    disjoint id range so ids stay globally unique across partitions and
    scatter-gather results can be merged without renumbering.
    """

    def __init__(self, id_base: int = 0):
        self._nodes: dict[int, Node] = {}
        self._edges: dict[int, Edge] = {}
        self._out: dict[int, list[int]] = {}
        self._in: dict[int, list[int]] = {}
        self._label_index: dict[str, set[int]] = {}
        self._property_index: dict[tuple[str, str, object], set[int]] = {}
        # key -> python type names ever observed for it (node or edge
        # properties alike); grows monotonically, feeding the Cypher
        # semantic analyzer without a per-query graph scan.
        self._property_types: dict[str, set[str]] = {}
        self.id_base = int(id_base)
        self._node_ids = itertools.count(self.id_base + 1)
        self._edge_ids = itertools.count(self.id_base + 1)
        self._lock = named_lock("graphdb.store", reentrant=True)

    # -- node operations ------------------------------------------------

    def create_node(
        self, label: str, properties: dict[str, object] | None = None
    ) -> Node:
        """Insert a node and index it; returns the stored node."""
        with self._lock:
            label = sys.intern(label)
            node = Node(next(self._node_ids), label, _interned_props(properties))
            self._nodes[node.node_id] = node
            self._out[node.node_id] = []
            self._in[node.node_id] = []
            self._label_index.setdefault(label, set()).add(node.node_id)
            self._index_node_properties(node)
            return node

    def restore_node(
        self, node_id: int, label: str, properties: dict[str, object]
    ) -> Node:
        """Re-insert a node with its original id (snapshot recovery).

        The id counter advances past ``node_id`` so later inserts never
        collide.
        """
        with self._lock:
            if node_id in self._nodes:
                raise KeyError(f"node {node_id} already exists")
            label = sys.intern(label)
            node = Node(node_id, label, _interned_props(properties))
            self._nodes[node_id] = node
            self._out[node_id] = []
            self._in[node_id] = []
            self._label_index.setdefault(label, set()).add(node_id)
            self._index_node_properties(node)
            self._node_ids = itertools.count(
                max(node_id + 1, next(self._node_ids))
            )
            return node

    def _index_node_properties(self, node: Node) -> None:
        self._observe_properties(node.properties)
        for key, value in node.properties.items():
            if key in INDEXED_PROPERTIES and isinstance(value, (str, int, float, bool)):
                self._property_index.setdefault(
                    (node.label, key, value), set()
                ).add(node.node_id)

    def _observe_properties(self, properties: dict[str, object]) -> None:
        for key, value in properties.items():
            self._property_types.setdefault(key, set()).add(type(value).__name__)

    def _deindex_node_properties(self, node: Node) -> None:
        for key, value in node.properties.items():
            if key in INDEXED_PROPERTIES and isinstance(value, (str, int, float, bool)):
                bucket = self._property_index.get((node.label, key, value))
                if bucket:
                    bucket.discard(node.node_id)

    def node(self, node_id: int) -> Node:
        """Fetch a node by id; raises ``KeyError`` when absent."""
        node = self._nodes.get(node_id)
        if node is None:
            raise KeyError(f"no node {node_id}")
        return node

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def set_node_properties(self, node_id: int, properties: dict[str, object]) -> Node:
        """Merge properties into a node (re-indexing as needed)."""
        with self._lock:
            node = self.node(node_id)
            self._deindex_node_properties(node)
            node.properties.update(_interned_props(properties))
            self._index_node_properties(node)
            return node

    def delete_node(self, node_id: int) -> None:
        """Remove a node and every edge touching it."""
        with self._lock:
            node = self.node(node_id)
            for edge_id in list(self._out[node_id]) + list(self._in[node_id]):
                if edge_id in self._edges:
                    self.delete_edge(edge_id)
            self._deindex_node_properties(node)
            self._label_index.get(node.label, set()).discard(node_id)
            del self._out[node_id]
            del self._in[node_id]
            del self._nodes[node_id]

    # -- edge operations ---------------------------------------------------

    def create_edge(
        self,
        src: int,
        edge_type: str,
        dst: int,
        properties: dict[str, object] | None = None,
    ) -> Edge:
        """Insert a directed edge; endpoints must exist."""
        with self._lock:
            if src not in self._nodes:
                raise KeyError(f"no source node {src}")
            if dst not in self._nodes:
                raise KeyError(f"no target node {dst}")
            edge = Edge(
                next(self._edge_ids), sys.intern(edge_type), src, dst,
                _interned_props(properties),
            )
            self._observe_properties(edge.properties)
            self._edges[edge.edge_id] = edge
            self._out[src].append(edge.edge_id)
            self._in[dst].append(edge.edge_id)
            return edge

    def has_edge(self, edge_id: int) -> bool:
        return edge_id in self._edges

    def edge(self, edge_id: int) -> Edge:
        edge = self._edges.get(edge_id)
        if edge is None:
            raise KeyError(f"no edge {edge_id}")
        return edge

    def delete_edge(self, edge_id: int) -> None:
        with self._lock:
            edge = self.edge(edge_id)
            self._out[edge.src].remove(edge_id)
            self._in[edge.dst].remove(edge_id)
            del self._edges[edge_id]

    def set_edge_properties(self, edge_id: int, properties: dict[str, object]) -> Edge:
        with self._lock:
            edge = self.edge(edge_id)
            edge.properties.update(_interned_props(properties))
            self._observe_properties(edge.properties)
            return edge

    # -- lookups -----------------------------------------------------------

    def nodes(self, label: str | None = None) -> Iterator[Node]:
        """All nodes, optionally restricted to one label."""
        if label is None:
            yield from list(self._nodes.values())
            return
        for node_id in sorted(self._label_index.get(label, ())):
            node = self._nodes.get(node_id)
            if node is not None:
                yield node

    def node_ids(self, label: str | None = None) -> list[int]:
        """Sorted node ids, optionally restricted to one label.

        A stable, ascending id list is what the resumable query
        iterators scan over: a continuation records the last id
        consumed, and resuming filters ``> last`` -- robust even when
        nodes were inserted between two slices of a paginated query.
        """
        if label is None:
            return sorted(self._nodes)
        return sorted(self._label_index.get(label, ()))

    def index_lookup_ids(self, label: str, key: str, value: object) -> list[int]:
        """Sorted node ids in the (label, key, value) property index.

        Empty when the key is not indexed (see
        :data:`INDEXED_PROPERTIES`) or no node matches; callers decide
        between this and a label scan via :meth:`index_size`.
        """
        return sorted(self._property_index.get((label, key, value), ()))

    def index_size(self, label: str, key: str, value: object) -> int:
        """Cardinality of one (label, key, value) index bucket."""
        return len(self._property_index.get((label, key, value), ()))

    def label_count(self, label: str) -> int:
        """Number of nodes carrying ``label`` (0 for unknown labels)."""
        return len(self._label_index.get(label, ()))

    def edges(self, edge_type: str | None = None) -> Iterator[Edge]:
        for edge in list(self._edges.values()):
            if edge_type is None or edge.type == edge_type:
                yield edge

    def find_nodes(
        self, label: str | None = None, **properties: object
    ) -> list[Node]:
        """Nodes matching a label and exact property values.

        Uses the (label, key, value) index when possible, scanning
        otherwise.
        """
        candidates: Iterable[Node]
        indexed = [
            (key, value)
            for key, value in properties.items()
            if key in INDEXED_PROPERTIES and label is not None
        ]
        if indexed:
            key, value = indexed[0]
            ids = self._property_index.get((label, key, value), set())
            candidates = [self._nodes[i] for i in sorted(ids) if i in self._nodes]
        else:
            candidates = self.nodes(label)
        return [
            node
            for node in candidates
            if all(node.properties.get(k) == v for k, v in properties.items())
        ]

    def find_node(self, label: str | None = None, **properties: object) -> Node | None:
        """First match of :meth:`find_nodes`, or ``None``."""
        matches = self.find_nodes(label, **properties)
        return matches[0] if matches else None

    # -- adjacency ------------------------------------------------------------

    def out_edges(self, node_id: int, edge_type: str | None = None) -> list[Edge]:
        return [
            self._edges[e]
            for e in self._out.get(node_id, ())
            if edge_type is None or self._edges[e].type == edge_type
        ]

    def in_edges(self, node_id: int, edge_type: str | None = None) -> list[Edge]:
        return [
            self._edges[e]
            for e in self._in.get(node_id, ())
            if edge_type is None or self._edges[e].type == edge_type
        ]

    def neighbors(
        self,
        node_id: int,
        edge_type: str | None = None,
        direction: str = "both",
    ) -> list[Node]:
        """Adjacent nodes (deduplicated, stable order)."""
        seen: set[int] = set()
        result: list[Node] = []
        if direction in ("out", "both"):
            for edge in self.out_edges(node_id, edge_type):
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    result.append(self._nodes[edge.dst])
        if direction in ("in", "both"):
            for edge in self.in_edges(node_id, edge_type):
                if edge.src not in seen:
                    seen.add(edge.src)
                    result.append(self._nodes[edge.src])
        return result

    def degree(self, node_id: int) -> int:
        return len(self._out.get(node_id, ())) + len(self._in.get(node_id, ()))

    # -- stats -------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def label_counts(self) -> dict[str, int]:
        """Node count per label (empty labels omitted)."""
        return {
            label: len(ids)
            for label, ids in sorted(self._label_index.items())
            if ids
        }

    def edge_type_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for edge in self._edges.values():
            counts[edge.type] = counts.get(edge.type, 0) + 1
        return dict(sorted(counts.items()))

    def property_schema(self) -> dict[str, frozenset[str]]:
        """Property key -> python type names ever stored under it.

        Maintained incrementally on every write (deletions are *not*
        rescanned -- the schema is a monotone over-approximation, which
        is the right shape for advisory query analysis).
        """
        return {key: frozenset(types) for key, types in self._property_types.items()}


__all__ = ["Edge", "INDEXED_PROPERTIES", "Node", "PropertyGraph"]
