"""Graph traversal helpers used by the UI and applications.

The web UI's node expansion, random-subgraph fetch and neighbourhood
views (paper section 2.6) all reduce to these primitives: bounded BFS,
k-hop neighbourhoods and induced subgraphs.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro.graphdb.store import Edge, Node, PropertyGraph


@dataclass
class Subgraph:
    """An induced subgraph: nodes plus the edges among them."""

    nodes: list[Node] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)

    @property
    def node_ids(self) -> set[int]:
        return {node.node_id for node in self.nodes}


def bfs_nodes(
    graph: PropertyGraph,
    start: int,
    max_depth: int = 2,
    max_nodes: int | None = None,
    edge_type: str | None = None,
) -> list[tuple[Node, int]]:
    """Breadth-first nodes with their depth, up to the given bounds."""
    if not graph.has_node(start):
        raise KeyError(f"no node {start}")
    visited = {start}
    order: list[tuple[Node, int]] = [(graph.node(start), 0)]
    queue: deque[tuple[int, int]] = deque([(start, 0)])
    while queue:
        node_id, depth = queue.popleft()
        if depth >= max_depth:
            continue
        for neighbor in graph.neighbors(node_id, edge_type):
            if neighbor.node_id in visited:
                continue
            visited.add(neighbor.node_id)
            order.append((neighbor, depth + 1))
            if max_nodes is not None and len(order) >= max_nodes:
                return order
            queue.append((neighbor.node_id, depth + 1))
    return order


def k_hop_subgraph(
    graph: PropertyGraph,
    start: int,
    hops: int = 1,
    max_nodes: int | None = None,
) -> Subgraph:
    """The induced subgraph of the k-hop neighbourhood of ``start``."""
    reached = bfs_nodes(graph, start, max_depth=hops, max_nodes=max_nodes)
    return induced_subgraph(graph, [node.node_id for node, _depth in reached])


def induced_subgraph(graph: PropertyGraph, node_ids: list[int]) -> Subgraph:
    """Nodes plus every stored edge whose both endpoints are included."""
    wanted = set(node_ids)
    nodes = [graph.node(i) for i in node_ids if graph.has_node(i)]
    edges = [
        edge
        for edge in graph.edges()
        if edge.src in wanted and edge.dst in wanted
    ]
    return Subgraph(nodes=nodes, edges=edges)


def random_subgraph(
    graph: PropertyGraph,
    size: int,
    seed: int | None = None,
) -> Subgraph:
    """A connected-ish random subgraph for exploratory browsing.

    Starts at a random node and grows by BFS; if the component is
    exhausted early, restarts from another random unvisited node.
    """
    all_nodes = list(graph.nodes())
    if not all_nodes:
        return Subgraph()
    rng = random.Random(seed)
    rng.shuffle(all_nodes)
    chosen: list[int] = []
    visited: set[int] = set()
    pool = iter(all_nodes)
    frontier: deque[int] = deque()
    while len(chosen) < min(size, len(all_nodes)):
        if not frontier:
            try:
                candidate = next(node for node in pool if node.node_id not in visited)
            except StopIteration:
                break
            frontier.append(candidate.node_id)
            visited.add(candidate.node_id)
        node_id = frontier.popleft()
        chosen.append(node_id)
        neighbors = graph.neighbors(node_id)
        rng.shuffle(neighbors)
        for neighbor in neighbors:
            if neighbor.node_id not in visited:
                visited.add(neighbor.node_id)
                frontier.append(neighbor.node_id)
    return induced_subgraph(graph, chosen)


def shortest_path(
    graph: PropertyGraph, src: int, dst: int, max_depth: int = 6
) -> list[Node] | None:
    """Unweighted shortest path (both directions), or ``None``."""
    if src == dst:
        return [graph.node(src)]
    parents: dict[int, int] = {src: src}
    queue: deque[tuple[int, int]] = deque([(src, 0)])
    while queue:
        node_id, depth = queue.popleft()
        if depth >= max_depth:
            continue
        for neighbor in graph.neighbors(node_id):
            if neighbor.node_id in parents:
                continue
            parents[neighbor.node_id] = node_id
            if neighbor.node_id == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(parents[path[-1]])
                return [graph.node(i) for i in reversed(path)]
            queue.append((neighbor.node_id, depth + 1))
    return None


__all__ = [
    "Subgraph",
    "bfs_nodes",
    "induced_subgraph",
    "k_hop_subgraph",
    "random_subgraph",
    "shortest_path",
]
